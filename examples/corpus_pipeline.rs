//! End-to-end pipeline over a synthetic corpus: generate → annotate →
//! split → train → evaluate, printing the headline metrics.
//!
//! Run with `cargo run --release --example corpus_pipeline`.

use briq::evaluate::EvalReport;
use briq::pipeline::{Briq, BriqConfig};
use briq::substrates::corpus::annotate::{annotate, AnnotatorConfig};
use briq::substrates::corpus::corpus::{generate_corpus, CorpusConfig};
use briq::substrates::ml::split::random_split;

fn main() {
    // 1. Generate a small corpus with exact ground truth.
    let cfg = CorpusConfig {
        n_documents: 120,
        seed: 99,
        ..Default::default()
    };
    let corpus = generate_corpus(&cfg);
    let mut documents = corpus.documents;
    println!(
        "generated {} documents, {} gold alignments",
        documents.len(),
        documents.iter().map(|d| d.gold.len()).sum::<usize>()
    );

    // 2. Simulate the 8-annotator panel (§VII-A) and report kappa.
    let outcome = annotate(&mut documents, &AnnotatorConfig::default());
    println!(
        "annotation: Fleiss kappa {:.4}, kept {} pairs, dropped {}",
        outcome.kappa, outcome.kept, outcome.dropped
    );

    // 3. 80/10/10 split and training.
    let split = random_split(documents.len(), 0.1, 0.1, 7);
    let train: Vec<_> = split.train.iter().map(|&i| documents[i].clone()).collect();
    let validation: Vec<_> = split
        .validation
        .iter()
        .map(|&i| documents[i].clone())
        .collect();
    println!(
        "training on {} documents (tagger on {} withheld)...",
        train.len(),
        validation.len()
    );
    let briq = Briq::train(BriqConfig::default(), &train, &validation);

    // 4. Evaluate on the held-out test documents.
    let mut report = EvalReport::default();
    for &i in &split.test {
        let ld = &documents[i];
        report.add_document(&briq.align(&ld.document), &ld.gold);
    }
    let overall = report.overall();
    println!(
        "\ntest set ({} documents): recall {:.2}, precision {:.2}, F1 {:.2}",
        split.test.len(),
        overall.recall,
        overall.precision,
        overall.f1
    );
    for (kind, counts) in &report.by_type {
        let prf = counts.prf();
        println!(
            "  {kind:12} tp={:<3} fp={:<3} fn={:<3}  F1 {:.2}",
            counts.tp, counts.fp, counts.fn_, prf.f1
        );
    }
}
