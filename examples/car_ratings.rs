//! The Fig. 1b environment example: a rotated table (attributes in the
//! first column) with approximate mentions — "37K EUR" must match the
//! cell `36900`, "2K EUR" a difference, and ratings match exactly.
//!
//! Run with `cargo run --release --example car_ratings`.

use briq::{Briq, BriqConfig, Document, Table};

fn main() {
    let table = Table::from_grid(
        "Car ratings",
        vec![
            vec!["".into(), "Focus E".into(), "A3".into(), "VW Golf".into()],
            vec![
                "German MSRP".into(),
                "34900".into(),
                "36900".into(),
                "33800".into(),
            ],
            vec![
                "American MSRP".into(),
                "29120".into(),
                "38900".into(),
                "29915".into(),
            ],
            vec![
                "Emission (g/km)".into(),
                "0".into(),
                "105".into(),
                "122".into(),
            ],
            vec![
                "Fuel Economy".into(),
                "105".into(),
                "70.6".into(),
                "61.4".into(),
            ],
            vec![
                "Final rating".into(),
                "1.33".into(),
                "2.67".into(),
                "2.67".into(),
            ],
        ],
    );
    let doc = Document::new(
        0,
        "The final ratings are dominated by the PHEV from Audi (2.67) and the \
         ICE from Volkswagen. The Audi A3 e-tron is the least affordable option \
         with 37K EUR in Germany and 39K USD in the US. The Ford Focus Electric, \
         lowest rating (1.33), is a 2K EUR cheaper alternative with 0 CO2 \
         emission and 105 MPGe fuel consumption.",
        vec![table],
    );

    let briq = Briq::untrained(BriqConfig::default());
    println!("BriQ alignments for the Fig. 1b environment example:\n");
    let alignments = briq.align(&doc);
    for a in &alignments {
        println!(
            "  {:14}  ->  {:12}  cells {:?}  (value {}, score {:.3})",
            format!("{:?}", a.mention_raw),
            a.target.kind.name(),
            a.target.cells,
            a.target.value,
            a.score,
        );
    }

    // The paper's highlighted case: approximate "37K EUR" → cell 36900.
    match alignments.iter().find(|a| a.mention_raw.starts_with("37K")) {
        Some(a) if a.target.value == 36900.0 => {
            println!("\n'37K EUR' correctly resolved to the 36900 cell (approximate match).")
        }
        Some(a) => println!("\n'37K EUR' aligned to value {}", a.target.value),
        None => println!("\n'37K EUR' was left unaligned."),
    }
}
