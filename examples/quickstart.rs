//! Quickstart: align the finance example of Fig. 1c.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The text mentions `$3.26 billion CDN`, `up $70 million CDN or 2%`,
//! `$0.9 billion CDN` and `increased by 1.5%`; the table reports income
//! in millions. BriQ aligns the approximate scale-word mentions to single
//! cells and the change rate to a virtual cell over the 2013/2012 income
//! cells — none of these numbers appear verbatim in the table.

use briq::{Briq, BriqConfig, Document, Table};

fn main() {
    // Fig. 1c: "Example about Finance".
    let table = Table::from_grid(
        "Income gains (in Mio)",
        vec![
            vec!["".into(), "2013".into(), "2012".into(), "2011".into()],
            vec![
                "Total Revenue".into(),
                "3,263".into(),
                "3,193".into(),
                "2,911".into(),
            ],
            vec![
                "Gross income".into(),
                "1,069".into(),
                "1,053".into(),
                "0,877".into(),
            ],
            vec![
                "Income taxes".into(),
                "179".into(),
                "177".into(),
                "160".into(),
            ],
            vec!["Income".into(), "890".into(), "876".into(), "849".into()],
        ],
    );
    let doc = Document::new(
        0,
        "In 2013 revenue of $3.26 billion CDN was up $70 million CDN or 2% \
         from the previous year. The net income of 2013 was $0.9 billion CDN. \
         Compared to the revenue of 2012, it increased by 1.5%.",
        vec![table],
    );

    let briq = Briq::untrained(BriqConfig::default());
    let alignments = briq.align(&doc);

    println!("BriQ alignments for the Fig. 1c finance example:\n");
    for a in &alignments {
        println!(
            "  {:24}  ->  {:12}  cells {:?}  (value {:.4}, score {:.3})",
            format!("{:?}", a.mention_raw),
            a.target.kind.name(),
            a.target.cells,
            a.target.value,
            a.score,
        );
    }
    if alignments.is_empty() {
        println!("  (no alignments — unexpected for this example)");
    }
}
