//! The Fig. 1a health example: aggregate and single-cell alignments.
//!
//! "A total of 123 patients" must map to a *virtual cell* — the sum of
//! the `total` column — because 123 appears in no cell. The per-effect
//! counts map to single cells.
//!
//! Run with `cargo run --release --example health_trial`.

use briq::{Briq, BriqConfig, Document, Table};

fn main() {
    let table = Table::from_grid(
        "Reported side effects",
        vec![
            vec![
                "side effects".into(),
                "male".into(),
                "female".into(),
                "total".into(),
            ],
            vec!["Rash".into(), "15".into(), "20".into(), "35".into()],
            vec!["Depression".into(), "13".into(), "25".into(), "38".into()],
            vec!["Hypertension".into(), "19".into(), "15".into(), "34".into()],
            vec!["Nausea".into(), "5".into(), "6".into(), "11".into()],
            vec!["Eye Disorders".into(), "2".into(), "3".into(), "5".into()],
        ],
    );
    let doc = Document::new(
        0,
        "A total of 123 patients who undergo the drug trials reported side \
         effects, of which there were 69 female patients and 54 male patients. \
         The most common side affect is depression, reported by 38 patients; \
         and the least common side affect is eye disorder, reported by 5 patients.",
        vec![table],
    );

    let briq = Briq::untrained(BriqConfig::default());
    println!("BriQ alignments for the Fig. 1a health example:\n");
    for a in briq.align(&doc) {
        println!(
            "  {:18}  ->  {:12}  cells {:?}  (value {}, score {:.3})",
            format!("{:?}", a.mention_raw),
            a.target.kind.name(),
            a.target.cells,
            a.target.value,
            a.score,
        );
    }

    // The headline case: "total of 123" has no matching cell; the sum
    // virtual cell over the `total` column carries exactly 123.
    let aligned = briq.align(&doc);
    match aligned.iter().find(|a| a.mention_raw.starts_with("123")) {
        Some(a) if a.target.is_aggregate() && a.target.value == 123.0 => {
            println!(
                "\n'total of 123 patients' correctly resolved to sum({:?}).",
                a.target.cells
            )
        }
        Some(a) => println!(
            "\n'123' aligned to {:?} (value {})",
            a.target.kind.name(),
            a.target.value
        ),
        None => println!("\n'123' was left unaligned."),
    }
}
