//! The Fig. 3 / Fig. 4 coupled-quantities example: two structurally
//! identical segment tables where "11%" and "13.3%" match cells in *both*
//! tables. Local scoring cannot decide; the unambiguous companions
//! "5%" and "60 bps" anchor the random walk to Table 1.
//!
//! Run with `cargo run --release --example coupled_quantities`.
//! It also dumps the candidate-graph fragment of Fig. 4.

use briq::graph_builder::build_graph;
use briq::mention::text_mentions;
use briq::{Briq, BriqConfig, Document, Table};

fn segment_table(name: &str, sales: &str, profit_chg: &str, margin: &str, bps: &str) -> Table {
    Table::from_grid(
        name,
        vec![
            vec![
                "($ Millions)".into(),
                "2Q 2012".into(),
                "2Q 2013".into(),
                "% Change".into(),
            ],
            vec![
                "Sales".into(),
                sales.split('|').next().unwrap().into(),
                sales.split('|').nth(1).unwrap().into(),
                sales.split('|').nth(2).unwrap().into(),
            ],
            vec![
                "Segment Profit".into(),
                profit_chg.split('|').next().unwrap().into(),
                profit_chg.split('|').nth(1).unwrap().into(),
                profit_chg.split('|').nth(2).unwrap().into(),
            ],
            vec![
                "Segment Margin".into(),
                margin.split('|').next().unwrap().into(),
                margin.split('|').nth(1).unwrap().into(),
                bps.into(),
            ],
        ],
    )
}

fn main() {
    // Table 1: Transportation Systems; Table 2: Automation & Control.
    let t1 = segment_table(
        "Table 1: Transportation Systems",
        "900|947|5%",
        "114|126|11%",
        "12.7%|13.3%",
        "60 bps",
    );
    let t2 = segment_table(
        "Table 2: Automation & Control",
        "3,962|4,065|3%",
        "525|585|11%",
        "13.3%|14.4%",
        "110 bps",
    );
    let doc = Document::new(
        0,
        "Sales were up 5% on both a reported and organic basis, compared with \
         the second quarter of 2012. Segment profit was up 11% and segment \
         margins increased 60 bps to 13.3% primarily driven by strong \
         productivity and volume leverage.",
        vec![t1, t2],
    );

    let briq = Briq::untrained(BriqConfig::default());

    // Show the Fig. 4 graph fragment: nodes and text-table candidate edges.
    let sd = briq.score_document(&doc);
    let (candidates, _) = briq.filter(&sd);
    let positions: Vec<usize> = sd.ctx.mentions.iter().map(|m| m.token_index).collect();
    let ag = build_graph(
        &sd.mentions,
        &positions,
        sd.ctx.tokens.len(),
        &sd.targets,
        &candidates,
        &briq.cfg.graph,
    );
    println!(
        "Candidate graph: {} nodes, {} edges",
        ag.graph.len(),
        ag.graph.edge_count()
    );
    for (i, x) in text_mentions(&doc).iter().enumerate() {
        let cands: Vec<String> = candidates[i]
            .iter()
            .map(|c| {
                let t = &sd.targets[c.target];
                format!("T{}{:?}={}", t.table + 1, t.cells, t.raw)
            })
            .collect();
        println!("  mention {:?} -> candidates {:?}", x.quantity.raw, cands);
    }

    println!("\nBriQ alignments (joint inference):\n");
    for a in briq.align(&doc) {
        println!(
            "  {:10}  ->  table {}  {:12}  cells {:?}  (score {:.3})",
            format!("{:?}", a.mention_raw),
            a.target.table + 1,
            a.target.kind.name(),
            a.target.cells,
            a.score,
        );
    }
    println!("\nAll mentions should resolve into Table 1 — the text discusses");
    println!("Transportation Systems, and the unambiguous '5%' / '60 bps'");
    println!("anchor the ambiguous '11%' and '13.3%' through the walk.");
}
