//! The anecdotal cases of Fig. 5 (correct alignments BriQ discovers) and
//! Fig. 6 (typical errors). Pass `--errors` to run the error cases.
//!
//! Run with `cargo run --release --example anecdotes [-- --errors]`.

use briq::{Briq, BriqConfig, Document, Table};

fn align_and_print(briq: &Briq, title: &str, doc: &Document) {
    println!("--- {title} ---");
    let alignments = briq.align(doc);
    if alignments.is_empty() {
        println!("  (no alignments)");
    }
    for a in &alignments {
        println!(
            "  {:28} -> {:12} cells {:?} (value {:.4})",
            format!("{:?}", a.mention_raw),
            a.target.kind.name(),
            a.target.cells,
            a.target.value,
        );
    }
    println!();
}

fn fig5_change_ratio() -> Document {
    // Fig. 5a: SIAM car sales — detected change ratio and single cells.
    Document::new(
        0,
        "The car sales growth rate that we have achieved this October is the \
         highest since early records, which was at 25.27 per cent. Overall, \
         246,725 passenger vehicles were sold in the domestic market, which is \
         an increase of 33.65% over the 184,611 units sold in the \
         corresponding period last year.",
        vec![Table::from_grid(
            "Vehicle sales by category",
            vec![
                vec!["CATEGORY".into(), "OCTOBER A".into(), "OCTOBER B".into()],
                vec![
                    "Passenger Vehicles".into(),
                    "184,611".into(),
                    "246,725".into(),
                ],
                vec![
                    "Commercial Vehicles".into(),
                    "62,013".into(),
                    "66,722".into(),
                ],
                vec!["Three-wheelers".into(), "49,069".into(), "55,241".into()],
                vec![
                    "Two-wheelers".into(),
                    "1,144,716".into(),
                    "1,285,015".into(),
                ],
            ],
        )],
    )
}

fn fig5_percentage() -> Document {
    // Fig. 5b: Fulham Gardens census — detected percentage.
    Document::new(
        1,
        "On Census Night, 5,911 people were counted in Fulham Gardens: of \
         these 49.2% were male and 50.8% were female. Of the total population \
         0.4% were Aboriginal and Torres Strait Islander people.",
        vec![Table::from_grid(
            "People counted",
            vec![
                vec!["People".into(), "Fulham Gardens".into(), "Australia".into()],
                vec!["Total".into(), "5,911".into(), "18,769,249".into()],
                vec!["Male".into(), "2,907".into(), "9,270,466".into()],
                vec!["Female".into(), "3,004".into(), "9,498,783".into()],
                vec!["Aboriginal people".into(), "23".into(), "410,003".into()],
            ],
        )],
    )
}

fn fig5_difference() -> Document {
    // Fig. 5c: Container Store — detected (approximate) difference.
    Document::new(
        2,
        "However, the Container Store's net income for the third quarter fell \
         16.3 million from the third quarter in the prior fiscal year, earning \
         the company a net loss of approximately 9.5 million on account of \
         IPO-related expenses.",
        vec![Table::from_grid(
            "Quarterly earnings ($ Millions)",
            vec![
                vec!["Company".into(), "Prior Net".into(), "Current Net".into()],
                vec!["Bed Bath & Beyond".into(), "232.8".into(), "237.2".into()],
                vec!["Container Store".into(), "6.86".into(), "(9.49)".into()],
            ],
        )],
    )
}

fn fig6_same_value_collision() -> Document {
    // Fig. 6a: bedrooms census — '3.2' exists twice in the same row with
    // near-identical context; BriQ typically picks one arbitrarily.
    Document::new(
        3,
        "Of occupied private dwellings 4.5% had 1 bedroom, 13.0% had 2 \
         bedrooms and 42.2% had 3 bedrooms. The average number of bedrooms \
         per occupied private dwelling was 3.2. The average household size \
         was 2.6 people.",
        vec![Table::from_grid(
            "Number of bedrooms",
            vec![
                vec![
                    "Number of bedrooms".into(),
                    "Scenic Rim".into(),
                    "%".into(),
                    "Queensland avg".into(),
                ],
                vec!["1 bedroom".into(), "204".into(), "4.5".into(), "4.2".into()],
                vec![
                    "2 bedrooms".into(),
                    "582".into(),
                    "13.0".into(),
                    "16.8".into(),
                ],
                vec![
                    "3 bedrooms".into(),
                    "1,895".into(),
                    "42.2".into(),
                    "42.1".into(),
                ],
                vec![
                    "Average bedrooms per dwelling".into(),
                    "3.2".into(),
                    "".into(),
                    "3.2".into(),
                ],
                vec![
                    "Average people per household".into(),
                    "2.6".into(),
                    "".into(),
                    "2.6".into(),
                ],
            ],
        )],
    )
}

fn fig6_high_ambiguity() -> Document {
    // Fig. 6b: Ponoko pricing — '$50' appears as wholesale price and
    // retail fee; the immediate context contains both cue words.
    Document::new(
        4,
        "So, if your cost for an item is 35 dollars, and you see similar \
         items selling for 100 dollars retail, then a 50 dollar wholesale \
         cost gives you a nice profit.",
        vec![Table::from_grid(
            "Pricing sheet",
            vec![
                vec!["item".into(), "amount".into()],
                vec!["Your cost price".into(), "$35".into()],
                vec!["Your creative fee".into(), "$15".into()],
                vec!["Your wholesale price".into(), "$50".into()],
                vec!["Your retail fee".into(), "$50".into()],
                vec!["Your retail price".into(), "$100".into()],
            ],
        )],
    )
}

fn main() {
    let errors = std::env::args().any(|a| a == "--errors");
    let briq = Briq::untrained(BriqConfig::default());

    if errors {
        println!("Fig. 6: typical error cases (same-value collisions, ambiguity)\n");
        align_and_print(
            &briq,
            "Fig. 6a — same-value collision ('3.2' twice in a row)",
            &fig6_same_value_collision(),
        );
        align_and_print(
            &briq,
            "Fig. 6b — high ambiguity ('$50' wholesale vs retail)",
            &fig6_high_ambiguity(),
        );
    } else {
        println!("Fig. 5: anecdotal alignments discovered by BriQ\n");
        align_and_print(
            &briq,
            "Fig. 5a — change ratio (car sales)",
            &fig5_change_ratio(),
        );
        align_and_print(&briq, "Fig. 5b — percentage (census)", &fig5_percentage());
        align_and_print(
            &briq,
            "Fig. 5c — difference (net income)",
            &fig5_difference(),
        );
    }
}
