//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the BriQ bench files use — `Criterion`,
//! benchmark groups, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery.
//! Good enough to keep `cargo bench` compiling and producing relative
//! numbers in an environment with no registry access.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id rendered from the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }

    /// Id with an explicit function name and parameter.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibrate: grow the iteration count until one sample takes >= ~1ms,
    // then take `sample_size` samples and report the best (least noisy).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }
    let mut best = Duration::MAX;
    for _ in 0..sample_size.clamp(1, 20) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let per_iter = best.as_nanos() as f64 / iters as f64;
    println!("bench {label:<48} {per_iter:>14.1} ns/iter ({iters} iters)");
}

/// Top-level bench context, handed to each registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Run a parameterised benchmark; the input is passed by reference.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundle bench functions under one group name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}
