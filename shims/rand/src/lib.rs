//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The BriQ workspace builds with `--offline`; the registry is not
//! reachable, so this local crate provides exactly the surface the
//! workspace uses: `StdRng::seed_from_u64`, `Rng::random_range` over
//! integer and float ranges, `Rng::random_bool`, and slice `shuffle`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic,
//! high-quality, and stable across platforms. Streams differ from the real
//! `rand` crate; everything in this workspace that depends on seeds is
//! self-consistent, so only reproducibility within the workspace matters.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Primitive types uniformly samplable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u64;
                let r = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                (lo as i128 + r as i128) as $ty
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty range in random_range");
        let v = lo + unit_f64(rng) * (hi - lo);
        // Guard against rounding up to the excluded end.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_half_open(lo as f64, hi as f64, rng) as f32
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64::sample_inclusive(lo as f64, hi as f64, rng) as f32
    }
}

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods, available on every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample from an integer or float range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// A uniformly random value; `f64` in `[0, 1)`, integers over their
    /// whole domain, `bool` fair.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable by [`Rng::random`].
pub trait Standard {
    /// Draw a value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice extension: Fisher–Yates shuffle.
pub trait SliceRandom {
    /// Shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// The commonly imported names.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&y));
            let z = rng.random_range(5..=5);
            assert_eq!(z, 5);
            let w: i64 = rng.random_range(-10..10);
            assert!((-10..10).contains(&w));
        }
    }

    #[test]
    fn inference_through_arithmetic_context() {
        // Mirrors call sites like `(n as i64 + rng.random_range(-1..=1))`.
        let mut rng = rngs::StdRng::seed_from_u64(9);
        let n: usize = 5;
        let adjusted = (n as i64 + rng.random_range(-1..=1)).max(2) as usize;
        assert!((4..=6).contains(&adjusted));
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = rngs::StdRng::seed_from_u64(10);
        let f = |rng: &mut dyn RngCore| rng.random_range(0..100usize);
        let v = f(&mut rng);
        assert!(v < 100);
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }
}
