//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the BriQ test suites use: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`, range / tuple /
//! string-pattern strategies, `proptest::collection::vec`, `Just`,
//! `prop_map`, and `prop_flat_map`.
//!
//! Differences from real proptest: generation is deterministic (seeded per
//! test name and case index, so failures reproduce without regression
//! files) and there is no shrinking — a failing case reports its assertion
//! message directly. String patterns support the regex subset the suites
//! use: char classes with ranges, `\d` `\w` `\s` `\PC`, and the `{n,m}`
//! `{n}` `*` `+` `?` quantifiers.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG (xoshiro256++, seeded via SplitMix64 — self-contained on purpose)
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                let r = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo as i128 + r as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String pattern strategies
// ---------------------------------------------------------------------------

enum CharSet {
    /// Inclusive char ranges; sampled proportionally to size.
    Ranges(Vec<(char, char)>),
    /// Any non-control scalar value (`\PC`).
    NotControl,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Ranges(ranges) => {
                let total: u64 = ranges.iter().map(|&(a, b)| b as u64 - a as u64 + 1).sum();
                let mut pick = rng.below(total.max(1));
                for &(a, b) in ranges {
                    let span = b as u64 - a as u64 + 1;
                    if pick < span {
                        // Skip the surrogate gap if the range straddles it.
                        let code = a as u32 + pick as u32;
                        return char::from_u32(code).unwrap_or('a');
                    }
                    pick -= span;
                }
                'a'
            }
            CharSet::NotControl => loop {
                // Mostly ASCII printable, sometimes wider Unicode; never
                // control characters.
                let c = match rng.below(10) {
                    0..=6 => char::from_u32(0x20 + rng.below(0x5f) as u32),
                    7 => char::from_u32(0xA1 + rng.below(0xFF) as u32),
                    8 => char::from_u32(0x0100 + rng.below(0xD700) as u32),
                    _ => char::from_u32(0x1_F300 + rng.below(0x400) as u32),
                };
                if let Some(c) = c {
                    if !c.is_control() {
                        return c;
                    }
                }
            },
        }
    }
}

struct PatternElement {
    set: CharSet,
    min: usize,
    max: usize,
}

/// Parse the supported regex subset into concrete elements.
///
/// Panics on unsupported syntax — a pattern is test code, so a loud failure
/// at test time is the right behaviour.
fn parse_pattern(pattern: &str) -> Vec<PatternElement> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let a = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        let b = chars[i + 1];
                        ranges.push((a, b));
                        i += 2;
                    } else {
                        ranges.push((a, a));
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // ']'
                CharSet::Ranges(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars
                    .get(i)
                    .copied()
                    .unwrap_or_else(|| panic!("dangling backslash in pattern {pattern:?}"));
                i += 1;
                match c {
                    'd' => CharSet::Ranges(vec![('0', '9')]),
                    'w' => CharSet::Ranges(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => CharSet::Ranges(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
                    'P' => {
                        // Only \PC (non-control) is supported.
                        let class = chars.get(i).copied();
                        assert_eq!(class, Some('C'), "unsupported \\P class in {pattern:?}");
                        i += 1;
                        CharSet::NotControl
                    }
                    other => CharSet::Ranges(vec![(other, other)]),
                }
            }
            c => {
                i += 1;
                CharSet::Ranges(vec![(c, c)])
            }
        };
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repeat in {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("repeat lower bound"),
                        hi.trim().parse().expect("repeat upper bound"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("repeat count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 64)
            }
            Some('+') => {
                i += 1;
                (1, 64)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad repeat bounds in {pattern:?}");
        out.push(PatternElement { set, min, max });
    }
    out
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for el in &elements {
            let n = el.min + rng.below((el.max - el.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(el.set.sample(rng));
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Size specification for [`collection::vec`].
#[derive(Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing vectors of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Outcome of one generated case.
pub enum TestCaseError {
    /// An assertion failed; the message explains how.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "Fail({m})"),
            TestCaseError::Reject => write!(f, "Reject"),
        }
    }
}

/// Runner configuration; only `cases` is meaningful here.
#[derive(Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a, so each property gets its own deterministic stream.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drive one property: run `config.cases` cases, retrying rejected ones.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = name_seed(name);
    let mut rejects = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(1024);
    let mut i = 0u64;
    let mut done = 0u32;
    while done < config.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(i));
        i += 1;
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject) => {
                rejects += 1;
                assert!(
                    rejects < max_rejects,
                    "property {name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed (case {done}, seed {i}): {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy, ...)`
/// items, each carrying its own attributes (`#[test]`, docs).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` item inside `proptest!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert within a property; failure reports the case instead of panicking
/// mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+),
            )));
        }
    }};
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// The commonly imported names.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategies_respect_shape() {
        let mut rng = super::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = super::Strategy::generate(&"[ -~]{1,24}", &mut rng);
            assert!((1..=24).contains(&s.chars().count()));
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));

            let t = super::Strategy::generate(&"\\PC{0,64}", &mut rng);
            assert!(t.chars().count() <= 64);
            assert!(t.chars().all(|c| !c.is_control()));

            let d = super::Strategy::generate(&"\\d{3}", &mut rng);
            assert_eq!(d.len(), 3);
            assert!(d.chars().all(|c| c.is_ascii_digit()));

            let star = super::Strategy::generate(&"[a-z]*", &mut rng);
            assert!(star.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn composite_strategies() {
        let mut rng = super::TestRng::seed_from_u64(2);
        let strat = (2usize..6, 2usize..5).prop_flat_map(|(rows, cols)| {
            collection::vec(collection::vec(1u32..100, cols), rows)
                .prop_map(move |grid| (rows, grid))
        });
        for _ in 0..100 {
            let (rows, grid) = super::Strategy::generate(&strat, &mut rng);
            assert_eq!(grid.len(), rows);
            assert!(grid
                .iter()
                .all(|row| row.iter().all(|&v| (1..100).contains(&v))));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires arguments, assertions, and assumptions together.
        #[test]
        fn macro_end_to_end(x in 1u64..1000, f in 0.0f64..1.0, s in "[a-c]{2,4}") {
            prop_assume!(x != 999);
            prop_assert!((1..1000).contains(&x));
            prop_assert!((0.0..1.0).contains(&f), "f = {f}");
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        super::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(super::TestCaseError::Fail("boom".into()))
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut out = Vec::new();
            super::run_property("det", &ProptestConfig::with_cases(8), |rng| {
                out.push(super::Strategy::generate(&(0u64..1_000_000), rng));
                Ok(())
            });
            out
        };
        assert_eq!(run(), run());
    }
}
