#!/usr/bin/env bash
# Perf-trajectory check: compare a fresh throughput measurement against
# the committed BENCH_throughput.json (git show HEAD:...) and fail on a
# classify-stage regression beyond $TREND_TOL percent (default 25).
#
#   tools/bench_trend.sh [fresh.json]
#
# With an argument, that file is taken as the fresh measurement (CI's
# bench-smoke stage passes its just-written artifact); without one, a
# fresh point is measured into a temp file so the stage is standalone.
#
# The compared number is the sequential (--jobs 1) point's classify-stage
# CPU-seconds — the hot path the retrieval index and scoring engine own.
# Wall-clock comparisons are only meaningful within one host, which is
# exactly the CI situation this guards (same machine, PR over PR).
#
# Hard rule: the two artifacts' index_enabled states must match.
# Indexed and exhaustive numbers live on different complexity curves, so
# a silent mix would make the trajectory meaningless; a mismatch FAILS
# rather than skips. Missing baselines skip loudly (exit 0): the first
# commit of an artifact records the baseline, it cannot regress against
# itself.
set -uo pipefail
cd "$(dirname "$0")/.."

TREND_TOL="${TREND_TOL:-25}"
NPROC="$(nproc 2>/dev/null || echo 1)"
BENCH_DOCS="${BENCH_DOCS:-60}"
BENCH_SEED="${BENCH_SEED:-20190408}"

# First occurrence wins: field order puts the sequential baseline point
# (and the top-level scalars) ahead of the parallel point.
json_field() { # file field
    awk -F': ' -v key="\"$2\"" '$1 ~ key {gsub(/,/, "", $2); print $2; exit}' "$1"
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

committed="$tmpdir/committed.json"
if ! git show HEAD:BENCH_throughput.json > "$committed" 2>/dev/null; then
    echo "perf-trend: no BENCH_throughput.json at HEAD; skipping (first artifact commit records the baseline)"
    exit 0
fi

fresh="${1:-}"
if [ -z "$fresh" ]; then
    fresh="$tmpdir/fresh.json"
    cargo build --offline --release -q -p briq-bench || exit 1
    ./target/release/briq-eval throughput \
        --docs "$BENCH_DOCS" --seed "$BENCH_SEED" --jobs "$NPROC" \
        --out "$fresh" > /dev/null || exit 1
fi
if [ ! -s "$fresh" ]; then
    echo "perf-trend: fresh measurement $fresh missing or empty" >&2
    exit 1
fi

old_idx="$(json_field "$committed" index_enabled)"
new_idx="$(json_field "$fresh" index_enabled)"
if [ -z "$old_idx" ]; then
    echo "perf-trend: committed artifact predates the index_enabled schema; skipping (next commit records a comparable baseline)"
    exit 0
fi
if [ -z "$new_idx" ]; then
    echo "perf-trend: fresh artifact carries no index_enabled field" >&2
    exit 1
fi
if [ "$old_idx" != "$new_idx" ]; then
    echo "perf-trend: refusing to compare index_enabled=$new_idx against committed index_enabled=$old_idx — indexed and exhaustive numbers must never mix" >&2
    exit 1
fi

old_s="$(json_field "$committed" classify_s)"
new_s="$(json_field "$fresh" classify_s)"
if [ -z "$old_s" ] || [ -z "$new_s" ]; then
    echo "perf-trend: classify_s missing (committed: '${old_s:-}', fresh: '${new_s:-}')" >&2
    exit 1
fi

awk -v old="$old_s" -v new="$new_s" -v tol="$TREND_TOL" -v idx="$new_idx" '
BEGIN {
    if (old <= 0) {
        printf "perf-trend: committed classify_s %s not positive; skipping\n", old
        exit 0
    }
    pct = (new - old) / old * 100
    printf "perf-trend: classify-stage %ss -> %ss (%+.1f%%, tolerance %s%%, index_enabled=%s)\n", old, new, pct, tol, idx
    exit !(pct <= tol)
}' || {
    echo "perf-trend: classify-stage regression beyond ${TREND_TOL}% (set TREND_TOL to adjust)" >&2
    exit 1
}
