#!/usr/bin/env bash
# Perf-trajectory check: compare a fresh throughput measurement against
# the committed BENCH_throughput.json (git show HEAD:...) and fail on a
# gated-stage regression beyond $TREND_TOL percent (default 25).
#
#   tools/bench_trend.sh [fresh.json]
#
# With an argument, that file is taken as the fresh measurement (CI's
# bench-smoke stage passes its just-written artifact); without one, a
# fresh point is measured into a temp file so the stage is standalone.
#
# The compared numbers are the sequential (--jobs 1) point's
# extract-stage, classify-stage, and resolve-stage CPU-seconds — the
# paths the table/context extractors, the retrieval index + scoring
# engine, and the CSR random-walk kernel own (extract is also what the
# alignment store's incremental re-alignment amortizes, so it must not
# creep) — plus the durable store's warm-start recovery time
# (store.persist.recover_s: the cost of replaying snapshot + novelty
# log on reopen, which must stay O(entries) and must not creep as the
# codec grows). All gates use the same $TREND_TOL. Wall-clock comparisons are only
# meaningful within one host, which is exactly the CI situation this
# guards (same machine, PR over PR).
#
# Hard rule: the two artifacts' index_enabled states must match.
# Indexed and exhaustive numbers live on different complexity curves, so
# a silent mix would make the trajectory meaningless; a mismatch FAILS
# rather than skips. Missing baselines skip loudly (exit 0): the first
# commit of an artifact records the baseline, it cannot regress against
# itself.
set -uo pipefail
cd "$(dirname "$0")/.."

TREND_TOL="${TREND_TOL:-25}"
NPROC="$(nproc 2>/dev/null || echo 1)"
BENCH_DOCS="${BENCH_DOCS:-60}"
BENCH_SEED="${BENCH_SEED:-20190408}"

# First occurrence wins: field order puts the sequential baseline point
# (and the top-level scalars) ahead of the parallel point.
json_field() { # file field
    awk -F': ' -v key="\"$2\"" '$1 ~ key {gsub(/,/, "", $2); print $2; exit}' "$1"
}

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

committed="$tmpdir/committed.json"
if ! git show HEAD:BENCH_throughput.json > "$committed" 2>/dev/null; then
    echo "perf-trend: no BENCH_throughput.json at HEAD; skipping (first artifact commit records the baseline)"
    exit 0
fi

fresh="${1:-}"
if [ -z "$fresh" ]; then
    fresh="$tmpdir/fresh.json"
    cargo build --offline --release -q -p briq-bench || exit 1
    ./target/release/briq-eval throughput \
        --docs "$BENCH_DOCS" --seed "$BENCH_SEED" --jobs "$NPROC" \
        --out "$fresh" > /dev/null || exit 1
fi
if [ ! -s "$fresh" ]; then
    echo "perf-trend: fresh measurement $fresh missing or empty" >&2
    exit 1
fi

old_idx="$(json_field "$committed" index_enabled)"
new_idx="$(json_field "$fresh" index_enabled)"
if [ -z "$old_idx" ]; then
    echo "perf-trend: committed artifact predates the index_enabled schema; skipping (next commit records a comparable baseline)"
    exit 0
fi
if [ -z "$new_idx" ]; then
    echo "perf-trend: fresh artifact carries no index_enabled field" >&2
    exit 1
fi
if [ "$old_idx" != "$new_idx" ]; then
    echo "perf-trend: refusing to compare index_enabled=$new_idx against committed index_enabled=$old_idx — indexed and exhaustive numbers must never mix" >&2
    exit 1
fi

# gate_stage <field> <label>: compare one stage's sequential
# CPU-seconds, committed vs fresh, under $TREND_TOL. A field absent from
# the *committed* artifact skips (older schema records a baseline on the
# next commit); absent from the *fresh* artifact it fails — the bench
# binary must keep reporting every gated stage.
gate_stage() { # field label
    local field="$1" label="$2" old_s new_s
    old_s="$(json_field "$committed" "$field")"
    new_s="$(json_field "$fresh" "$field")"
    if [ -z "$old_s" ]; then
        echo "perf-trend: committed artifact predates the $field schema; skipping $label gate"
        return 0
    fi
    if [ -z "$new_s" ]; then
        echo "perf-trend: $field missing from fresh artifact" >&2
        return 1
    fi
    awk -v old="$old_s" -v new="$new_s" -v tol="$TREND_TOL" -v idx="$new_idx" -v label="$label" '
    BEGIN {
        if (old <= 0) {
            printf "perf-trend: committed %s %s not positive; skipping\n", label, old
            exit 0
        }
        pct = (new - old) / old * 100
        printf "perf-trend: %s-stage %ss -> %ss (%+.1f%%, tolerance %s%%, index_enabled=%s)\n", label, old, new, pct, tol, idx
        exit !(pct <= tol)
    }' || {
        echo "perf-trend: $label-stage regression beyond ${TREND_TOL}% (set TREND_TOL to adjust)" >&2
        return 1
    }
}

rc=0
gate_stage extract_s extract || rc=1
gate_stage classify_s classify || rc=1
gate_stage resolve_s resolve || rc=1
# store.persist.recover_s: the only "recover_s" key in the artifact, so
# the flat first-occurrence scan finds the nested field unambiguously.
gate_stage recover_s recovery || rc=1
exit "$rc"
