//! Property suite for the cooperative-cancellation contract
//! (DESIGN.md §12): a cancelled request leaves **no partial state** —
//! empty alignments plus exactly one [`DegradedAction::Cancelled`]
//! diagnostic — an un-cancelled token changes nothing bit-for-bit, and
//! the same `Briq` (and a real worker pool) stays fully serviceable
//! after absorbing cancelled requests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use briq_core::obs::Recorder;
use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::{Budget, CancelToken, DegradedAction, Diagnostics};
use briq_table::{Document, Table};
use proptest::prelude::*;

/// A numeric document with `vals` in a table and `text_val` in prose —
/// the same generator shape the pipeline property suite uses.
fn numeric_doc(vals: &[u32], text_val: u32) -> Document {
    let mut grid = vec![vec!["metric".to_string(), "value".to_string()]];
    for (i, v) in vals.iter().enumerate() {
        grid.push(vec![format!("row{i}"), v.to_string()]);
    }
    Document::new(
        0,
        format!("The report mentions {text_val} units in its overview section."),
        vec![Table::from_grid("stats", grid)],
    )
}

fn fired_flag() -> Arc<AtomicBool> {
    let flag = Arc::new(AtomicBool::new(false));
    flag.store(true, Ordering::SeqCst);
    flag
}

/// The no-partial-state assertion: empty alignments, exactly one
/// diagnostic, and that diagnostic is a `Cancelled` naming the cause.
fn assert_cancelled_clean(
    alignments: &[briq_core::Alignment],
    diags: &Diagnostics,
    want_reason: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(
        alignments.is_empty(),
        "cancelled request leaked {} alignments",
        alignments.len()
    );
    let cancelled: Vec<_> = diags
        .items
        .iter()
        .filter(|d| d.action == DegradedAction::Cancelled)
        .collect();
    prop_assert_eq!(
        cancelled.len(),
        1,
        "expected exactly one Cancelled diagnostic, got {:?}",
        diags.items
    );
    prop_assert!(
        cancelled[0].error.contains(want_reason),
        "diagnostic {:?} does not name the cause {:?}",
        cancelled[0],
        want_reason
    );
    Ok(())
}

proptest! {
    /// A pre-fired shutdown flag cancels any document without partial
    /// state, and the very same `Briq` instance then serves a clean
    /// request bit-identically to one that never saw a cancellation.
    #[test]
    fn cancelled_request_leaves_no_partial_state_and_briq_stays_serviceable(
        vals in proptest::collection::vec(1u32..99_999, 2..6),
        text_val in 1u32..99_999,
    ) {
        let doc = numeric_doc(&vals, text_val);
        let briq = Briq::untrained(BriqConfig::default());
        let budget = Budget::default();

        let baseline = briq.align_checked_with(&doc, &budget);

        let token = CancelToken::with_flag(fired_flag());
        let (alignments, diags, _) =
            briq.align_cancellable(&doc, &budget, &Recorder::disabled(), &token);
        assert_cancelled_clean(&alignments, &diags, "shutdown drain")?;

        // Serviceable afterward: the cancelled call left nothing behind
        // in the (shared, immutable) Briq — the next clean call is
        // bit-identical to the pre-cancellation baseline.
        let after = briq.align_checked_with(&doc, &budget);
        prop_assert_eq!(&after.0, &baseline.0, "alignments drifted after a cancellation");
        prop_assert_eq!(
            after.1.to_jsonl(),
            baseline.1.to_jsonl(),
            "diagnostics drifted after a cancellation"
        );
    }

    /// An already-elapsed deadline behaves exactly like the flag — no
    /// partial state — but reports `deadline exceeded` as the cause.
    #[test]
    fn elapsed_deadline_reports_deadline_cause_without_partial_state(
        vals in proptest::collection::vec(1u32..99_999, 2..6),
        text_val in 1u32..99_999,
    ) {
        let doc = numeric_doc(&vals, text_val);
        let briq = Briq::untrained(BriqConfig::default());
        let token = CancelToken::deadline_in(std::time::Duration::ZERO);
        let (alignments, diags, _) = briq.align_cancellable(
            &doc,
            &Budget::default(),
            &Recorder::disabled(),
            &token,
        );
        assert_cancelled_clean(&alignments, &diags, "deadline exceeded")?;
    }

    /// `CancelToken::none` is the oracle guard: the cancellable path
    /// with a token that can never fire is bit-identical to the legacy
    /// checked path AND to plain `align` under an unlimited budget.
    #[test]
    fn none_token_is_bit_identical_to_the_legacy_paths(
        vals in proptest::collection::vec(1u32..99_999, 2..6),
        text_val in 1u32..99_999,
    ) {
        let doc = numeric_doc(&vals, text_val);
        let briq = Briq::untrained(BriqConfig::default());
        let budget = Budget::default();

        let (a_cancellable, d_cancellable, _) = briq.align_cancellable(
            &doc,
            &budget,
            &Recorder::disabled(),
            &CancelToken::none(),
        );
        let (a_checked, d_checked) = briq.align_checked_with(&doc, &budget);
        prop_assert_eq!(&a_cancellable, &a_checked);
        prop_assert_eq!(d_cancellable.to_jsonl(), d_checked.to_jsonl());

        let unlimited = Budget::unlimited();
        let (a_unlimited, d_unlimited, _) = briq.align_cancellable(
            &doc,
            &unlimited,
            &Recorder::disabled(),
            &CancelToken::none(),
        );
        prop_assert_eq!(&a_unlimited, &briq.align(&doc));
        // Benign degradations (e.g. RWR residual truncation) may appear,
        // but a token that never fires must never record a cancellation.
        prop_assert!(
            d_unlimited
                .items
                .iter()
                .all(|d| d.action != DegradedAction::Cancelled),
            "{:?}",
            d_unlimited.items
        );
    }
}

/// When both a raised flag and an expired deadline are visible, the
/// flag (shutdown) wins — drain must not be misreported as a timeout.
#[test]
fn shutdown_flag_wins_over_expired_deadline() {
    let doc = numeric_doc(&[10, 20, 30], 10);
    let briq = Briq::untrained(BriqConfig::default());
    let token = CancelToken::with_flag(fired_flag())
        .and_deadline(std::time::Instant::now() - std::time::Duration::from_secs(1));
    let (alignments, diags, _) =
        briq.align_cancellable(&doc, &Budget::default(), &Recorder::disabled(), &token);
    assert!(alignments.is_empty());
    let cancelled: Vec<_> = diags
        .items
        .iter()
        .filter(|d| d.action == DegradedAction::Cancelled)
        .collect();
    assert_eq!(cancelled.len(), 1, "{:?}", diags.items);
    assert!(
        cancelled[0].error.contains("shutdown drain"),
        "{:?}",
        cancelled[0]
    );
}

/// The worker *pool* stays serviceable after cancellations: a real
/// in-process server absorbs a burst of already-expired-deadline
/// requests and then answers a clean request normally on the same
/// workers.
#[test]
fn worker_pool_stays_serviceable_after_cancelled_requests() {
    use briq_core::serve::{ServeConfig, Server};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let briq = Briq::untrained(BriqConfig::default());
    let cfg = ServeConfig {
        workers: 2,
        ..Default::default()
    };
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run(&briq));

    let html = briq_json::Value::Str(
        "<html><body><p>The report mentions 42 units.</p>\
         <table><tr><th>metric</th><th>value</th></tr>\
         <tr><td>row0</td><td>42</td></tr></table></body></html>"
            .into(),
    )
    .to_string_compact();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;

    // A burst of requests whose deadlines are effectively pre-expired.
    for i in 0..6 {
        let req = format!("{{\"op\":\"align\",\"id\":{i},\"html\":{html},\"deadline_ms\":0}}\n");
        stream.write_all(req.as_bytes()).expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let v = briq_json::parse(&line).expect("parseable response");
        // Shed or ok-with-cancellation are both acceptable; a hang,
        // panic, or malformed line is not.
        let status = v.get("status").and_then(briq_json::Value::as_str);
        assert!(status == Some("ok") || status == Some("shed"), "{line}");
    }

    // The pool must still answer a clean, deadline-free request.
    let req = format!("{{\"op\":\"align\",\"id\":99,\"html\":{html}}}\n");
    stream.write_all(req.as_bytes()).expect("write clean");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read clean");
    let v = briq_json::parse(&line).expect("parseable clean response");
    assert_eq!(
        v.get("status").and_then(briq_json::Value::as_str),
        Some("ok"),
        "{line}"
    );
    // The untrained pipeline may report benign degradations (RWR
    // residual truncation), but the clean request must produce real
    // alignments and no cancellation residue from the earlier burst.
    assert!(
        line.contains("\"alignments\":[{"),
        "clean request produced no alignments: {line}"
    );
    assert!(
        !line.contains("Cancelled"),
        "cancellation leaked into a clean request: {line}"
    );

    stream
        .write_all(b"{\"op\":\"shutdown\"}\n")
        .expect("write shutdown");
    let report = handle.join().expect("server thread");
    assert_eq!(report.panics, 0, "worker panicked during the run");
}
