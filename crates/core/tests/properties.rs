//! Property-based tests for the core pipeline invariants.

use briq_core::features::{feature_vector, relative_difference, FeatureMask, FEATURE_COUNT};
use briq_core::filtering::{filter_mention, FilterConfig, FilterStats};
use briq_core::jaro::{jaro, jaro_winkler};
use briq_core::mention::{text_mentions, TextMention};
use briq_core::pipeline::{heuristic_prior, Briq, BriqConfig};
use briq_table::{Document, Table, TableMention, TableMentionKind};
use briq_text::quantity::QuantityMention;
use briq_text::units::Unit;
use proptest::prelude::*;

fn mention(value: f64) -> TextMention {
    TextMention {
        id: 0,
        quantity: QuantityMention {
            raw: format!("{value}"),
            value,
            unnormalized: value,
            unit: Unit::None,
            precision: 0,
            approx: Default::default(),
            start: 0,
            end: 4,
        },
    }
}

fn target(value: f64) -> TableMention {
    TableMention {
        table: 0,
        kind: TableMentionKind::SingleCell,
        cells: vec![(1, 1)],
        value,
        unnormalized: value,
        raw: format!("{value}"),
        unit: Unit::None,
        precision: 0,
        orientation: None,
    }
}

proptest! {
    /// Jaro and Jaro-Winkler are symmetric, bounded, and reflexive.
    #[test]
    fn jaro_winkler_metric_properties(a in "[0-9a-z.,$%]{0,12}", b in "[0-9a-z.,$%]{0,12}") {
        let ab = jaro_winkler(&a, &b);
        let ba = jaro_winkler(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!(jaro(&a, &b) <= ab + 1e-12, "winkler boost never decreases");
        if !a.is_empty() {
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }

    /// Relative difference: symmetric, zero iff equal, bounded by 2.
    #[test]
    fn relative_difference_properties(x in -1e9f64..1e9, t in -1e9f64..1e9) {
        let d = relative_difference(x, t);
        prop_assert!((relative_difference(t, x) - d).abs() < 1e-12);
        prop_assert!((0.0..=2.0).contains(&d));
        if x == t {
            prop_assert_eq!(d, 0.0);
        }
    }

    /// Heuristic prior maps any plausible feature vector into [0, 1] and
    /// decreases when the value distance grows.
    #[test]
    fn heuristic_prior_bounded_and_monotone(
        f1 in 0.0f64..1.0,
        ctx in 0.0f64..1.0,
        d_small in 0.0f64..0.2,
        d_large in 0.8f64..2.0,
    ) {
        let mk = |d: f64| {
            let mut f = vec![0.0; FEATURE_COUNT];
            f[0] = f1;
            f[1] = ctx;
            f[5] = d;
            f[6] = d;
            f
        };
        let near = heuristic_prior(&mk(d_small));
        let far = heuristic_prior(&mk(d_large));
        prop_assert!((0.0..=1.0).contains(&near));
        prop_assert!((0.0..=1.0).contains(&far));
        prop_assert!(near >= far);
    }

    /// Filtering output is a subset of the input, sorted by score, and
    /// never exceeds the configured caps.
    #[test]
    fn filter_output_invariants(scores in proptest::collection::vec(0.0f64..1.0, 1..60)) {
        let x = mention(50.0);
        let targets: Vec<TableMention> =
            (0..scores.len()).map(|i| target(45.0 + i as f64 * 0.2)).collect();
        let scored: Vec<(usize, f64)> =
            scores.iter().enumerate().map(|(i, &s)| (i, s)).collect();
        let cfg = FilterConfig::default();
        let mut stats = FilterStats::default();
        let kept = filter_mention(&x, &scored, &targets, &[], &cfg, &mut stats);
        prop_assert!(kept.len() <= cfg.k_exact.max(cfg.k_approx).max(cfg.k_small).max(cfg.k_large));
        for w in kept.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        for c in &kept {
            prop_assert!(c.target < targets.len());
            prop_assert!(scored.iter().any(|&(t, s)| t == c.target && s == c.score));
        }
        prop_assert!(stats.overall_selectivity() <= 1.0);
    }

    /// Feature vectors are finite, fixed-size, and the mask is idempotent.
    #[test]
    fn feature_vectors_wellformed(v1 in 1.0f64..1e6, v2 in 1.0f64..1e6) {
        let doc = Document::new(
            0,
            format!("The first figure reached {v1} and the second {v2}."),
            vec![Table::from_grid(
                "",
                vec![
                    vec!["metric".into(), "value".into()],
                    vec!["first".into(), format!("{v1:.0}")],
                    vec!["second".into(), format!("{v2:.0}")],
                ],
            )],
        );
        let mentions = text_mentions(&doc);
        prop_assume!(!mentions.is_empty());
        let ctx = briq_core::context::DocContext::build(
            &doc,
            &mentions,
            &briq_core::context::ContextConfig::default(),
        );
        let t = target(v1);
        let mut f = feature_vector(&mentions[0], &t, &ctx);
        prop_assert_eq!(f.len(), FEATURE_COUNT);
        prop_assert!(f.iter().all(|x| x.is_finite()));
        let mask = FeatureMask { surface: false, context: true, quantity: false };
        mask.apply(&mut f);
        let once = f.clone();
        mask.apply(&mut f);
        prop_assert_eq!(f, once);
    }

    /// `align_checked` never panics and never exceeds its budget on
    /// arbitrary UTF-8 documents: whatever bytes end up in the text and
    /// the table cells, the budgeted pipeline terminates, keeps every
    /// score finite, stays within the virtual-cell cap, and reports any
    /// degradation through diagnostics instead of aborting.
    #[test]
    fn align_checked_total_and_budgeted_on_arbitrary_utf8(
        text in "\\PC{0,120}",
        cells in proptest::collection::vec("\\PC{0,12}", 0..24),
        n_cols in 1usize..5,
    ) {
        let grid: Vec<Vec<String>> =
            cells.chunks(n_cols).map(|row| row.to_vec()).collect();
        let doc = Document::new(0, text, vec![Table::from_grid("", grid)]);
        let briq = Briq::untrained(BriqConfig::default());
        let budget = briq_core::Budget {
            max_regex_steps: 1_000,
            max_virtual_cells_per_table: 16,
            max_graph_edges: 64,
            max_rwr_iterations: 8,
        };
        let (alignments, diags) = briq.align_checked_with(&doc, &budget);
        for a in &alignments {
            prop_assert!(a.score.is_finite());
            prop_assert!(a.mention_end <= doc.text.len());
        }
        // Budget respected: the scored document never carries more
        // virtual cells than allowed.
        let (sd, _) = briq.score_document_budgeted(&doc, &budget);
        let virtuals = sd
            .targets
            .iter()
            .filter(|t| t.kind != TableMentionKind::SingleCell)
            .count();
        prop_assert!(virtuals <= budget.max_virtual_cells_per_table);
        // Diagnostics always serialize, degraded or not.
        let jsonl = diags.to_jsonl();
        prop_assert_eq!(jsonl.lines().count(), diags.items.len());
    }

    /// The full pipeline is total over random numeric documents, and every
    /// produced alignment points at a real target with in-bounds cells.
    #[test]
    fn pipeline_alignments_wellformed(
        vals in proptest::collection::vec(1u32..99_999, 2..6),
        text_val in 1u32..99_999,
    ) {
        let mut grid = vec![vec!["metric".to_string(), "value".to_string()]];
        for (i, v) in vals.iter().enumerate() {
            grid.push(vec![format!("row{i}"), v.to_string()]);
        }
        let doc = Document::new(
            0,
            format!("The report mentions {text_val} units in its overview section."),
            vec![Table::from_grid("stats", grid)],
        );
        let briq = Briq::untrained(BriqConfig::default());
        for a in briq.align(&doc) {
            prop_assert!(a.mention_end <= doc.text.len());
            prop_assert!(a.target.table < doc.tables.len());
            let t = &doc.tables[a.target.table];
            for &(r, c) in &a.target.cells {
                prop_assert!(r < t.n_rows && c < t.n_cols);
            }
            prop_assert!(a.score.is_finite());
        }
    }
}
