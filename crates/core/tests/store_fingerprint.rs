//! Property tests for the alignment store's content fingerprints
//! (DESIGN.md §15): deterministic across runs and processes, and
//! changing **iff** the fingerprinted content changes. These are the
//! invariants the store's invalidation logic rests on — a fingerprint
//! that drifted between runs would poison every warm entry, and one
//! that missed a content change would serve stale artifacts.

use briq_core::store::{budget_fingerprint, table_fingerprint, text_fingerprint, Fingerprint};
use briq_core::Budget;
use briq_table::Table;
use proptest::prelude::*;

/// Pinned fingerprints of fixed inputs. FNV-1a with its standard
/// constants has no per-process state (no ASLR-dependent hashing, no
/// random seeds), so these exact values must reproduce on every run,
/// host, and build — the cross-run half of the stability contract. If
/// this test ever fails, the hash function changed and every persisted
/// expectation about store behavior changed with it.
#[test]
fn fingerprints_are_stable_across_processes() {
    assert_eq!(
        text_fingerprint("A total of 123 patients reported side effects."),
        0x4c85bba71f0d2e2d
    );
    let t = Table::from_grid(
        "effects",
        vec![
            vec!["effect".into(), "patients".into()],
            vec!["Rash".into(), "35".into()],
        ],
    );
    assert_eq!(table_fingerprint(&t), 0xaeb38e467d2c170f);
    assert_eq!(budget_fingerprint(&Budget::default()), 0xc844d1be94213faa);
}

fn grid_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    (1usize..4, 1usize..4).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(
            proptest::collection::vec("[a-z0-9 .$%]{0,8}", cols..=cols),
            rows..=rows,
        )
    })
}

proptest! {
    /// Same text, same fingerprint — and the builder API agrees with the
    /// convenience function, so incremental code paths can mix them.
    #[test]
    fn text_fingerprint_is_deterministic(s in "[ -~]{0,64}") {
        prop_assert_eq!(text_fingerprint(&s), text_fingerprint(&s));
        let mut f = Fingerprint::new();
        f.str(&s);
        prop_assert_eq!(f.finish(), text_fingerprint(&s));
    }

    /// Different text, different fingerprint (FNV-1a collisions on short
    /// strings are astronomically unlikely; a failure here means the
    /// hashing lost input bytes, not that we got unlucky).
    #[test]
    fn text_fingerprint_tracks_content(a in "[ -~]{0,64}", b in "[ -~]{0,64}") {
        prop_assert_eq!(a == b, text_fingerprint(&a) == text_fingerprint(&b));
    }

    /// Rebuilding a table from the same grid and caption reproduces the
    /// fingerprint; every cell edit, caption edit, or shape change
    /// flips it.
    #[test]
    fn table_fingerprint_tracks_content(
        grid in grid_strategy(),
        caption in "[a-z ]{0,12}",
        edit_row in 0usize..4,
        edit_col in 0usize..4,
    ) {
        let table = Table::from_grid(&caption, grid.clone());
        prop_assert_eq!(
            table_fingerprint(&table),
            table_fingerprint(&Table::from_grid(&caption, grid.clone()))
        );

        // Caption edit.
        let recaptioned = Table::from_grid(&format!("{caption}!"), grid.clone());
        prop_assert_ne!(table_fingerprint(&table), table_fingerprint(&recaptioned));

        // Cell edit (append a marker so the cell definitely differs).
        let r = edit_row % grid.len();
        let c = edit_col % grid[0].len();
        let mut edited = grid.clone();
        edited[r][c].push('#');
        let edited = Table::from_grid(&caption, edited);
        prop_assert_ne!(table_fingerprint(&table), table_fingerprint(&edited));

        // Shape change: one extra row.
        let mut grown = grid.clone();
        grown.push(grid[0].clone());
        let grown = Table::from_grid(&caption, grown);
        prop_assert_ne!(table_fingerprint(&table), table_fingerprint(&grown));
    }

    /// Budget fingerprints are equal iff every budget field is equal —
    /// a budget change must invalidate (different budgets can truncate
    /// differently), and must do so deterministically.
    #[test]
    fn budget_fingerprint_tracks_every_field(
        a in (1usize..1000, 1usize..100, 1usize..1000, 1usize..50),
        b in (1usize..1000, 1usize..100, 1usize..1000, 1usize..50),
    ) {
        let budget = |(regex, cells, edges, iters): (usize, usize, usize, usize)| Budget {
            max_regex_steps: regex,
            max_virtual_cells_per_table: cells,
            max_graph_edges: edges,
            max_rwr_iterations: iters,
        };
        let (ba, bb) = (budget(a), budget(b));
        prop_assert_eq!(budget_fingerprint(&ba), budget_fingerprint(&ba));
        prop_assert_eq!(a == b, budget_fingerprint(&ba) == budget_fingerprint(&bb));
    }

    /// The builder mixes every piece it is fed: permuting the order of
    /// two distinct writes changes the digest (positional hashing, not
    /// a commutative checksum).
    #[test]
    fn fingerprint_builder_is_order_sensitive(x in 0u64..1_000_000_000_000, y in 0u64..1_000_000_000_000) {
        let digest = |a: u64, b: u64| {
            let mut f = Fingerprint::new();
            f.u64(a);
            f.u64(b);
            f.finish()
        };
        prop_assert_eq!(digest(x, y), digest(x, y));
        if x != y {
            prop_assert_ne!(digest(x, y), digest(y, x));
        }
    }
}
