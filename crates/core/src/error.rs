//! Error taxonomy, processing budgets, and degraded-mode diagnostics.
//!
//! BriQ runs over scraped web pages, and scraped pages are hostile:
//! unbalanced markup, thousand-column colspan bombs, `1e999` numerics,
//! and tables whose virtual-cell space is quadratic in both dimensions.
//! The pipeline must never panic or hang on such input — it degrades.
//! This module defines the three pieces of that contract:
//!
//! * [`BriqError`] — every substrate failure (regex, text, table, graph)
//!   rolled up into one document-level taxonomy;
//! * [`Budget`] — hard caps on the super-linear stages (regex VM steps,
//!   virtual cells per table, graph edges, RWR iterations);
//! * [`Diagnostics`] — a structured record of every place the pipeline
//!   degraded, one [`Diagnostic`] per skipped/truncated/fallback item,
//!   serializable as JSONL for the `briq-align` CLI.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Unified error type of the BriQ pipeline: one variant per substrate
/// crate plus pipeline-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BriqError {
    /// Regex compilation or step-budget failure (`briq-regex`).
    Regex(briq_regex::Error),
    /// Numeral parsing failure (`briq-text`).
    Text(briq_text::TextError),
    /// Table modelling or virtual-cell budget failure (`briq-table`).
    Table(briq_table::TableError),
    /// Alignment-graph failure (`briq-graph`).
    Graph(briq_graph::GraphError),
    /// The graph's edge budget was reached during construction;
    /// remaining edges were dropped.
    EdgeBudgetExceeded {
        /// The configured cap.
        max_edges: usize,
    },
    /// A random walk stopped at the iteration cap without meeting its
    /// convergence tolerance.
    RwrNotConverged {
        /// Text-mention index whose walk did not converge.
        mention: usize,
        /// Iterations actually performed.
        iterations: usize,
        /// Residual at the final iteration.
        residual: f64,
    },
    /// A batch worker panicked while aligning one document; the document
    /// was dropped and the rest of the batch completed normally.
    WorkerPanicked {
        /// Batch index of the poisoned document.
        doc: usize,
    },
    /// The request was cancelled cooperatively — its wall-clock deadline
    /// passed or a shutdown drain asked in-flight work to stop. All
    /// partial work is discarded; the document reports zero alignments.
    Cancelled {
        /// Stage at which the cancellation check fired.
        stage: Stage,
        /// Why the request was cancelled.
        cause: CancelCause,
    },
}

impl fmt::Display for BriqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BriqError::Regex(e) => write!(f, "regex: {e}"),
            BriqError::Text(e) => write!(f, "text: {e}"),
            BriqError::Table(e) => write!(f, "table: {e}"),
            BriqError::Graph(e) => write!(f, "graph: {e}"),
            BriqError::EdgeBudgetExceeded { max_edges } => {
                write!(
                    f,
                    "graph edge budget of {max_edges} exceeded, extra edges dropped"
                )
            }
            BriqError::RwrNotConverged {
                mention,
                iterations,
                residual,
            } => write!(
                f,
                "random walk for mention {mention} stopped after {iterations} \
                 iterations with residual {residual:.3e}"
            ),
            BriqError::WorkerPanicked { doc } => {
                write!(
                    f,
                    "batch worker panicked on document {doc}; document skipped"
                )
            }
            BriqError::Cancelled { stage, cause } => {
                write!(
                    f,
                    "request cancelled ({}) during {}; partial work discarded",
                    cause.reason(),
                    stage.name()
                )
            }
        }
    }
}

impl std::error::Error for BriqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BriqError::Regex(e) => Some(e),
            BriqError::Text(e) => Some(e),
            BriqError::Table(e) => Some(e),
            BriqError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<briq_regex::Error> for BriqError {
    fn from(e: briq_regex::Error) -> Self {
        BriqError::Regex(e)
    }
}
impl From<briq_text::TextError> for BriqError {
    fn from(e: briq_text::TextError) -> Self {
        BriqError::Text(e)
    }
}
impl From<briq_table::TableError> for BriqError {
    fn from(e: briq_table::TableError) -> Self {
        BriqError::Table(e)
    }
}
impl From<briq_graph::GraphError> for BriqError {
    fn from(e: briq_graph::GraphError) -> Self {
        BriqError::Graph(e)
    }
}

/// Hard caps on the pipeline stages whose cost is super-linear in the
/// input. `usize::MAX` everywhere ([`Budget::unlimited`]) reproduces the
/// legacy unbudgeted behaviour bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Pike-VM step cap per regex invocation.
    pub max_regex_steps: usize,
    /// Virtual-cell candidates generated per table.
    pub max_virtual_cells_per_table: usize,
    /// Edges in the candidate alignment graph.
    pub max_graph_edges: usize,
    /// Power-iteration cap per random walk (tightens
    /// `ResolutionConfig::max_iterations`, never loosens it).
    pub max_rwr_iterations: usize,
}

impl Budget {
    /// No caps: identical to the unbudgeted pipeline.
    pub const fn unlimited() -> Budget {
        Budget {
            max_regex_steps: usize::MAX,
            max_virtual_cells_per_table: usize::MAX,
            max_graph_edges: usize::MAX,
            max_rwr_iterations: usize::MAX,
        }
    }
}

impl Default for Budget {
    /// Generous enough that no document of the paper's corpus scale ever
    /// hits a cap, tight enough that adversarial pages stay sub-second.
    fn default() -> Budget {
        Budget {
            max_regex_steps: 1_000_000,
            max_virtual_cells_per_table: 20_000,
            max_graph_edges: 500_000,
            max_rwr_iterations: 200,
        }
    }
}

/// Pipeline stage where a degradation happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Mention extraction and numeral parsing.
    Extraction,
    /// Virtual-cell generation.
    VirtualCells,
    /// Pair classification and adaptive filtering.
    Classification,
    /// Candidate alignment-graph construction.
    GraphConstruction,
    /// Entropy-ordered random-walk resolution.
    Resolution,
    /// Batch-level scheduling and worker fault isolation.
    Batch,
    /// Service-level admission control (queueing, shedding, request I/O).
    Admission,
}

impl Stage {
    /// Stable lower-case stage name, for error messages and wire shapes.
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Extraction => "extraction",
            Stage::VirtualCells => "virtual-cells",
            Stage::Classification => "classification",
            Stage::GraphConstruction => "graph-construction",
            Stage::Resolution => "resolution",
            Stage::Batch => "batch",
            Stage::Admission => "admission",
        }
    }
}

/// What the pipeline did instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedAction {
    /// The item was dropped entirely.
    Skipped,
    /// The item was processed with a truncated candidate/edge/iteration
    /// set.
    Truncated,
    /// The item fell back to a cheaper strategy (prior-score ranking).
    Fallback,
    /// The whole request was cancelled (deadline or shutdown drain) and
    /// its partial work discarded.
    Cancelled,
}

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// The request's wall-clock deadline passed.
    Deadline,
    /// An external cancel flag was raised (shutdown drain, client gone).
    Shutdown,
}

impl CancelCause {
    /// Stable lower-case reason, for error messages and wire shapes.
    pub fn reason(&self) -> &'static str {
        match self {
            CancelCause::Deadline => "deadline exceeded",
            CancelCause::Shutdown => "shutdown drain",
        }
    }
}

/// Cooperative cancellation for one in-flight request: an optional
/// wall-clock deadline plus an optional shared flag an external party
/// (the serve drain, a disconnecting client) can raise at any time.
///
/// The pipeline polls [`CancelToken::cause`] at stage boundaries and at
/// per-mention granularity inside the classify/filter and resolution
/// loops; when it fires, all partial work for the document is discarded
/// and a single `Cancelled` diagnostic is reported instead. A token built
/// with [`CancelToken::none`] (the default on every legacy entry point)
/// never fires, so budgeted and cancellable alignment cannot drift apart.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    deadline: Option<Instant>,
    flag: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A token that never cancels — the default on every classic entry
    /// point; with it, the cancellable pipeline is bit-identical to the
    /// uncancellable one.
    pub const fn none() -> CancelToken {
        CancelToken {
            deadline: None,
            flag: None,
        }
    }

    /// Cancel once the wall clock reaches `deadline`.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            deadline: Some(deadline),
            flag: None,
        }
    }

    /// Cancel after `budget` of wall-clock time from now.
    pub fn deadline_in(budget: Duration) -> CancelToken {
        CancelToken::with_deadline(Instant::now() + budget)
    }

    /// Cancel when `flag` becomes true (e.g. a serve drain raising one
    /// shared flag for every in-flight request).
    pub fn with_flag(flag: Arc<AtomicBool>) -> CancelToken {
        CancelToken {
            deadline: None,
            flag: Some(flag),
        }
    }

    /// This token, additionally cancelled when `flag` becomes true.
    pub fn and_flag(mut self, flag: Arc<AtomicBool>) -> CancelToken {
        self.flag = Some(flag);
        self
    }

    /// This token, additionally cancelled at `deadline`.
    pub fn and_deadline(mut self, deadline: Instant) -> CancelToken {
        self.deadline = Some(deadline);
        self
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Why the request should stop, if it should. The external flag wins
    /// over the deadline when both hold, so a drain is reported as a
    /// drain even on requests that were about to time out anyway.
    pub fn cause(&self) -> Option<CancelCause> {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return Some(CancelCause::Shutdown);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(CancelCause::Deadline);
            }
        }
        None
    }

    /// Has the token fired?
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }
}

/// One degraded item: where, what, why, and what was done about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stage that degraded.
    pub stage: Stage,
    /// Scope of the degradation, e.g. `table 3` or `mention 7`.
    pub scope: String,
    /// Human-readable error (the `Display` of the underlying
    /// [`BriqError`]).
    pub error: String,
    /// The degraded-mode action taken.
    pub action: DegradedAction,
}

/// Everything that degraded while aligning one document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    /// One entry per degraded item, in pipeline order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Did the document go through without any degradation?
    pub fn is_clean(&self) -> bool {
        self.items.is_empty()
    }

    /// Record a degradation.
    pub fn record(
        &mut self,
        stage: Stage,
        scope: String,
        error: &BriqError,
        action: DegradedAction,
    ) {
        self.items.push(Diagnostic {
            stage,
            scope,
            error: error.to_string(),
            action,
        });
    }

    /// Serialize as JSON Lines: one compact object per diagnostic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&briq_json::to_string(d));
            out.push('\n');
        }
        out
    }
}

briq_json::json_unit_enum!(Stage {
    Extraction,
    VirtualCells,
    Classification,
    GraphConstruction,
    Resolution,
    Batch,
    Admission
});
briq_json::json_unit_enum!(DegradedAction {
    Skipped,
    Truncated,
    Fallback,
    Cancelled
});
briq_json::json_struct!(Diagnostic {
    stage,
    scope,
    error,
    action
});
briq_json::json_struct!(Diagnostics { items });
briq_json::json_struct!(Budget {
    max_regex_steps,
    max_virtual_cells_per_table,
    max_graph_edges,
    max_rwr_iterations,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(BriqError, &str)> = vec![
            (
                BriqError::Regex(briq_regex::Error::StepBudgetExceeded { max_steps: 7 }),
                "regex: regex step budget of 7 exceeded",
            ),
            (
                BriqError::Text(briq_text::TextError::NotANumeral),
                "text: not a numeral",
            ),
            (
                BriqError::Table(briq_table::TableError::DegenerateTable { table: 2 }),
                "table: table 2: no data rows or columns",
            ),
            (
                BriqError::Graph(briq_graph::GraphError::NodeOutOfRange { node: 9, len: 3 }),
                "graph: node 9 out of range for graph of 3 nodes",
            ),
            (
                BriqError::EdgeBudgetExceeded { max_edges: 10 },
                "graph edge budget of 10 exceeded, extra edges dropped",
            ),
            (
                BriqError::WorkerPanicked { doc: 12 },
                "batch worker panicked on document 12; document skipped",
            ),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
        }
        let rwr = BriqError::RwrNotConverged {
            mention: 4,
            iterations: 200,
            residual: 0.5,
        };
        let s = rwr.to_string();
        assert!(s.contains("mention 4") && s.contains("200"), "{s}");
    }

    #[test]
    fn from_impls_wrap_substrate_errors() {
        let e: BriqError = briq_text::TextError::WordNumberOverflow.into();
        assert!(matches!(e, BriqError::Text(_)));
        let e: BriqError = briq_graph::GraphError::EdgeBudgetExceeded { max_edges: 1 }.into();
        assert!(matches!(e, BriqError::Graph(_)));
        let e: BriqError = briq_table::TableError::VirtualCellBudgetExceeded {
            table: 0,
            max_cells: 5,
        }
        .into();
        assert!(matches!(e, BriqError::Table(_)));
        let e: BriqError = briq_regex::Error::ProgramTooLarge { insts: 9, max: 5 }.into();
        assert!(matches!(e, BriqError::Regex(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn unlimited_budget_has_no_caps() {
        let b = Budget::unlimited();
        assert_eq!(b.max_graph_edges, usize::MAX);
        assert_eq!(b.max_rwr_iterations, usize::MAX);
        let d = Budget::default();
        assert!(d.max_virtual_cells_per_table < usize::MAX);
    }

    #[test]
    fn diagnostics_jsonl_is_one_object_per_line() {
        let mut diags = Diagnostics::default();
        assert!(diags.is_clean());
        diags.record(
            Stage::VirtualCells,
            "table 0".into(),
            &BriqError::Table(briq_table::TableError::VirtualCellBudgetExceeded {
                table: 0,
                max_cells: 8,
            }),
            DegradedAction::Truncated,
        );
        diags.record(
            Stage::Resolution,
            "mention 3".into(),
            &BriqError::RwrNotConverged {
                mention: 3,
                iterations: 50,
                residual: 1e-2,
            },
            DegradedAction::Fallback,
        );
        assert!(!diags.is_clean());
        let jsonl = diags.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let d: Diagnostic = briq_json::from_str(line).expect("round-trips");
            assert!(!d.error.is_empty());
        }
        assert!(lines[0].contains("VirtualCells") && lines[0].contains("Truncated"));
        assert!(lines[1].contains("Fallback"));
    }

    #[test]
    fn cancel_token_none_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        assert!(t.cause().is_none());
        assert!(t.deadline().is_none());
    }

    #[test]
    fn cancel_token_deadline_fires_exactly_at_the_instant() {
        let future = CancelToken::deadline_in(Duration::from_secs(3600));
        assert!(!future.is_cancelled());
        let past = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(past.cause(), Some(CancelCause::Deadline));
    }

    #[test]
    fn cancel_token_flag_fires_and_wins_over_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = CancelToken::with_flag(flag.clone())
            .and_deadline(Instant::now() - Duration::from_millis(1));
        // Deadline already passed, flag not raised: deadline cause.
        assert_eq!(t.cause(), Some(CancelCause::Deadline));
        flag.store(true, Ordering::SeqCst);
        // Both hold: the external flag wins.
        assert_eq!(t.cause(), Some(CancelCause::Shutdown));
    }

    #[test]
    fn cancelled_error_display_names_stage_and_cause() {
        let e = BriqError::Cancelled {
            stage: Stage::Resolution,
            cause: CancelCause::Deadline,
        };
        let s = e.to_string();
        assert!(
            s.contains("deadline exceeded") && s.contains("resolution"),
            "{s}"
        );
        let e = BriqError::Cancelled {
            stage: Stage::Admission,
            cause: CancelCause::Shutdown,
        };
        assert!(e.to_string().contains("shutdown drain"));
    }

    #[test]
    fn cancelled_diagnostic_round_trips_as_jsonl() {
        let mut diags = Diagnostics::default();
        diags.record(
            Stage::Admission,
            "document".into(),
            &BriqError::Cancelled {
                stage: Stage::Admission,
                cause: CancelCause::Deadline,
            },
            DegradedAction::Cancelled,
        );
        let jsonl = diags.to_jsonl();
        let d: Diagnostic = briq_json::from_str(jsonl.trim()).expect("round-trips");
        assert_eq!(d.action, DegradedAction::Cancelled);
        assert_eq!(d.stage, Stage::Admission);
    }

    #[test]
    fn budget_serializes() {
        let b = Budget::default();
        let s = briq_json::to_string(&b);
        let back: Budget = briq_json::from_str(&s).expect("budget round-trips");
        assert_eq!(b, back);
    }
}
