//! Error taxonomy, processing budgets, and degraded-mode diagnostics.
//!
//! BriQ runs over scraped web pages, and scraped pages are hostile:
//! unbalanced markup, thousand-column colspan bombs, `1e999` numerics,
//! and tables whose virtual-cell space is quadratic in both dimensions.
//! The pipeline must never panic or hang on such input — it degrades.
//! This module defines the three pieces of that contract:
//!
//! * [`BriqError`] — every substrate failure (regex, text, table, graph)
//!   rolled up into one document-level taxonomy;
//! * [`Budget`] — hard caps on the super-linear stages (regex VM steps,
//!   virtual cells per table, graph edges, RWR iterations);
//! * [`Diagnostics`] — a structured record of every place the pipeline
//!   degraded, one [`Diagnostic`] per skipped/truncated/fallback item,
//!   serializable as JSONL for the `briq-align` CLI.

use std::fmt;

/// Unified error type of the BriQ pipeline: one variant per substrate
/// crate plus pipeline-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum BriqError {
    /// Regex compilation or step-budget failure (`briq-regex`).
    Regex(briq_regex::Error),
    /// Numeral parsing failure (`briq-text`).
    Text(briq_text::TextError),
    /// Table modelling or virtual-cell budget failure (`briq-table`).
    Table(briq_table::TableError),
    /// Alignment-graph failure (`briq-graph`).
    Graph(briq_graph::GraphError),
    /// The graph's edge budget was reached during construction;
    /// remaining edges were dropped.
    EdgeBudgetExceeded {
        /// The configured cap.
        max_edges: usize,
    },
    /// A random walk stopped at the iteration cap without meeting its
    /// convergence tolerance.
    RwrNotConverged {
        /// Text-mention index whose walk did not converge.
        mention: usize,
        /// Iterations actually performed.
        iterations: usize,
        /// Residual at the final iteration.
        residual: f64,
    },
    /// A batch worker panicked while aligning one document; the document
    /// was dropped and the rest of the batch completed normally.
    WorkerPanicked {
        /// Batch index of the poisoned document.
        doc: usize,
    },
}

impl fmt::Display for BriqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BriqError::Regex(e) => write!(f, "regex: {e}"),
            BriqError::Text(e) => write!(f, "text: {e}"),
            BriqError::Table(e) => write!(f, "table: {e}"),
            BriqError::Graph(e) => write!(f, "graph: {e}"),
            BriqError::EdgeBudgetExceeded { max_edges } => {
                write!(
                    f,
                    "graph edge budget of {max_edges} exceeded, extra edges dropped"
                )
            }
            BriqError::RwrNotConverged {
                mention,
                iterations,
                residual,
            } => write!(
                f,
                "random walk for mention {mention} stopped after {iterations} \
                 iterations with residual {residual:.3e}"
            ),
            BriqError::WorkerPanicked { doc } => {
                write!(
                    f,
                    "batch worker panicked on document {doc}; document skipped"
                )
            }
        }
    }
}

impl std::error::Error for BriqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BriqError::Regex(e) => Some(e),
            BriqError::Text(e) => Some(e),
            BriqError::Table(e) => Some(e),
            BriqError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<briq_regex::Error> for BriqError {
    fn from(e: briq_regex::Error) -> Self {
        BriqError::Regex(e)
    }
}
impl From<briq_text::TextError> for BriqError {
    fn from(e: briq_text::TextError) -> Self {
        BriqError::Text(e)
    }
}
impl From<briq_table::TableError> for BriqError {
    fn from(e: briq_table::TableError) -> Self {
        BriqError::Table(e)
    }
}
impl From<briq_graph::GraphError> for BriqError {
    fn from(e: briq_graph::GraphError) -> Self {
        BriqError::Graph(e)
    }
}

/// Hard caps on the pipeline stages whose cost is super-linear in the
/// input. `usize::MAX` everywhere ([`Budget::unlimited`]) reproduces the
/// legacy unbudgeted behaviour bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Pike-VM step cap per regex invocation.
    pub max_regex_steps: usize,
    /// Virtual-cell candidates generated per table.
    pub max_virtual_cells_per_table: usize,
    /// Edges in the candidate alignment graph.
    pub max_graph_edges: usize,
    /// Power-iteration cap per random walk (tightens
    /// `ResolutionConfig::max_iterations`, never loosens it).
    pub max_rwr_iterations: usize,
}

impl Budget {
    /// No caps: identical to the unbudgeted pipeline.
    pub const fn unlimited() -> Budget {
        Budget {
            max_regex_steps: usize::MAX,
            max_virtual_cells_per_table: usize::MAX,
            max_graph_edges: usize::MAX,
            max_rwr_iterations: usize::MAX,
        }
    }
}

impl Default for Budget {
    /// Generous enough that no document of the paper's corpus scale ever
    /// hits a cap, tight enough that adversarial pages stay sub-second.
    fn default() -> Budget {
        Budget {
            max_regex_steps: 1_000_000,
            max_virtual_cells_per_table: 20_000,
            max_graph_edges: 500_000,
            max_rwr_iterations: 200,
        }
    }
}

/// Pipeline stage where a degradation happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Mention extraction and numeral parsing.
    Extraction,
    /// Virtual-cell generation.
    VirtualCells,
    /// Candidate alignment-graph construction.
    GraphConstruction,
    /// Entropy-ordered random-walk resolution.
    Resolution,
    /// Batch-level scheduling and worker fault isolation.
    Batch,
}

/// What the pipeline did instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedAction {
    /// The item was dropped entirely.
    Skipped,
    /// The item was processed with a truncated candidate/edge/iteration
    /// set.
    Truncated,
    /// The item fell back to a cheaper strategy (prior-score ranking).
    Fallback,
}

/// One degraded item: where, what, why, and what was done about it.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stage that degraded.
    pub stage: Stage,
    /// Scope of the degradation, e.g. `table 3` or `mention 7`.
    pub scope: String,
    /// Human-readable error (the `Display` of the underlying
    /// [`BriqError`]).
    pub error: String,
    /// The degraded-mode action taken.
    pub action: DegradedAction,
}

/// Everything that degraded while aligning one document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    /// One entry per degraded item, in pipeline order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Did the document go through without any degradation?
    pub fn is_clean(&self) -> bool {
        self.items.is_empty()
    }

    /// Record a degradation.
    pub fn record(
        &mut self,
        stage: Stage,
        scope: String,
        error: &BriqError,
        action: DegradedAction,
    ) {
        self.items.push(Diagnostic {
            stage,
            scope,
            error: error.to_string(),
            action,
        });
    }

    /// Serialize as JSON Lines: one compact object per diagnostic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&briq_json::to_string(d));
            out.push('\n');
        }
        out
    }
}

briq_json::json_unit_enum!(Stage {
    Extraction,
    VirtualCells,
    GraphConstruction,
    Resolution,
    Batch
});
briq_json::json_unit_enum!(DegradedAction {
    Skipped,
    Truncated,
    Fallback
});
briq_json::json_struct!(Diagnostic {
    stage,
    scope,
    error,
    action
});
briq_json::json_struct!(Diagnostics { items });
briq_json::json_struct!(Budget {
    max_regex_steps,
    max_virtual_cells_per_table,
    max_graph_edges,
    max_rwr_iterations,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(BriqError, &str)> = vec![
            (
                BriqError::Regex(briq_regex::Error::StepBudgetExceeded { max_steps: 7 }),
                "regex: regex step budget of 7 exceeded",
            ),
            (
                BriqError::Text(briq_text::TextError::NotANumeral),
                "text: not a numeral",
            ),
            (
                BriqError::Table(briq_table::TableError::DegenerateTable { table: 2 }),
                "table: table 2: no data rows or columns",
            ),
            (
                BriqError::Graph(briq_graph::GraphError::NodeOutOfRange { node: 9, len: 3 }),
                "graph: node 9 out of range for graph of 3 nodes",
            ),
            (
                BriqError::EdgeBudgetExceeded { max_edges: 10 },
                "graph edge budget of 10 exceeded, extra edges dropped",
            ),
            (
                BriqError::WorkerPanicked { doc: 12 },
                "batch worker panicked on document 12; document skipped",
            ),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
        }
        let rwr = BriqError::RwrNotConverged {
            mention: 4,
            iterations: 200,
            residual: 0.5,
        };
        let s = rwr.to_string();
        assert!(s.contains("mention 4") && s.contains("200"), "{s}");
    }

    #[test]
    fn from_impls_wrap_substrate_errors() {
        let e: BriqError = briq_text::TextError::WordNumberOverflow.into();
        assert!(matches!(e, BriqError::Text(_)));
        let e: BriqError = briq_graph::GraphError::EdgeBudgetExceeded { max_edges: 1 }.into();
        assert!(matches!(e, BriqError::Graph(_)));
        let e: BriqError = briq_table::TableError::VirtualCellBudgetExceeded {
            table: 0,
            max_cells: 5,
        }
        .into();
        assert!(matches!(e, BriqError::Table(_)));
        let e: BriqError = briq_regex::Error::ProgramTooLarge { insts: 9, max: 5 }.into();
        assert!(matches!(e, BriqError::Regex(_)));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }

    #[test]
    fn unlimited_budget_has_no_caps() {
        let b = Budget::unlimited();
        assert_eq!(b.max_graph_edges, usize::MAX);
        assert_eq!(b.max_rwr_iterations, usize::MAX);
        let d = Budget::default();
        assert!(d.max_virtual_cells_per_table < usize::MAX);
    }

    #[test]
    fn diagnostics_jsonl_is_one_object_per_line() {
        let mut diags = Diagnostics::default();
        assert!(diags.is_clean());
        diags.record(
            Stage::VirtualCells,
            "table 0".into(),
            &BriqError::Table(briq_table::TableError::VirtualCellBudgetExceeded {
                table: 0,
                max_cells: 8,
            }),
            DegradedAction::Truncated,
        );
        diags.record(
            Stage::Resolution,
            "mention 3".into(),
            &BriqError::RwrNotConverged {
                mention: 3,
                iterations: 50,
                residual: 1e-2,
            },
            DegradedAction::Fallback,
        );
        assert!(!diags.is_clean());
        let jsonl = diags.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let d: Diagnostic = briq_json::from_str(line).expect("round-trips");
            assert!(!d.error.is_empty());
        }
        assert!(lines[0].contains("VirtualCells") && lines[0].contains("Truncated"));
        assert!(lines[1].contains("Fallback"));
    }

    #[test]
    fn budget_serializes() {
        let b = Budget::default();
        let s = briq_json::to_string(&b);
        let back: Budget = briq_json::from_str(&s).expect("budget round-trips");
        assert_eq!(b, back);
    }
}
