//! Global resolution by entropy-ordered random walks (Algorithm 1, §VI-B).
//!
//! Text mentions are processed in increasing entropy of their candidate
//! score distributions — easy decisions first. Each decision updates the
//! graph: the chosen text-table edge is kept, all competing edges of that
//! mention are deleted, so later (harder) walks benefit from the added
//! knowledge. A mention whose best `OverallScore` falls below `ε` is left
//! unaligned (the mapping is partial, §II-A).

use briq_graph::{
    try_random_walk_with_restart, ConvergenceReport, CsrGraph, GraphError, RwrConfig,
};
use briq_ml::entropy::normalized_entropy;

use crate::filtering::Candidate;
use crate::graph_builder::AlignmentGraph;

/// Resolution parameters (Eq. 1 and Algorithm 1).
#[derive(Debug, Clone, Copy)]
pub struct ResolutionConfig {
    /// Weight α of the stationary probability π(t|x).
    pub alpha: f64,
    /// Weight β of the classifier prior σ(t|x).
    pub beta: f64,
    /// Acceptance threshold ε on the overall score.
    pub epsilon: f64,
    /// Additional acceptance floor on the classifier prior σ(t*|x): the
    /// candidate-normalized π̂ always sums to 1 over the candidates, so a
    /// mention with a single weak candidate would pass any ε on π̂ alone.
    /// The σ floor restores the paper's partial-mapping behaviour for
    /// unalignable mentions (tuned on validation like ε).
    pub sigma_min: f64,
    /// Restart probability of the walk.
    pub restart: f64,
    /// Convergence bound of the walk.
    pub tolerance: f64,
    /// Iteration cap of the walk.
    pub max_iterations: usize,
    /// Run walks on the frozen CSR kernel ([`briq_graph::csr`],
    /// DESIGN.md §14) instead of rebuilding dense transition lists per
    /// walk. Output is bit-identical either way; `BRIQ_NO_CSR=1` (or
    /// `--no-csr`) force-disables it at run time, which CI uses to
    /// cross-check the kernel on real output.
    pub use_csr: bool,
}

impl Default for ResolutionConfig {
    fn default() -> Self {
        ResolutionConfig {
            alpha: 0.5,
            beta: 0.5,
            epsilon: 0.12,
            sigma_min: 0.1,
            restart: 0.12,
            tolerance: 1e-8,
            max_iterations: 100,
            use_csr: true,
        }
    }
}

/// One resolved alignment: `(text mention, table-mention index, score)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resolved {
    /// Text-mention index.
    pub mention: usize,
    /// Table-mention index (into the document's target list).
    pub target: usize,
    /// The final `OverallScore`.
    pub score: f64,
}

/// A degraded-mode event from [`resolve_budgeted`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResolutionEvent {
    /// The mention's walk hit the iteration cap before meeting the
    /// tolerance; its (approximate) stationary vector was still used.
    NotConverged {
        /// Text-mention index.
        mention: usize,
        /// The walk's convergence report.
        report: ConvergenceReport,
    },
    /// The walk itself failed; the mention was decided by classifier
    /// prior alone.
    PriorFallback {
        /// Text-mention index.
        mention: usize,
        /// The underlying graph error.
        error: GraphError,
    },
    /// The request's [`CancelToken`](crate::error::CancelToken) fired
    /// mid-resolution: every resolved alignment so far was discarded and
    /// resolution stopped. This is always the final (and only surviving)
    /// event of a cancelled run.
    Cancelled {
        /// Why the token fired.
        cause: crate::error::CancelCause,
    },
}

/// Run Algorithm 1. `candidates[i]` are the surviving candidates of text
/// mention `i` (their `target` indexes the document's table mentions).
/// The graph is consumed (edges are deleted as decisions are made).
pub fn resolve(
    ag: AlignmentGraph,
    candidates: &[Vec<Candidate>],
    cfg: &ResolutionConfig,
) -> Vec<Resolved> {
    resolve_budgeted(ag, candidates, cfg, usize::MAX).0
}

/// Budgeted Algorithm 1 with per-mention fault isolation. The walk's
/// iteration cap is `cfg.max_iterations` tightened to
/// `max_rwr_iterations`; a walk that fails outright demotes its mention
/// to prior-score ranking instead of aborting the document. Returns the
/// resolved alignments plus one [`ResolutionEvent`] per degraded
/// mention. With an unlimited budget this is bit-identical to the
/// classic [`resolve`].
pub fn resolve_budgeted(
    ag: AlignmentGraph,
    candidates: &[Vec<Candidate>],
    cfg: &ResolutionConfig,
    max_rwr_iterations: usize,
) -> (Vec<Resolved>, Vec<ResolutionEvent>) {
    resolve_observed(
        ag,
        candidates,
        cfg,
        max_rwr_iterations,
        &crate::obs::Recorder::disabled(),
        &crate::error::CancelToken::none(),
    )
}

/// [`resolve_budgeted`] with per-walk observability and cooperative
/// cancellation: every random walk counts into `rwr_walks`, its
/// power-iteration count feeds the `rwr_iterations` histogram, and
/// capped/failed walks increment `rwr_not_converged` / `rwr_fallbacks`.
/// The `cancel` token is polled before every walk; when it fires, all
/// partial resolutions are discarded and a single
/// [`ResolutionEvent::Cancelled`] is returned. The recorder only
/// observes, and a [`CancelToken::none`](crate::error::CancelToken::none)
/// never fires — with both defaulted this *is* [`resolve_budgeted`],
/// bit for bit.
pub fn resolve_observed(
    mut ag: AlignmentGraph,
    candidates: &[Vec<Candidate>],
    cfg: &ResolutionConfig,
    max_rwr_iterations: usize,
    rec: &crate::obs::Recorder,
    cancel: &crate::error::CancelToken,
) -> (Vec<Resolved>, Vec<ResolutionEvent>) {
    use crate::obs::names;
    let m = candidates.len();

    // Entropy of each mention's prior distribution; ascending order.
    let mut order: Vec<usize> = (0..m).filter(|&i| !candidates[i].is_empty()).collect();
    let entropy: Vec<f64> = (0..m)
        .map(|i| {
            let scores: Vec<f64> = candidates[i].iter().map(|c| c.score).collect();
            normalized_entropy(&scores)
        })
        .collect();
    order.sort_by(|&a, &b| {
        entropy[a]
            .partial_cmp(&entropy[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let rwr = RwrConfig {
        restart: cfg.restart,
        tolerance: cfg.tolerance,
        max_iterations: cfg.max_iterations.min(max_rwr_iterations),
    };

    // Walk backend: the CSR kernel freezes the graph once and models
    // Algorithm 1's edge deletions by weight-zeroing; the dense oracle
    // (`use_csr: false` or `BRIQ_NO_CSR=1`) mutates the adjacency graph
    // as before. Bit-identical by the §14 equivalence contract, proven
    // per run by CI's `kernels` stage.
    let no_csr = !cfg.use_csr || std::env::var_os("BRIQ_NO_CSR").is_some_and(|v| v == "1");
    let mut csr = (!no_csr).then(|| CsrGraph::from_graph(&ag.graph));
    if let Some(c) = &csr {
        rec.count(names::CSR_NNZ, c.nnz() as u64);
    }
    let mut scratch = crate::arena::take_csr_scratch();
    let mut dense_pi: Vec<f64> = Vec::new();

    let mut out = Vec::new();
    let mut events = Vec::new();
    for &x in &order {
        // Cooperative cancellation at per-mention granularity: a fired
        // token discards everything resolved so far (no partial state
        // escapes a cancelled request) and stops immediately.
        if let Some(cause) = cancel.cause() {
            return (Vec::new(), vec![ResolutionEvent::Cancelled { cause }]);
        }
        // Per-mention fault isolation: a failed walk demotes this mention
        // to prior-only scoring; it never takes the document down.
        rec.count(names::RWR_WALKS, 1);
        let walked = match &csr {
            Some(c) => c.walk_into(ag.text_nodes[x], &rwr, &mut scratch),
            None => match try_random_walk_with_restart(&ag.graph, ag.text_nodes[x], &rwr) {
                Ok((p, report)) => {
                    dense_pi = p;
                    Ok(report)
                }
                Err(e) => Err(e),
            },
        };
        let pi: Option<&[f64]> = match walked {
            Ok(report) => {
                rec.observe(names::RWR_ITERATIONS, report.iterations as f64);
                rec.count(names::RWR_MATVEC_ITERATIONS, report.iterations as u64);
                if !report.converged {
                    rec.count(names::RWR_NOT_CONVERGED, 1);
                    events.push(ResolutionEvent::NotConverged { mention: x, report });
                }
                Some(if csr.is_some() {
                    scratch.distribution()
                } else {
                    &dense_pi
                })
            }
            Err(error) => {
                rec.count(names::RWR_FALLBACKS, 1);
                events.push(ResolutionEvent::PriorFallback { mention: x, error });
                None
            }
        };
        // Normalize π over the candidate set: its raw magnitude depends on
        // how many nodes the walk spreads over, while σ is always a
        // probability in [0, 1]. Without this, the α/β mix of Eq. 1 would
        // weigh the walk differently in small and large documents.
        let pi_total: f64 = match &pi {
            Some(pi) => candidates[x]
                .iter()
                .filter_map(|c| ag.table_node(c.target).map(|tn| pi[tn]))
                .sum(),
            None => 0.0,
        };
        let mut best: Option<(usize, f64, f64)> = None;
        for c in &candidates[x] {
            let Some(tn) = ag.table_node(c.target) else {
                continue;
            };
            let score = match &pi {
                Some(pi) => {
                    let pi_hat = if pi_total > 0.0 {
                        pi[tn] / pi_total
                    } else {
                        0.0
                    };
                    cfg.alpha * pi_hat + cfg.beta * c.score
                }
                // Prior-score fallback: rank by σ alone so the ε gate
                // still compares against a [0, 1] probability.
                None => c.score,
            };
            if best.is_none_or(|(_, s, _)| score > s) {
                best = Some((c.target, score, c.score));
            }
        }
        match best {
            Some((t_star, score, sigma)) if score > cfg.epsilon && sigma >= cfg.sigma_min => {
                // Keep only the chosen edge.
                for c in &candidates[x] {
                    if c.target != t_star {
                        if let Some(tn) = ag.table_node(c.target) {
                            match &mut csr {
                                Some(cg) => {
                                    cg.zero_edge(ag.text_nodes[x], tn);
                                }
                                None => {
                                    ag.graph.remove_edge(ag.text_nodes[x], tn);
                                }
                            }
                        }
                    }
                }
                out.push(Resolved {
                    mention: x,
                    target: t_star,
                    score,
                });
            }
            _ => {
                // No alignment: drop all text-table edges of x.
                for c in &candidates[x] {
                    if let Some(tn) = ag.table_node(c.target) {
                        match &mut csr {
                            Some(cg) => {
                                cg.zero_edge(ag.text_nodes[x], tn);
                            }
                            None => {
                                ag.graph.remove_edge(ag.text_nodes[x], tn);
                            }
                        }
                    }
                }
            }
        }
    }
    crate::arena::put_csr_scratch(scratch);
    out.sort_by_key(|r| r.mention);
    (out, events)
}

// Hand-written (not `json_struct!`) so `use_csr` can default to `true`
// on model files serialized before the field existed.
impl briq_json::ToJson for ResolutionConfig {
    fn to_json(&self) -> briq_json::Value {
        briq_json::Value::Object(vec![
            ("alpha".to_string(), self.alpha.to_json()),
            ("beta".to_string(), self.beta.to_json()),
            ("epsilon".to_string(), self.epsilon.to_json()),
            ("sigma_min".to_string(), self.sigma_min.to_json()),
            ("restart".to_string(), self.restart.to_json()),
            ("tolerance".to_string(), self.tolerance.to_json()),
            ("max_iterations".to_string(), self.max_iterations.to_json()),
            ("use_csr".to_string(), self.use_csr.to_json()),
        ])
    }
}
impl briq_json::FromJson for ResolutionConfig {
    fn from_json(v: &briq_json::Value) -> briq_json::Result<Self> {
        let obj = v
            .as_object()
            .ok_or_else(|| briq_json::JsonError::new("expected ResolutionConfig object"))?;
        Ok(ResolutionConfig {
            alpha: briq_json::field(obj, "alpha")?,
            beta: briq_json::field(obj, "beta")?,
            epsilon: briq_json::field(obj, "epsilon")?,
            sigma_min: briq_json::field(obj, "sigma_min")?,
            restart: briq_json::field(obj, "restart")?,
            tolerance: briq_json::field(obj, "tolerance")?,
            max_iterations: briq_json::field(obj, "max_iterations")?,
            use_csr: briq_json::field_or(obj, "use_csr", true)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_builder::{build_graph, GraphConfig};
    use crate::mention::TextMention;
    use briq_table::{TableMention, TableMentionKind};
    use briq_text::quantity::QuantityMention;
    use briq_text::units::Unit;

    fn mention(id: usize, value: f64, start: usize) -> TextMention {
        TextMention {
            id,
            quantity: QuantityMention {
                raw: format!("{value}"),
                value,
                unnormalized: value,
                unit: Unit::None,
                precision: 0,
                approx: Default::default(),
                start,
                end: start + 3,
            },
        }
    }

    fn cell(table: usize, r: usize, c: usize, value: f64) -> TableMention {
        TableMention {
            table,
            kind: TableMentionKind::SingleCell,
            cells: vec![(r, c)],
            value,
            unnormalized: value,
            raw: format!("{value}"),
            unit: Unit::None,
            precision: 0,
            orientation: None,
        }
    }

    /// The Fig. 3 situation: mention "11" matches cells in two tables;
    /// a second unambiguous mention "60" pulls the walk toward table 0.
    fn coupled() -> (
        Vec<TextMention>,
        Vec<usize>,
        Vec<TableMention>,
        Vec<Vec<Candidate>>,
    ) {
        let mentions = vec![mention(0, 11.0, 0), mention(1, 60.0, 8)];
        let targets = vec![
            cell(0, 1, 1, 11.0), // table 0 "11"
            cell(0, 2, 1, 60.0), // table 0 "60" — same column
            cell(1, 1, 1, 11.0), // table 1 "11" (ambiguous twin)
            cell(1, 2, 1, 110.0),
        ];
        let candidates = vec![
            vec![
                Candidate {
                    target: 0,
                    score: 0.5,
                },
                Candidate {
                    target: 2,
                    score: 0.5,
                },
            ],
            vec![Candidate {
                target: 1,
                score: 0.9,
            }],
        ];
        (mentions, vec![0, 2], targets, candidates)
    }

    #[test]
    fn joint_inference_disambiguates_tied_priors() {
        let (mentions, pos, targets, candidates) = coupled();
        let ag = build_graph(
            &mentions,
            &pos,
            10,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let out = resolve(ag, &candidates, &ResolutionConfig::default());
        // Mention 1 ("60") resolves first (zero entropy), strengthening
        // table 0; mention 0 must then choose table 0's "11".
        let m0 = out
            .iter()
            .find(|r| r.mention == 0)
            .expect("mention 0 aligned");
        assert_eq!(m0.target, 0, "{out:?}");
    }

    #[test]
    fn epsilon_leaves_weak_mentions_unaligned() {
        let (mentions, pos, targets, candidates) = coupled();
        let ag = build_graph(
            &mentions,
            &pos,
            10,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let cfg = ResolutionConfig {
            epsilon: 10.0,
            ..Default::default()
        };
        let out = resolve(ag, &candidates, &cfg);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_candidates_skipped() {
        let (mentions, pos, targets, mut candidates) = coupled();
        candidates[0].clear();
        let ag = build_graph(
            &mentions,
            &pos,
            10,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let out = resolve(ag, &candidates, &ResolutionConfig::default());
        assert!(out.iter().all(|r| r.mention == 1));
    }

    #[test]
    fn results_sorted_by_mention() {
        let (mentions, pos, targets, candidates) = coupled();
        let ag = build_graph(
            &mentions,
            &pos,
            10,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let out = resolve(ag, &candidates, &ResolutionConfig::default());
        for w in out.windows(2) {
            assert!(w[0].mention < w[1].mention);
        }
    }

    #[test]
    fn unlimited_budget_matches_classic_resolve() {
        let (mentions, pos, targets, candidates) = coupled();
        let cfg = ResolutionConfig::default();
        let gcfg = GraphConfig::default();
        let ag1 = build_graph(&mentions, &pos, 10, &targets, &candidates, &gcfg);
        let ag2 = build_graph(&mentions, &pos, 10, &targets, &candidates, &gcfg);
        let classic = resolve(ag1, &candidates, &cfg);
        let (budgeted, events) = resolve_budgeted(ag2, &candidates, &cfg, usize::MAX);
        assert_eq!(classic, budgeted);
        // Slow convergence may be reported, but nothing falls back: the
        // unlimited-budget path takes exactly the classic decisions.
        assert!(
            events
                .iter()
                .all(|e| matches!(e, ResolutionEvent::NotConverged { .. })),
            "{events:?}"
        );
    }

    #[test]
    fn iteration_cap_reports_non_convergence_without_panicking() {
        let (mentions, pos, targets, candidates) = coupled();
        let ag = build_graph(
            &mentions,
            &pos,
            10,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let cfg = ResolutionConfig {
            tolerance: 0.0,
            ..Default::default()
        };
        let (_, events) = resolve_budgeted(ag, &candidates, &cfg, 1);
        // With a zero tolerance and a single allowed iteration, every
        // mention's walk stops early and says so.
        assert!(!events.is_empty());
        for ev in &events {
            match ev {
                ResolutionEvent::NotConverged { report, .. } => {
                    assert_eq!(report.iterations, 1);
                    assert!(!report.converged);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn single_candidate_mention_aligns_directly() {
        let mentions = vec![mention(0, 42.0, 0)];
        let targets = vec![cell(0, 1, 1, 42.0)];
        let candidates = vec![vec![Candidate {
            target: 0,
            score: 0.8,
        }]];
        let ag = build_graph(
            &mentions,
            &[0],
            5,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let out = resolve(ag, &candidates, &ResolutionConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].target, 0);
        assert!(out[0].score > 0.0);
    }
}
