//! Jaro-Winkler string similarity.
//!
//! §IV-B: "We adopted the Jaro-Winkler distance measure … because it
//! emphasizes a match at the beginning of the string, which is desirable
//! when comparing quantity mentions. For example, '26.7$' is closer to
//! '26.65$' than to '29.75$'."

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut match_idx_b: Vec<usize> = Vec::new();

    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                match_idx_b.push(j);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // transpositions: compare matched chars of a against matched chars of
    // b in b-order
    let mut b_matches: Vec<(usize, char)> = match_idx_b.iter().map(|&j| (j, b[j])).collect();
    b_matches.sort_by_key(|&(j, _)| j);
    let t = matches_a
        .iter()
        .zip(b_matches.iter())
        .filter(|(ca, (_, cb))| *ca != cb)
        .count() as f64
        / 2.0;

    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by common prefix (up to 4 chars)
/// with the standard scaling factor 0.1.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Reusable match buffers for scoring many string pairs without per-call
/// allocation. The buffers grow to the longest operands seen and are then
/// reused; [`JaroScratch::jaro_winkler_chars`] on pre-collected char
/// slices is bit-identical to [`jaro_winkler`] on the source strings.
#[derive(Debug, Clone, Default)]
pub struct JaroScratch {
    b_used: Vec<bool>,
    matches_a: Vec<char>,
    match_idx_b: Vec<usize>,
}

impl JaroScratch {
    /// Fresh scratch with empty buffers.
    pub fn new() -> JaroScratch {
        JaroScratch::default()
    }

    /// Jaro similarity over char slices; same algorithm as [`jaro`] with
    /// the collection and match bookkeeping done in reused buffers.
    pub fn jaro_chars(&mut self, a: &[char], b: &[char]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let window = (a.len().max(b.len()) / 2).saturating_sub(1);
        self.b_used.clear();
        self.b_used.resize(b.len(), false);
        self.matches_a.clear();
        self.match_idx_b.clear();

        for (i, &ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            for (j, &cb) in b.iter().enumerate().take(hi).skip(lo) {
                if !self.b_used[j] && cb == ca {
                    self.b_used[j] = true;
                    self.matches_a.push(ca);
                    self.match_idx_b.push(j);
                    break;
                }
            }
        }
        let m = self.matches_a.len();
        if m == 0 {
            return 0.0;
        }
        // Transpositions: matched chars of `a` against matched chars of
        // `b` in b-order. The matched indices are distinct, so an unstable
        // (allocation-free) sort yields exactly the stable-sorted order.
        self.match_idx_b.sort_unstable();
        let t = self
            .matches_a
            .iter()
            .zip(self.match_idx_b.iter())
            .filter(|(ca, &j)| **ca != b[j])
            .count() as f64
            / 2.0;

        let m = m as f64;
        (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
    }

    /// Jaro-Winkler over char slices, bit-identical to [`jaro_winkler`].
    pub fn jaro_winkler_chars(&mut self, a: &[char], b: &[char]) -> f64 {
        let j = self.jaro_chars(a, b);
        let prefix = a
            .iter()
            .zip(b.iter())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count() as f64;
        j + prefix * 0.1 * (1.0 - j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(jaro_winkler("26.7$", "26.7$"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty() {
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro_winkler("abc", ""), 0.0);
    }

    #[test]
    fn classic_reference_values() {
        // MARTHA/MARHTA: jaro = 0.944..., jw = 0.961...
        let j = jaro("MARTHA", "MARHTA");
        assert!((j - 0.944444).abs() < 1e-4, "{j}");
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!((jw - 0.961111).abs() < 1e-4, "{jw}");
        // DIXON/DICKSONX: jaro ≈ 0.76667, jw ≈ 0.81333
        let j = jaro("DIXON", "DICKSONX");
        assert!((j - 0.766667).abs() < 1e-4, "{j}");
        let jw = jaro_winkler("DIXON", "DICKSONX");
        assert!((jw - 0.813333).abs() < 1e-4, "{jw}");
    }

    #[test]
    fn paper_example_prefix_preference() {
        // "26.7$" closer to "26.65$" than to "29.75$" (§IV-B).
        let close = jaro_winkler("26.7$", "26.65$");
        let far = jaro_winkler("26.7$", "29.75$");
        assert!(close > far, "close={close} far={far}");
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("37K", "36900"), ("1.5", "1.543"), ("abc", "xbc")] {
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn bounds() {
        for (a, b) in [("123", "9999999"), ("x", "y"), ("12.5%", "12.5%")] {
            let v = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&v));
        }
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn scratch_path_is_bit_identical() {
        let mut scratch = JaroScratch::new();
        let samples = [
            ("MARTHA", "MARHTA"),
            ("DIXON", "DICKSONX"),
            ("26.7$", "26.65$"),
            ("26.7$", "29.75$"),
            ("37K", "36900"),
            ("", "abc"),
            ("abc", ""),
            ("", ""),
            ("37 €", "37 €"),
            ("37€", "38€"),
            ("aabbccdd", "ddccbbaa"),
            ("123456789", "918273645"),
        ];
        for (a, b) in samples {
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            assert_eq!(scratch.jaro_chars(&ac, &bc), jaro(a, b), "{a:?} {b:?}");
            assert_eq!(
                scratch.jaro_winkler_chars(&ac, &bc),
                jaro_winkler(a, b),
                "{a:?} {b:?}"
            );
        }
    }

    #[test]
    fn unicode_strings() {
        let v = jaro_winkler("37 €", "37 €");
        assert_eq!(v, 1.0);
        assert!(jaro_winkler("37€", "38€") > 0.5);
    }
}
