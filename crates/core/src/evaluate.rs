//! Evaluation: precision / recall / F1 against gold alignments, overall
//! and per mention type (Tables II–V), plus post-filter recall (Table VI).

use briq_ml::metrics::Prf;
use briq_table::{TableMention, TableMentionKind};
use std::collections::BTreeMap;

use crate::filtering::Candidate;
use crate::mention::{Alignment, GoldAlignment, TextMention};
use crate::training::matches_target;

/// Confusion counts for one mention type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// True positives.
    pub tp: usize,
    /// False positives (predicted, no matching gold).
    pub fp: usize,
    /// False negatives (gold, not predicted).
    pub fn_: usize,
}

impl Counts {
    /// Precision/recall/F1 of these counts.
    pub fn prf(&self) -> Prf {
        Prf::from_counts(self.tp, self.fp, self.fn_)
    }
}

/// Evaluation report: overall and per-type counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalReport {
    /// Counts per mention-type name ("single-cell", "sum", …).
    pub by_type: BTreeMap<String, Counts>,
}

impl EvalReport {
    /// Add one document's predictions and gold to the report.
    ///
    /// Matching is greedy by score: each gold alignment is matched by at
    /// most one prediction and vice versa.
    pub fn add_document(&mut self, predictions: &[Alignment], gold: &[GoldAlignment]) {
        let mut gold_used = vec![false; gold.len()];
        let mut preds: Vec<&Alignment> = predictions.iter().collect();
        preds.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        for p in preds {
            let hit = gold
                .iter()
                .enumerate()
                .find(|(gi, g)| !gold_used[*gi] && g.matches(p));
            match hit {
                Some((gi, g)) => {
                    gold_used[gi] = true;
                    self.entry(g.kind).tp += 1;
                }
                None => {
                    self.entry(p.target.kind).fp += 1;
                }
            }
        }
        for (gi, g) in gold.iter().enumerate() {
            if !gold_used[gi] {
                self.entry(g.kind).fn_ += 1;
            }
        }
    }

    fn entry(&mut self, kind: TableMentionKind) -> &mut Counts {
        self.by_type.entry(kind.name().to_string()).or_default()
    }

    /// Counts summed over all types.
    pub fn overall_counts(&self) -> Counts {
        self.by_type
            .values()
            .fold(Counts::default(), |acc, c| Counts {
                tp: acc.tp + c.tp,
                fp: acc.fp + c.fp,
                fn_: acc.fn_ + c.fn_,
            })
    }

    /// Overall precision/recall/F1.
    pub fn overall(&self) -> Prf {
        self.overall_counts().prf()
    }

    /// Per-type precision/recall/F1.
    pub fn prf_for(&self, kind: &str) -> Prf {
        self.by_type.get(kind).map(|c| c.prf()).unwrap_or_default()
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &EvalReport) {
        for (k, c) in &other.by_type {
            let e = self.by_type.entry(k.clone()).or_default();
            e.tp += c.tp;
            e.fp += c.fp;
            e.fn_ += c.fn_;
        }
    }
}

/// Post-filter recall (Table VI): the fraction of gold alignments whose
/// target survived adaptive filtering, per type.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterRecall {
    /// `(surviving gold targets, total gold targets)` per type name.
    pub by_type: BTreeMap<String, (usize, usize)>,
}

impl FilterRecall {
    /// Record one document.
    pub fn add_document(
        &mut self,
        mentions: &[TextMention],
        candidates: &[Vec<Candidate>],
        targets: &[TableMention],
        gold: &[GoldAlignment],
    ) {
        for g in gold {
            let name = g.kind.name().to_string();
            let e = self.by_type.entry(name).or_insert((0, 0));
            e.1 += 1;
            // Find the text mention covering the gold span.
            let found = mentions.iter().enumerate().any(|(i, x)| {
                let overlap = x.quantity.start < g.mention_end && g.mention_start < x.quantity.end;
                overlap
                    && candidates[i]
                        .iter()
                        .any(|c| matches_target(g, &targets[c.target]))
            });
            if found {
                e.0 += 1;
            }
        }
    }

    /// Recall for a type name.
    pub fn recall(&self, kind: &str) -> Option<f64> {
        let &(hit, total) = self.by_type.get(kind)?;
        if total == 0 {
            None
        } else {
            Some(hit as f64 / total as f64)
        }
    }

    /// Overall post-filter recall.
    pub fn overall(&self) -> f64 {
        let (hit, total) = self
            .by_type
            .values()
            .fold((0, 0), |(h, t), &(a, b)| (h + a, t + b));
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &FilterRecall) {
        for (k, &(h, t)) in &other.by_type {
            let e = self.by_type.entry(k.clone()).or_insert((0, 0));
            e.0 += h;
            e.1 += t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_text::units::Unit;

    fn target(kind: TableMentionKind, cells: Vec<(usize, usize)>) -> TableMention {
        TableMention {
            table: 0,
            kind,
            cells,
            value: 1.0,
            unnormalized: 1.0,
            raw: "1".into(),
            unit: Unit::None,
            precision: 0,
            orientation: None,
        }
    }

    fn pred(
        start: usize,
        kind: TableMentionKind,
        cells: Vec<(usize, usize)>,
        score: f64,
    ) -> Alignment {
        Alignment {
            mention_start: start,
            mention_end: start + 2,
            mention_raw: "1".into(),
            target: target(kind, cells),
            score,
        }
    }

    fn gold(start: usize, kind: TableMentionKind, cells: Vec<(usize, usize)>) -> GoldAlignment {
        GoldAlignment {
            mention_start: start,
            mention_end: start + 2,
            table: 0,
            kind,
            cells,
        }
    }

    #[test]
    fn perfect_document() {
        let mut r = EvalReport::default();
        let sc = TableMentionKind::SingleCell;
        r.add_document(
            &[
                pred(0, sc, vec![(1, 1)], 0.9),
                pred(10, sc, vec![(2, 2)], 0.8),
            ],
            &[gold(0, sc, vec![(1, 1)]), gold(10, sc, vec![(2, 2)])],
        );
        assert_eq!(
            r.overall(),
            Prf {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0
            }
        );
    }

    #[test]
    fn wrong_cell_counts_fp_and_fn() {
        let mut r = EvalReport::default();
        let sc = TableMentionKind::SingleCell;
        r.add_document(
            &[pred(0, sc, vec![(9, 9)], 0.9)],
            &[gold(0, sc, vec![(1, 1)])],
        );
        let c = r.overall_counts();
        assert_eq!((c.tp, c.fp, c.fn_), (0, 1, 1));
        let prf = r.overall();
        assert_eq!(prf.f1, 0.0);
    }

    #[test]
    fn per_type_breakdown() {
        let mut r = EvalReport::default();
        let sc = TableMentionKind::SingleCell;
        let sum = TableMentionKind::Aggregate(briq_text::AggregationKind::Sum);
        r.add_document(
            &[
                pred(0, sc, vec![(1, 1)], 0.9),
                pred(10, sum, vec![(1, 1), (2, 1)], 0.8),
            ],
            &[
                gold(0, sc, vec![(1, 1)]),
                gold(10, sum, vec![(1, 1), (2, 1)]),
            ],
        );
        assert_eq!(r.prf_for("single-cell").f1, 1.0);
        assert_eq!(r.prf_for("sum").f1, 1.0);
        assert_eq!(r.prf_for("diff").f1, 0.0); // unseen type
    }

    #[test]
    fn each_gold_matched_once() {
        let mut r = EvalReport::default();
        let sc = TableMentionKind::SingleCell;
        // Two predictions to the same gold: one tp, one fp.
        r.add_document(
            &[
                pred(0, sc, vec![(1, 1)], 0.9),
                pred(0, sc, vec![(1, 1)], 0.5),
            ],
            &[gold(0, sc, vec![(1, 1)])],
        );
        let c = r.overall_counts();
        assert_eq!((c.tp, c.fp, c.fn_), (1, 1, 0));
    }

    #[test]
    fn merge_reports() {
        let sc = TableMentionKind::SingleCell;
        let mut a = EvalReport::default();
        a.add_document(
            &[pred(0, sc, vec![(1, 1)], 0.9)],
            &[gold(0, sc, vec![(1, 1)])],
        );
        let mut b = EvalReport::default();
        b.add_document(&[], &[gold(0, sc, vec![(1, 1)])]);
        a.merge(&b);
        let c = a.overall_counts();
        assert_eq!((c.tp, c.fp, c.fn_), (1, 0, 1));
    }

    #[test]
    fn filter_recall_counts_survivors() {
        use crate::filtering::Candidate;
        use crate::mention::TextMention;
        use briq_text::quantity::QuantityMention;

        let sc = TableMentionKind::SingleCell;
        let targets = vec![target(sc, vec![(1, 1)]), target(sc, vec![(2, 2)])];
        let mentions = vec![TextMention {
            id: 0,
            quantity: QuantityMention {
                raw: "1".into(),
                value: 1.0,
                unnormalized: 1.0,
                unit: Unit::None,
                precision: 0,
                approx: Default::default(),
                start: 0,
                end: 2,
            },
        }];
        let mut fr = FilterRecall::default();
        // survivor includes the gold target
        fr.add_document(
            &mentions,
            &[vec![Candidate {
                target: 0,
                score: 0.5,
            }]],
            &targets,
            &[gold(0, sc, vec![(1, 1)])],
        );
        // survivor misses the gold target
        fr.add_document(
            &mentions,
            &[vec![Candidate {
                target: 1,
                score: 0.5,
            }]],
            &targets,
            &[gold(0, sc, vec![(1, 1)])],
        );
        assert_eq!(fr.recall("single-cell"), Some(0.5));
        assert_eq!(fr.overall(), 0.5);
    }
}

briq_json::json_struct!(Counts { tp, fp, fn_ });
briq_json::json_struct!(EvalReport { by_type });
briq_json::json_struct!(FilterRecall { by_type });
