//! Precomputed context structures for feature computation.
//!
//! Feature extraction compares the textual surroundings of a text mention
//! against the row/column/table content of a candidate table mention
//! (§IV-B). Contexts are computed once per document and reused across the
//! many candidate pairs.

use briq_table::{Document, TableMention};
use briq_text::chunker::noun_phrase_strings;
use briq_text::cues::{infer_aggregation, AggregationKind};
use briq_text::sentence::{sentence_containing, split_sentences};
use briq_text::token::{light_stem, tokenize, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

use crate::mention::TextMention;

/// Context-window parameters (tuned on validation data in the paper).
#[derive(Debug, Clone, Copy)]
pub struct ContextConfig {
    /// Words before/after the mention forming the local window (feature
    /// f2's `n`).
    pub local_window: usize,
    /// Distance step at which word weights are discounted.
    pub step_size: usize,
    /// Weight discount per step.
    pub step_weight: f64,
    /// Window (words) used to infer the aggregation function (f12; the
    /// paper defaults to five).
    pub aggregation_window: usize,
    /// Window (words) for the tagger's immediate context (§V-A: ten).
    pub immediate_window: usize,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            local_window: 8,
            step_size: 2,
            step_weight: 0.2,
            aggregation_window: 5,
            immediate_window: 10,
        }
    }
}

fn stem_set(text: &str) -> BTreeSet<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.is_wordlike() || t.kind == TokenKind::Number)
        .map(|t| light_stem(&t.text))
        .collect()
}

/// Precomputed per-table context: stemmed word sets and noun phrases for
/// every row, every column, and the table as a whole.
#[derive(Debug, Clone)]
pub struct TableContext {
    /// Stemmed words per row (headers included).
    pub row_words: Vec<BTreeSet<String>>,
    /// Stemmed words per column.
    pub col_words: Vec<BTreeSet<String>>,
    /// All stemmed words of the table plus caption.
    pub table_words: BTreeSet<String>,
    /// Noun phrases per row.
    pub row_phrases: Vec<BTreeSet<String>>,
    /// Noun phrases per column.
    pub col_phrases: Vec<BTreeSet<String>>,
    /// All noun phrases of the table plus caption.
    pub table_phrases: BTreeSet<String>,
}

impl TableContext {
    /// Build the context of one table. Pure in the table's caption and
    /// cell grid — the alignment store relies on this purity to reuse
    /// cached table contexts across page versions (DESIGN.md §15).
    pub fn build(table: &briq_table::Table) -> TableContext {
        let row_words: Vec<_> = (0..table.n_rows)
            .map(|r| stem_set(&table.row_text(r)))
            .collect();
        let col_words: Vec<_> = (0..table.n_cols)
            .map(|c| stem_set(&table.col_text(c)))
            .collect();
        let table_words = stem_set(&table.full_text());
        let row_phrases: Vec<_> = (0..table.n_rows)
            .map(|r| {
                noun_phrase_strings(&table.row_text(r))
                    .into_iter()
                    .collect()
            })
            .collect();
        let col_phrases: Vec<_> = (0..table.n_cols)
            .map(|c| {
                noun_phrase_strings(&table.col_text(c))
                    .into_iter()
                    .collect()
            })
            .collect();
        let table_phrases = noun_phrase_strings(&table.full_text())
            .into_iter()
            .collect();
        TableContext {
            row_words,
            col_words,
            table_words,
            row_phrases,
            col_phrases,
            table_phrases,
        }
    }

    /// Local context of a table mention: union of the rows and columns of
    /// its member cells (§IV-B: "for the table mention it is the full row
    /// and the full column content").
    pub fn local_words(&self, m: &TableMention) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for &(r, c) in &m.cells {
            if let Some(w) = self.row_words.get(r) {
                out.extend(w.iter().cloned());
            }
            if let Some(w) = self.col_words.get(c) {
                out.extend(w.iter().cloned());
            }
        }
        out
    }

    /// Local noun phrases of a table mention (rows + columns of members).
    pub fn local_phrases(&self, m: &TableMention) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for &(r, c) in &m.cells {
            if let Some(p) = self.row_phrases.get(r) {
                out.extend(p.iter().cloned());
            }
            if let Some(p) = self.col_phrases.get(c) {
                out.extend(p.iter().cloned());
            }
        }
        out
    }
}

/// Per-text-mention context view.
#[derive(Debug, Clone)]
pub struct MentionContext {
    /// Stemmed word → positional weight, over the local window (f2).
    pub local_weights: BTreeMap<String, f64>,
    /// Noun phrases of the containing sentence (f4).
    pub sentence_phrases: BTreeSet<String>,
    /// Lowercased words of the immediate window (tagger features).
    pub immediate_words: Vec<String>,
    /// Lowercased words of the containing sentence (tagger local scope).
    pub sentence_words: Vec<String>,
    /// Aggregation inferred from cue words near the mention (f12).
    pub inferred_aggregation: Option<AggregationKind>,
    /// Token index of the mention's first token (proximity features).
    pub token_index: usize,
}

/// Precomputed per-document context.
#[derive(Debug, Clone)]
pub struct DocContext {
    /// Document tokens.
    pub tokens: Vec<Token>,
    /// Stemmed words of the whole paragraph (f3).
    pub paragraph_words: BTreeSet<String>,
    /// Lowercased words of the whole paragraph (tagger global scope).
    pub paragraph_word_list: Vec<String>,
    /// Noun phrases of the whole paragraph (f5).
    pub paragraph_phrases: BTreeSet<String>,
    /// Per-table contexts.
    pub tables: Vec<TableContext>,
    /// Per-text-mention contexts, parallel to the extracted mentions.
    pub mentions: Vec<MentionContext>,
}

impl DocContext {
    /// Build the full context for `doc` and its extracted `mentions`.
    pub fn build(doc: &Document, mentions: &[TextMention], cfg: &ContextConfig) -> DocContext {
        let tables = doc.tables.iter().map(TableContext::build).collect();
        Self::build_with_tables(doc, mentions, cfg, tables)
    }

    /// [`DocContext::build`] with the per-table contexts supplied by the
    /// caller. Everything else is derived from `doc.text` alone, so the
    /// alignment store can recombine a cached text side with freshly (or
    /// separately cached) built table contexts. `build` delegates here —
    /// the two can never drift apart.
    pub fn build_with_tables(
        doc: &Document,
        mentions: &[TextMention],
        cfg: &ContextConfig,
        tables: Vec<TableContext>,
    ) -> DocContext {
        let tokens = tokenize(&doc.text);
        let sentences = split_sentences(&doc.text);
        let paragraph_words = stem_set(&doc.text);
        let paragraph_word_list: Vec<String> = tokens
            .iter()
            .filter(|t| t.is_wordlike())
            .map(|t| t.lower())
            .collect();
        let paragraph_phrases: BTreeSet<String> =
            noun_phrase_strings(&doc.text).into_iter().collect();

        let mention_ctx = mentions
            .iter()
            .map(|m| Self::mention_context(&doc.text, &tokens, &sentences, m, cfg))
            .collect();

        DocContext {
            tokens,
            paragraph_words,
            paragraph_word_list,
            paragraph_phrases,
            tables,
            mentions: mention_ctx,
        }
    }

    fn mention_context(
        text: &str,
        tokens: &[Token],
        sentences: &[(usize, usize)],
        m: &TextMention,
        cfg: &ContextConfig,
    ) -> MentionContext {
        let q = &m.quantity;
        // Index of the first token at/after the mention start.
        let tix = tokens.partition_point(|t| t.end <= q.start);

        // Word tokens around the mention, with distances (in word tokens).
        let mut local_weights: BTreeMap<String, f64> = BTreeMap::new();
        let mut immediate_words = Vec::new();
        let mut agg_words = Vec::new();
        let add = |list: &mut Vec<String>, word: &str| list.push(word.to_string());

        // walk left
        let mut d = 0usize;
        let mut i = tix;
        while i > 0 && d < cfg.local_window.max(cfg.immediate_window) {
            i -= 1;
            let t = &tokens[i];
            if t.end <= q.start && t.is_wordlike() {
                d += 1;
                let lower = t.lower();
                if d <= cfg.immediate_window {
                    add(&mut immediate_words, &lower);
                }
                if d <= cfg.aggregation_window {
                    add(&mut agg_words, &lower);
                }
                if d <= cfg.local_window {
                    let w = weight_at(d, cfg);
                    let stem = light_stem(&t.text);
                    let e = local_weights.entry(stem).or_insert(0.0);
                    *e = e.max(w);
                }
            }
        }
        immediate_words.reverse();
        agg_words.reverse();
        // walk right
        let mut d = 0usize;
        let mut i = tix;
        while i < tokens.len() && d < cfg.local_window.max(cfg.immediate_window) {
            let t = &tokens[i];
            i += 1;
            if t.start >= q.end && t.is_wordlike() {
                d += 1;
                let lower = t.lower();
                if d <= cfg.immediate_window {
                    add(&mut immediate_words, &lower);
                }
                if d <= cfg.aggregation_window {
                    add(&mut agg_words, &lower);
                }
                if d <= cfg.local_window {
                    let w = weight_at(d, cfg);
                    let stem = light_stem(&t.text);
                    let e = local_weights.entry(stem).or_insert(0.0);
                    *e = e.max(w);
                }
            }
        }

        // containing sentence
        let (ss, se) = sentence_containing(sentences, q.start).unwrap_or((0, text.len()));
        let sentence = &text[ss..se];
        let sentence_phrases: BTreeSet<String> =
            noun_phrase_strings(sentence).into_iter().collect();
        let sentence_words: Vec<String> = tokenize(sentence)
            .into_iter()
            .filter(|t| t.is_wordlike())
            .map(|t| t.lower())
            .collect();

        let agg_refs: Vec<&str> = agg_words.iter().map(|s| s.as_str()).collect();
        let inferred_aggregation = infer_aggregation(&agg_refs);

        MentionContext {
            local_weights,
            sentence_phrases,
            immediate_words,
            sentence_words,
            inferred_aggregation,
            token_index: tix,
        }
    }
}

/// Positional weight of a word at distance `d` (in words) from the
/// mention: `1 − (d / stepSize) · stepWeight`, floored at 0.05 (§IV-B).
fn weight_at(d: usize, cfg: &ContextConfig) -> f64 {
    (1.0 - (d as f64 / cfg.step_size as f64) * cfg.step_weight).max(0.05)
}

/// Weighted overlap coefficient between the mention's weighted words and a
/// table mention's word set (table words weigh 1).
pub fn weighted_overlap(weights: &BTreeMap<String, f64>, table_words: &BTreeSet<String>) -> f64 {
    if weights.is_empty() || table_words.is_empty() {
        return 0.0;
    }
    let inter: f64 = weights
        .iter()
        .filter(|(w, _)| table_words.contains(*w))
        .map(|(_, &v)| v)
        .sum();
    let text_mass: f64 = weights.values().sum();
    let denom = text_mass.min(table_words.len() as f64);
    if denom <= 0.0 {
        0.0
    } else {
        (inter / denom).min(1.0)
    }
}

/// Plain overlap coefficient between two sets.
pub fn overlap(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    a.intersection(b).count() as f64 / a.len().min(b.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mention::text_mentions;
    use briq_table::Table;

    fn doc() -> Document {
        Document::new(
            0,
            "Overall, a total of 123 patients reported side effects. \
             Depression was reported by 38 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["side effects".into(), "patients".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            )],
        )
    }

    fn ctx() -> (Document, Vec<TextMention>, DocContext) {
        let d = doc();
        let ms = text_mentions(&d);
        let c = DocContext::build(&d, &ms, &ContextConfig::default());
        (d, ms, c)
    }

    #[test]
    fn mentions_and_contexts_parallel() {
        let (_, ms, c) = ctx();
        assert_eq!(ms.len(), 2);
        assert_eq!(c.mentions.len(), 2);
    }

    #[test]
    fn sum_cue_inferred_for_total() {
        let (_, _, c) = ctx();
        assert_eq!(
            c.mentions[0].inferred_aggregation,
            Some(AggregationKind::Sum)
        );
        assert_eq!(c.mentions[1].inferred_aggregation, None);
    }

    #[test]
    fn local_weights_decay_with_distance() {
        let (_, _, c) = ctx();
        let w = &c.mentions[0].local_weights;
        // "of" is adjacent, "overall" is farther away
        let near = w.get("of").copied().unwrap_or(0.0);
        let far = w.get("overall").copied().unwrap_or(0.0);
        assert!(near > far, "near={near} far={far}");
        assert!(far > 0.0);
    }

    #[test]
    fn immediate_window_contains_cues() {
        let (_, _, c) = ctx();
        assert!(c.mentions[0].immediate_words.contains(&"total".to_string()));
        assert!(c.mentions[1]
            .immediate_words
            .contains(&"depression".to_string()));
    }

    #[test]
    fn sentence_scoping() {
        let (_, _, c) = ctx();
        // Mention 2's sentence has "depression" but not "total".
        assert!(c.mentions[1]
            .sentence_words
            .contains(&"depression".to_string()));
        assert!(!c.mentions[1].sentence_words.contains(&"total".to_string()));
    }

    #[test]
    fn table_context_row_col_words() {
        let (_, _, c) = ctx();
        let t = &c.tables[0];
        assert!(t.row_words[2].contains("depression"));
        assert!(t.col_words[1].contains("patient")); // stemmed
        assert!(t.table_words.contains("rash"));
    }

    #[test]
    fn table_mention_local_context_unions_row_and_col() {
        let (_, _, c) = ctx();
        let tm = TableMention {
            table: 0,
            kind: briq_table::TableMentionKind::SingleCell,
            cells: vec![(2, 1)],
            value: 38.0,
            unnormalized: 38.0,
            raw: "38".into(),
            unit: briq_text::Unit::None,
            precision: 0,
            orientation: None,
        };
        let words = c.tables[0].local_words(&tm);
        assert!(words.contains("depression")); // row
        assert!(words.contains("patient")); // column header
        assert!(!words.contains("rash")); // different row, different col? no:
                                          // "rash" is in column 0... cell (2,1)'s column is 1, so rash (row 1,
                                          // col 0) is absent.
    }

    #[test]
    fn overlap_functions() {
        let a: BTreeSet<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let b: BTreeSet<String> = ["y", "z", "w"].iter().map(|s| s.to_string()).collect();
        assert!((overlap(&a, &b) - 0.5).abs() < 1e-12);
        let mut w = BTreeMap::new();
        w.insert("y".to_string(), 0.8);
        w.insert("q".to_string(), 0.2);
        let v = weighted_overlap(&w, &b);
        assert!((v - 0.8).abs() < 1e-12);
        assert_eq!(weighted_overlap(&BTreeMap::new(), &b), 0.0);
    }
}

briq_json::json_struct!(ContextConfig {
    local_window,
    step_size,
    step_weight,
    aggregation_window,
    immediate_window,
});
