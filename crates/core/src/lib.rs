//! # briq-core
//!
//! The BriQ system ("Bridging Quantities in Tables and Text", ICDE 2019):
//! aligning quantity mentions in text with table cells and virtual cells.
//!
//! The pipeline (§II-B, Fig. 2):
//!
//! 1. **Table-text extraction** (`briq-table` + [`mention`]) — documents,
//!    text mentions, single-cell and virtual-cell table mentions.
//! 2. **Mention-pair classification** ([`features`], [`classifier`],
//!    [`scoring`]) — a class-weighted Random Forest over the 12
//!    judiciously designed features of §IV-B scores every candidate pair,
//!    batched through the dedup + bound-based-pruning engine on the
//!    alignment hot path.
//! 3. **Adaptive filtering** ([`tagger`], [`filtering`]) — tag-based
//!    pruning of aggregate candidates, value/unit pruning, and mention-type
//!    and entropy-adaptive top-k selection (§V).
//! 4. **Global resolution** ([`graph_builder`], [`resolution`]) — random
//!    walks with restart over the candidate alignment graph, processing
//!    mentions in increasing entropy order and updating the graph after
//!    every alignment decision (Algorithm 1, §VI).
//!
//! [`pipeline::Briq`] wires the stages together; [`baselines`] provides
//! the two published comparison points (classifier-only RF and
//! random-walk-only RWR).
//!
//! ## Quickstart
//!
//! ```
//! use briq_core::pipeline::{Briq, BriqConfig};
//! use briq_core::training::TrainingExample;
//! # fn main() {
//! // (Training normally uses a corpus; see `briq-corpus`.)
//! let cfg = BriqConfig::default();
//! let briq = Briq::untrained(cfg); // heuristic prior, no learned model
//! let doc = briq_table::Document::new(
//!     0,
//!     "A total of 123 patients reported side effects.",
//!     vec![briq_table::Table::from_grid(
//!         "",
//!         vec![
//!             vec!["effect".into(), "patients".into()],
//!             vec!["Rash".into(), "35".into()],
//!             vec!["Depression".into(), "88".into()],
//!         ],
//!     )],
//! );
//! let alignments = briq.align(&doc);
//! # let _ = alignments;
//! # }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod arena;
pub mod baselines;
pub mod batch;
pub mod classifier;
pub mod context;
pub mod error;
pub mod evaluate;
pub mod features;
pub mod filtering;
pub mod graph_builder;
pub mod jaro;
pub mod mention;
pub mod obs;
pub mod pipeline;
pub mod resolution;
pub mod resolution_ilp;
pub mod retrieval;
pub mod scoring;
pub mod serve;
pub mod store;
pub mod tagger;
pub mod training;

pub use batch::{
    align_batch, align_batch_stored, BatchConfig, BatchReport, DocReport, StageTimings, WorkerStats,
};
pub use error::{
    BriqError, Budget, CancelCause, CancelToken, DegradedAction, Diagnostic, Diagnostics, Stage,
};
pub use features::{FeatureMask, FEATURE_COUNT};
pub use jaro::jaro_winkler;
pub use mention::{Alignment, GoldAlignment};
pub use obs::{DocTrace, MetricsRegistry, Recorder};
pub use pipeline::{Briq, BriqConfig};
pub use store::AlignmentStore;
