//! The end-to-end BriQ pipeline (Fig. 2).

use briq_ml::RandomForestConfig;
use briq_table::virtual_cells::{all_table_mentions_capped, VirtualCellConfig};
use briq_table::{Document, TableError, TableMention};
use briq_text::cues::AggregationKind;

use crate::batch::{align_batch, BatchConfig, BatchReport, StageTimings};
use crate::classifier::PairClassifier;
use crate::context::{ContextConfig, DocContext, TableContext};
use crate::error::{
    BriqError, Budget, CancelCause, CancelToken, DegradedAction, Diagnostics, Stage,
};
use crate::features::{FeatureMask, PairFeaturizer, FEATURE_COUNT};
use crate::filtering::{
    filter_mention, filter_mention_pruned, Candidate, FilterConfig, FilterStats,
};
use crate::graph_builder::{build_graph_budgeted, GraphConfig};
use crate::mention::{text_mentions, Alignment, TextMention};
use crate::obs::{names, Recorder};
use crate::resolution::{resolve_observed, ResolutionConfig, ResolutionEvent};
use crate::retrieval::CandidateIndex;
use crate::span;
use crate::tagger::{tagger_features, MentionTagger, TaggerExample};
use crate::training::{
    build_training_examples, examples_to_dataset, tagger_label, LabeledDocument,
};
use std::time::Instant;

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct BriqConfig {
    /// Context-window parameters (§IV-B).
    pub context: ContextConfig,
    /// Virtual-cell generation (§II-A).
    pub virtual_cells: VirtualCellConfig,
    /// Adaptive filtering (§V).
    pub filter: FilterConfig,
    /// Graph construction (§VI-A).
    pub graph: GraphConfig,
    /// Global resolution (§VI-B).
    pub resolution: ResolutionConfig,
    /// Random-forest settings for the pair classifier.
    pub forest: RandomForestConfig,
    /// Random-forest settings for the tagger.
    pub tagger_forest: RandomForestConfig,
    /// Tagger confidence threshold (§V-A, precision-oriented).
    pub tagger_threshold: f64,
    /// Feature-ablation mask (§VIII-B).
    pub mask: FeatureMask,
    /// Retrieve candidates through the per-document
    /// [`crate::retrieval::CandidateIndex`] instead of pairing every
    /// mention with every target (DESIGN.md §13). Output is bit-identical
    /// either way; `BRIQ_NO_INDEX=1` force-disables it at run time.
    pub use_index: bool,
    /// Serve repeated alignments of unchanged (or partially changed)
    /// documents from the versioned [`crate::store::AlignmentStore`]
    /// when one is attached (DESIGN.md §15). Output is bit-identical
    /// either way; `BRIQ_NO_STORE=1` force-disables it at run time.
    pub use_store: bool,
}

impl Default for BriqConfig {
    fn default() -> Self {
        BriqConfig {
            context: ContextConfig::default(),
            virtual_cells: VirtualCellConfig::default(),
            filter: FilterConfig::default(),
            graph: GraphConfig::default(),
            resolution: ResolutionConfig::default(),
            forest: RandomForestConfig::default(),
            tagger_forest: RandomForestConfig {
                n_trees: 32,
                ..Default::default()
            },
            tagger_threshold: 0.6,
            mask: FeatureMask::all(),
            use_index: true,
            use_store: true,
        }
    }
}

/// A document prepared for alignment: mentions, context, targets, and the
/// full classifier score matrix. Shared by BriQ and the baselines.
pub struct ScoredDocument {
    /// Extracted text mentions.
    pub mentions: Vec<TextMention>,
    /// Precomputed document context.
    pub ctx: DocContext,
    /// All table mentions (single + virtual cells).
    pub targets: Vec<TableMention>,
    /// Per mention, every `(target index, prior score)` pair.
    pub scored: Vec<Vec<(usize, f64)>>,
    /// Per mention, the tagger's predicted aggregation kinds (empty =
    /// single cell).
    pub tags: Vec<Vec<AggregationKind>>,
    /// The budget this document was scored under (and that downstream
    /// stages should keep honouring).
    pub budget: Budget,
}

/// The BriQ system: trained classifier + tagger + configuration.
#[derive(Debug, Clone)]
pub struct Briq {
    /// Configuration in force.
    pub cfg: BriqConfig,
    classifier: Option<PairClassifier>,
    tagger: MentionTagger,
}

/// Uniform-weight combination of the 12 features into a `[0, 1]` score —
/// the prior used before training and by the RWR-only baseline ("these
/// features are combined using uniform weights", §VII-D).
pub fn heuristic_prior(f: &[f64]) -> f64 {
    let surface = f[0];
    let ctx = (f[1] + f[2] + f[3] + f[4]) / 4.0;
    let value = 1.0 - f[5].min(1.0);
    let value_raw = 1.0 - f[6].min(1.0);
    let unit = (3.0 - f[7]) / 3.0;
    let scale = (1.0 - f[8] / 4.0).max(0.0);
    let precision = (1.0 - f[9] / 4.0).max(0.0);
    let agg = (3.0 - f[11]) / 3.0;
    ((surface + ctx + value + value_raw + unit + scale + precision + agg) / 8.0).clamp(0.0, 1.0)
}

/// [`heuristic_prior`] under a feature mask, without copying the row:
/// masked features read as 0.0, exactly as if `mask.apply` had zeroed a
/// copy first — same expressions, same evaluation order, bit-identical.
pub fn heuristic_prior_masked(f: &[f64], mask: &FeatureMask) -> f64 {
    let g = |i: usize| if mask.keeps(i) { f[i] } else { 0.0 };
    let surface = g(0);
    let ctx = (g(1) + g(2) + g(3) + g(4)) / 4.0;
    let value = 1.0 - g(5).min(1.0);
    let value_raw = 1.0 - g(6).min(1.0);
    let unit = (3.0 - g(7)) / 3.0;
    let scale = (1.0 - g(8) / 4.0).max(0.0);
    let precision = (1.0 - g(9) / 4.0).max(0.0);
    let agg = (3.0 - g(11)) / 3.0;
    ((surface + ctx + value + value_raw + unit + scale + precision + agg) / 8.0).clamp(0.0, 1.0)
}

impl Briq {
    /// A BriQ instance without a trained classifier: the heuristic prior
    /// replaces the Random Forest and a lexical tagger replaces the
    /// trained one. Useful for exploration and doc examples.
    pub fn untrained(cfg: BriqConfig) -> Briq {
        let tagger = MentionTagger::lexical(cfg.tagger_threshold);
        Briq {
            cfg,
            classifier: None,
            tagger,
        }
    }

    /// Train the classifier on `train_docs` and the tagger on
    /// `tagger_docs` (the paper withholds a separate small set for the
    /// tagger, §V-A).
    pub fn train(
        cfg: BriqConfig,
        train_docs: &[LabeledDocument],
        tagger_docs: &[LabeledDocument],
    ) -> Briq {
        Self::train_observed(cfg, train_docs, tagger_docs, &Recorder::disabled())
    }

    /// [`Briq::train`] with observability: spans for example building,
    /// forest training, and tagger training, plus the `train_*` counters,
    /// are recorded into `rec`. The recorder only observes — the trained
    /// model is bit-identical with it enabled or disabled.
    pub fn train_observed(
        cfg: BriqConfig,
        train_docs: &[LabeledDocument],
        tagger_docs: &[LabeledDocument],
        rec: &Recorder,
    ) -> Briq {
        let _train_guard = span!(rec, names::SPAN_TRAIN);
        let (examples, data) = {
            let _g = span!(rec, names::SPAN_TRAIN_EXAMPLES);
            let (examples, _) =
                build_training_examples(train_docs, &cfg.virtual_cells, &cfg.context);
            let data = examples_to_dataset(&examples);
            (examples, data)
        };
        rec.count(names::TRAIN_EXAMPLES_BUILT, examples.len() as u64);
        rec.count(
            names::TRAIN_POSITIVES,
            examples.iter().filter(|e| e.label).count() as u64,
        );
        let classifier = {
            let _g = span!(rec, names::SPAN_TRAIN_FOREST);
            PairClassifier::train(&data, cfg.forest, cfg.mask)
        };
        let tagger = {
            let _g = span!(rec, names::SPAN_TRAIN_TAGGER);
            Self::train_tagger(&cfg, tagger_docs)
        };
        Briq {
            cfg,
            classifier: Some(classifier),
            tagger,
        }
    }

    /// Train and then tune the resolution hyper-parameters (α/β mix and
    /// acceptance threshold ε of Eq. 1) by grid search on the validation
    /// documents (§VII-C: "we use grid search to choose the best values
    /// for the hyper-parameters, for the classifiers as well as for the
    /// graph-based algorithm"). Returns the tuned system and the selected
    /// parameters' validation F1.
    pub fn train_tuned(
        cfg: BriqConfig,
        train_docs: &[LabeledDocument],
        validation_docs: &[LabeledDocument],
    ) -> (Briq, f64) {
        Self::train_tuned_observed(cfg, train_docs, validation_docs, &Recorder::disabled())
    }

    /// [`Briq::train_tuned`] with the training spans and counters of
    /// [`Briq::train_observed`] recorded into `rec`. The validation grid
    /// search runs after the `train` span closes and is deliberately not
    /// traced per point — it aligns every validation document dozens of
    /// times and would dwarf the registry.
    pub fn train_tuned_observed(
        cfg: BriqConfig,
        train_docs: &[LabeledDocument],
        validation_docs: &[LabeledDocument],
        rec: &Recorder,
    ) -> (Briq, f64) {
        let mut briq = Self::train_observed(cfg, train_docs, validation_docs, rec);

        let alphas = [0.3, 0.5, 0.7];
        let epsilons = [0.05, 0.12, 0.2];
        let sigma_mins = [0.0, 0.1, 0.25];
        let mut grid: Vec<(f64, f64, f64)> = Vec::new();
        for &a in &alphas {
            for &e in &epsilons {
                for &m in &sigma_mins {
                    grid.push((a, e, m));
                }
            }
        }

        let f1_of = |briq: &Briq| {
            let mut report = crate::evaluate::EvalReport::default();
            for ld in validation_docs {
                report.add_document(&briq.align(&ld.document), &ld.gold);
            }
            report.overall().f1
        };

        let best = briq_ml::gridsearch::grid_search(&grid, |&(alpha, epsilon, sigma_min)| {
            let mut candidate = briq.clone();
            candidate.cfg.resolution.alpha = alpha;
            candidate.cfg.resolution.beta = 1.0 - alpha;
            candidate.cfg.resolution.epsilon = epsilon;
            candidate.cfg.resolution.sigma_min = sigma_min;
            f1_of(&candidate)
        });
        if let Some((i, f1)) = best {
            let (alpha, epsilon, sigma_min) = grid[i];
            briq.cfg.resolution.alpha = alpha;
            briq.cfg.resolution.beta = 1.0 - alpha;
            briq.cfg.resolution.epsilon = epsilon;
            briq.cfg.resolution.sigma_min = sigma_min;
            (briq, f1)
        } else {
            let f1 = f1_of(&briq);
            (briq, f1)
        }
    }

    fn train_tagger(cfg: &BriqConfig, docs: &[LabeledDocument]) -> MentionTagger {
        let mut examples = Vec::new();
        for ld in docs {
            let mentions = text_mentions(&ld.document);
            if mentions.is_empty() {
                continue;
            }
            let ctx = DocContext::build(&ld.document, &mentions, &cfg.context);
            for x in &mentions {
                let gold = ld
                    .gold
                    .iter()
                    .find(|g| x.quantity.start < g.mention_end && g.mention_start < x.quantity.end);
                let Some(g) = gold else { continue };
                examples.push(TaggerExample {
                    features: tagger_features(x, &ctx, &ld.document),
                    label: tagger_label(g.kind),
                });
            }
        }
        if examples.is_empty() {
            MentionTagger::lexical(cfg.tagger_threshold)
        } else {
            MentionTagger::train(&examples, cfg.tagger_forest, cfg.tagger_threshold)
        }
    }

    /// Is a trained classifier in force?
    pub fn is_trained(&self) -> bool {
        self.classifier.is_some()
    }

    /// Serialize the whole system (configuration, classifier forest,
    /// tagger forests) to JSON for later reuse.
    pub fn to_json(&self) -> briq_json::Result<String> {
        Ok(briq_json::to_string(self))
    }

    /// Restore a system saved with [`Briq::to_json`].
    pub fn from_json(s: &str) -> briq_json::Result<Briq> {
        briq_json::from_str(s)
    }

    /// Prior score of a feature vector (trained RF or heuristic). Both
    /// paths honour the ablation mask without copying the row, so scoring
    /// a pair performs no heap allocation.
    pub fn prior(&self, features: &[f64]) -> f64 {
        match &self.classifier {
            Some(c) => c.score(features),
            None => heuristic_prior_masked(features, &self.cfg.mask),
        }
    }

    /// Stage 1+2: extract mentions/targets and score every pair.
    pub fn score_document(&self, doc: &Document) -> ScoredDocument {
        self.score_document_budgeted(doc, &Budget::unlimited()).0
    }

    /// Budgeted stage 1+2 with per-table fault isolation: degenerate
    /// tables are skipped (with a diagnostic), and virtual-cell
    /// generation for each table is truncated at the budget instead of
    /// exploding quadratically. An unlimited budget is bit-identical to
    /// [`Briq::score_document`].
    pub fn score_document_budgeted(
        &self,
        doc: &Document,
        budget: &Budget,
    ) -> (ScoredDocument, Diagnostics) {
        let mut timings = StageTimings::default();
        self.score_document_staged(doc, budget, &mut timings)
    }

    /// [`Briq::score_document_budgeted`] with per-stage wall-clock
    /// accumulated into `timings` (extraction vs. classification) — the
    /// instrumented entry used by the batch engine. Identical results.
    pub(crate) fn score_document_staged(
        &self,
        doc: &Document,
        budget: &Budget,
        timings: &mut StageTimings,
    ) -> (ScoredDocument, Diagnostics) {
        let t0 = Instant::now();
        let (mentions, ctx, targets, diags) = self.extract_stage(doc, budget);
        timings.extract_s += t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let (scored, tags) = self.classify_stage(doc, &mentions, &ctx, &targets);
        timings.classify_s += t1.elapsed().as_secs_f64();
        timings.pairs_scored += (mentions.len() * targets.len()) as u64;

        (
            ScoredDocument {
                mentions,
                ctx,
                targets,
                scored,
                tags,
                budget: *budget,
            },
            diags,
        )
    }

    /// Stage 1: text mentions, document context, and (budget-capped)
    /// table mentions, with per-table degradation diagnostics.
    #[allow(clippy::type_complexity)]
    fn extract_stage(
        &self,
        doc: &Document,
        budget: &Budget,
    ) -> (Vec<TextMention>, DocContext, Vec<TableMention>, Diagnostics) {
        let mentions = text_mentions(doc);
        let (tables, targets, diags) = self.extract_table_side(doc, budget);
        let ctx = DocContext::build_with_tables(doc, &mentions, &self.cfg.context, tables);
        (mentions, ctx, targets, diags)
    }

    /// The table half of extraction: per-table contexts, alignment
    /// targets (single + capped virtual cells), and the degenerate-table
    /// / budget-truncation diagnostics they produce. Pure in
    /// `doc.tables` + config + budget, which is what lets the alignment
    /// store reuse it verbatim when only the paragraph text of a page
    /// changed (DESIGN.md §15).
    pub(crate) fn extract_table_side(
        &self,
        doc: &Document,
        budget: &Budget,
    ) -> (Vec<TableContext>, Vec<TableMention>, Diagnostics) {
        let mut diags = Diagnostics::default();
        let tables: Vec<TableContext> = doc.tables.iter().map(TableContext::build).collect();

        for (i, t) in doc.tables.iter().enumerate() {
            if t.data_rows().is_empty() || t.data_cols().is_empty() {
                diags.record(
                    Stage::Extraction,
                    format!("table {i}"),
                    &BriqError::Table(TableError::DegenerateTable { table: i }),
                    DegradedAction::Skipped,
                );
            }
        }

        let (targets, truncated_tables) = all_table_mentions_capped(
            &doc.tables,
            &self.cfg.virtual_cells,
            budget.max_virtual_cells_per_table,
        );
        for &t in &truncated_tables {
            diags.record(
                Stage::VirtualCells,
                format!("table {t}"),
                &BriqError::Table(TableError::VirtualCellBudgetExceeded {
                    table: t,
                    max_cells: budget.max_virtual_cells_per_table,
                }),
                DegradedAction::Truncated,
            );
        }
        (tables, targets, diags)
    }

    /// Stage 2: score every mention/target pair and tag each mention's
    /// likely aggregation kinds.
    ///
    /// The hot loop: invariants are hoisted into a [`PairFeaturizer`]
    /// built once per document, each mention's candidate rows are written
    /// into one reused flat feature matrix, and [`Briq::prior`] scores
    /// each row in place — no allocation per pair.
    #[allow(clippy::type_complexity)]
    fn classify_stage(
        &self,
        doc: &Document,
        mentions: &[TextMention],
        ctx: &DocContext,
        targets: &[TableMention],
    ) -> (Vec<Vec<(usize, f64)>>, Vec<Vec<AggregationKind>>) {
        let mut featurizer = PairFeaturizer::new(mentions, targets, ctx);
        let mut rows: Vec<f64> = Vec::new();
        let mut block_out: Vec<f64> = Vec::new();
        let scored: Vec<Vec<(usize, f64)>> = (0..mentions.len())
            .map(|mi| {
                featurizer.fill_mention_rows(mi, &mut rows);
                match &self.classifier {
                    // Trained: block-wise traversal (trees outer, rows
                    // inner) — bit-identical to `self.prior` per row.
                    Some(clf) => {
                        block_out.clear();
                        block_out.resize(targets.len(), 0.0);
                        clf.flat().score_block(&rows, FEATURE_COUNT, &mut block_out);
                        block_out.iter().copied().enumerate().collect()
                    }
                    None => rows
                        .chunks_exact(FEATURE_COUNT)
                        .enumerate()
                        .map(|(ti, row)| (ti, heuristic_prior_masked(row, &self.cfg.mask)))
                        .collect(),
                }
            })
            .collect();

        let tags: Vec<Vec<AggregationKind>> = mentions
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let mut tags = self.tagger.tags(&tagger_features(x, ctx, doc));
                if self.cfg.virtual_cells.extended {
                    tags.extend(crate::tagger::extended_lexical_tags(
                        &ctx.mentions[i].immediate_words,
                    ));
                }
                tags
            })
            .collect();
        (scored, tags)
    }

    /// Fused stages 2+3 for the alignment path: per mention, retrieve
    /// the viable candidate set through the per-document
    /// [`CandidateIndex`] (DESIGN.md §13), fill only those feature rows,
    /// score them through the batched [`crate::scoring::ScoringEngine`] (unique-row
    /// dedup + block-wise flat-forest traversal + exact bound-based
    /// pruning, DESIGN.md §10), and filter the partially scored
    /// candidate set. Byte-identical to exhaustive
    /// [`Briq::classify_stage`] + [`Briq::filter`] by the engine's
    /// exactness contract and the index's recall contract; setting
    /// `BRIQ_NO_PRUNE=1` force-disables the pruning layer (dedup stays —
    /// it is exact by construction) and `BRIQ_NO_INDEX=1` (or
    /// `use_index: false`) the retrieval index, which CI uses to
    /// cross-check both contracts on real output.
    ///
    /// [`Briq::score_document`] deliberately does NOT use this path: its
    /// consumers (baselines, training, evaluation) read the full score
    /// matrix, which pruning by design does not materialize.
    #[allow(clippy::too_many_arguments)]
    fn classify_filter_stage(
        &self,
        doc: &Document,
        mentions: &[TextMention],
        ctx: &DocContext,
        targets: &[TableMention],
        timings: &mut StageTimings,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> Result<(Vec<Vec<Candidate>>, FilterStats), CancelCause> {
        let mut pass = ClassifyPass::new(self, doc, mentions, ctx, targets, timings);
        let mut stats = FilterStats::default();
        let mut candidates = Vec::with_capacity(mentions.len());
        for mi in 0..mentions.len() {
            if let Some(cause) = cancel.cause() {
                return Err(cause);
            }
            let (cands, delta) = pass.run_mention(mi, timings, rec);
            // Per-mention deltas merged in mention order reproduce the
            // direct accumulation exactly: `FilterStats` is a pair of
            // count maps and merge is entrywise addition.
            stats.merge(&delta);
            candidates.push(cands);
        }
        pass.finish(timings, &stats, rec);
        Ok((candidates, stats))
    }

    /// Stage 3: adaptive filtering of a scored document.
    pub fn filter(&self, sd: &ScoredDocument) -> (Vec<Vec<Candidate>>, FilterStats) {
        let mut stats = FilterStats::default();
        let candidates = sd
            .mentions
            .iter()
            .zip(&sd.scored)
            .zip(&sd.tags)
            .map(|((x, scored), tags)| {
                filter_mention(x, scored, &sd.targets, tags, &self.cfg.filter, &mut stats)
            })
            .collect();
        (candidates, stats)
    }

    /// Full pipeline: align a document's text mentions to table mentions.
    pub fn align(&self, doc: &Document) -> Vec<Alignment> {
        self.align_detailed(doc).0
    }

    /// Like [`Briq::align`], also returning filtering statistics and the
    /// candidates (for Table VI style analyses).
    pub fn align_detailed(
        &self,
        doc: &Document,
    ) -> (Vec<Alignment>, FilterStats, Vec<Vec<Candidate>>) {
        let (alignments, stats, candidates, _) = self.align_budgeted(doc, &Budget::unlimited());
        (alignments, stats, candidates)
    }

    /// Panic-free alignment under the default [`Budget`]: every degraded
    /// table, mention, or stage is isolated and reported in the returned
    /// [`Diagnostics`] instead of hanging or aborting the document. On
    /// documents that stay within budget the alignments are bit-identical
    /// to [`Briq::align`].
    pub fn align_checked(&self, doc: &Document) -> (Vec<Alignment>, Diagnostics) {
        self.align_checked_with(doc, &Budget::default())
    }

    /// [`Briq::align_checked`] under a caller-chosen budget.
    pub fn align_checked_with(
        &self,
        doc: &Document,
        budget: &Budget,
    ) -> (Vec<Alignment>, Diagnostics) {
        let (alignments, _, _, diags) = self.align_budgeted(doc, budget);
        (alignments, diags)
    }

    /// [`Briq::align_checked_with`] plus per-stage wall-clock: how long
    /// this document spent in extraction, classification, filtering, and
    /// resolution. Same code path, so alignments and diagnostics are
    /// bit-identical; this is what the batch engine runs per document.
    pub fn align_timed(
        &self,
        doc: &Document,
        budget: &Budget,
    ) -> (Vec<Alignment>, Diagnostics, StageTimings) {
        self.align_observed(doc, budget, &Recorder::disabled())
    }

    /// [`Briq::align_timed`] with full observability: spans for every
    /// pipeline stage plus the DESIGN.md §11 counters and histograms are
    /// recorded into `rec`. The recorder only *observes* — alignments,
    /// diagnostics, and timings are bit-identical whether it is enabled,
    /// disabled, or absent (CI byte-compares a traced run to hold this).
    /// Pass [`Recorder::disabled`] to make this exactly
    /// [`Briq::align_timed`]: one branch per instrumentation point, no
    /// allocation.
    pub fn align_observed(
        &self,
        doc: &Document,
        budget: &Budget,
        rec: &Recorder,
    ) -> (Vec<Alignment>, Diagnostics, StageTimings) {
        self.align_cancellable(doc, budget, rec, &CancelToken::none())
    }

    /// [`Briq::align_observed`] under a cooperative [`CancelToken`]. The
    /// token is polled at every stage boundary and once per mention inside
    /// the classification and resolution loops; when it fires the request
    /// returns **no partial state** — an empty alignment set plus exactly
    /// one [`DegradedAction::Cancelled`] diagnostic naming the stage that
    /// observed the cancellation (degradation diagnostics recorded before
    /// the cut are kept: they describe work that really happened). With
    /// [`CancelToken::none`] this is bit-identical to
    /// [`Briq::align_observed`] — same code path, the checks never fire.
    pub fn align_cancellable(
        &self,
        doc: &Document,
        budget: &Budget,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> (Vec<Alignment>, Diagnostics, StageTimings) {
        let mut timings = StageTimings::default();
        let (alignments, _, _, diags) =
            self.align_budgeted_cancellable(doc, budget, &mut timings, rec, cancel);
        (alignments, diags, timings)
    }

    /// Align a whole batch of documents on a work-stealing worker pool —
    /// see [`crate::batch`] for the engine and its determinism contract.
    pub fn align_batch(&self, docs: &[Document], cfg: &BatchConfig) -> BatchReport {
        align_batch(self, docs, cfg)
    }

    /// [`Briq::align_batch`] against a shared [`crate::store::AlignmentStore`]
    /// — see [`crate::batch::align_batch_stored`].
    pub fn align_batch_stored(
        &self,
        docs: &[Document],
        cfg: &BatchConfig,
        store: &crate::store::AlignmentStore,
        keys: Option<&[u64]>,
    ) -> BatchReport {
        crate::batch::align_batch_stored(self, docs, cfg, store, keys)
    }

    /// Is the alignment store in force for this system right now? Both
    /// the `use_store` config knob AND the `BRIQ_NO_STORE=1` escape
    /// hatch must allow it — the hatch is the CI oracle that pins the
    /// incremental path to the full recompute (DESIGN.md §15).
    pub fn store_effective(&self) -> bool {
        self.cfg.use_store && std::env::var_os("BRIQ_NO_STORE").is_none_or(|v| v != "1")
    }

    /// [`Briq::align_observed`] through a versioned
    /// [`crate::store::AlignmentStore`]: serve unchanged documents from
    /// cache, re-align only the dirty mentions of partially changed
    /// ones, and fall back to the plain path (computing and caching
    /// everything) on a cold key. Bit-identical to
    /// [`Briq::align_observed`] in alignments and diagnostics for every
    /// cache state — the store only ever replays artifacts whose inputs
    /// fingerprint-match. With `use_store: false` or `BRIQ_NO_STORE=1`
    /// this *is* [`Briq::align_observed`] (the store is not consulted
    /// or populated).
    pub fn align_stored(
        &self,
        store: &crate::store::AlignmentStore,
        key: u64,
        doc: &Document,
        budget: &Budget,
        rec: &Recorder,
    ) -> (Vec<Alignment>, Diagnostics, StageTimings) {
        self.align_stored_cancellable(store, key, doc, budget, rec, &CancelToken::none())
    }

    /// [`Briq::align_stored`] under a cooperative [`CancelToken`].
    /// Cancelled runs return the usual no-partial-state shape and are
    /// never cached.
    pub fn align_stored_cancellable(
        &self,
        store: &crate::store::AlignmentStore,
        key: u64,
        doc: &Document,
        budget: &Budget,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> (Vec<Alignment>, Diagnostics, StageTimings) {
        let mut timings = StageTimings::default();
        if !self.store_effective() {
            let (alignments, _, _, diags) =
                self.align_budgeted_cancellable(doc, budget, &mut timings, rec, cancel);
            return (alignments, diags, timings);
        }
        let (alignments, _, _, diags) =
            store.align_cancellable(self, key, doc, budget, &mut timings, rec, cancel);
        (alignments, diags, timings)
    }

    /// [`Briq::align_stored`] also returning filter totals and kept
    /// candidates — the store-path twin of [`Briq::align_detailed`],
    /// used by the equivalence suite to compare every output surface.
    #[allow(clippy::type_complexity)]
    pub fn align_stored_detailed(
        &self,
        store: &crate::store::AlignmentStore,
        key: u64,
        doc: &Document,
        budget: &Budget,
    ) -> (
        Vec<Alignment>,
        FilterStats,
        Vec<Vec<Candidate>>,
        Diagnostics,
    ) {
        let mut timings = StageTimings::default();
        if !self.store_effective() {
            return self.align_budgeted_cancellable(
                doc,
                budget,
                &mut timings,
                &Recorder::disabled(),
                &CancelToken::none(),
            );
        }
        store.align_cancellable(
            self,
            key,
            doc,
            budget,
            &mut timings,
            &Recorder::disabled(),
            &CancelToken::none(),
        )
    }

    /// The one shared alignment code path. `align`/`align_detailed` call
    /// it with [`Budget::unlimited`] and discard the diagnostics;
    /// `align_checked` calls it with a finite budget — so budgeted and
    /// legacy alignment can never drift apart.
    fn align_budgeted(
        &self,
        doc: &Document,
        budget: &Budget,
    ) -> (
        Vec<Alignment>,
        FilterStats,
        Vec<Vec<Candidate>>,
        Diagnostics,
    ) {
        let mut timings = StageTimings::default();
        self.align_budgeted_cancellable(
            doc,
            budget,
            &mut timings,
            &Recorder::disabled(),
            &CancelToken::none(),
        )
    }

    /// [`Briq::align_budgeted`] with per-stage timing accumulation,
    /// observability recording, and cooperative cancellation.
    fn align_budgeted_cancellable(
        &self,
        doc: &Document,
        budget: &Budget,
        timings: &mut StageTimings,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> (
        Vec<Alignment>,
        FilterStats,
        Vec<Vec<Candidate>>,
        Diagnostics,
    ) {
        if let Some(cause) = cancel.cause() {
            return cancelled_result(Stage::Extraction, cause, Diagnostics::default(), rec);
        }
        let t_extract = Instant::now();
        let (mentions, ctx, targets, mut diags) = {
            let _g = span!(rec, names::SPAN_EXTRACT);
            self.extract_stage(doc, budget)
        };
        timings.extract_s += t_extract.elapsed().as_secs_f64();
        rec.count(names::MENTIONS, mentions.len() as u64);
        rec.count(names::TARGETS, targets.len() as u64);

        let (candidates, stats) = match self
            .classify_filter_stage(doc, &mentions, &ctx, &targets, timings, rec, cancel)
        {
            Ok(out) => out,
            Err(cause) => return cancelled_result(Stage::Classification, cause, diags, rec),
        };
        timings.pairs_scored += (mentions.len() * targets.len()) as u64;
        rec.count(names::PAIRS_SCORED, (mentions.len() * targets.len()) as u64);

        let alignments = match self.graph_resolve_stage(
            &mentions,
            &ctx,
            &targets,
            &candidates,
            &mut diags,
            budget,
            timings,
            rec,
            cancel,
        ) {
            Ok(a) => a,
            Err((stage, cause)) => return cancelled_result(stage, cause, diags, rec),
        };
        rec.count(
            names::BUDGET_EXHAUSTIONS,
            diags
                .items
                .iter()
                .filter(|d| d.action == DegradedAction::Truncated)
                .count() as u64,
        );
        (alignments, stats, candidates, diags)
    }

    /// Stages 4+5: budgeted graph construction and global resolution,
    /// then the final alignment mapping. Shared verbatim between
    /// [`Briq::align_budgeted_cancellable`] and the alignment store's
    /// incremental path (DESIGN.md §15) — resolution is a global
    /// algorithm (each decision updates the graph the next walk runs
    /// on), so any changed document re-runs this stage in full, from
    /// identical inputs, and can never drift from the full recompute.
    /// A fired cancel token surfaces as `Err((stage, cause))`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn graph_resolve_stage(
        &self,
        mentions: &[TextMention],
        ctx: &DocContext,
        targets: &[TableMention],
        candidates: &[Vec<Candidate>],
        diags: &mut Diagnostics,
        budget: &Budget,
        timings: &mut StageTimings,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> Result<Vec<Alignment>, (Stage, CancelCause)> {
        if let Some(cause) = cancel.cause() {
            return Err((Stage::GraphConstruction, cause));
        }
        let t1 = Instant::now();
        let positions: Vec<usize> = ctx.mentions.iter().map(|m| m.token_index).collect();
        let (ag, edges_truncated) = {
            let _g = span!(rec, names::SPAN_GRAPH);
            build_graph_budgeted(
                mentions,
                &positions,
                ctx.tokens.len(),
                targets,
                candidates,
                &self.cfg.graph,
                budget.max_graph_edges,
            )
        };
        if edges_truncated {
            diags.record(
                Stage::GraphConstruction,
                "document".into(),
                &BriqError::EdgeBudgetExceeded {
                    max_edges: budget.max_graph_edges,
                },
                DegradedAction::Truncated,
            );
        }
        let (resolved, events) = {
            let _g = span!(rec, names::SPAN_RESOLVE);
            resolve_observed(
                ag,
                candidates,
                &self.cfg.resolution,
                budget.max_rwr_iterations,
                rec,
                cancel,
            )
        };
        if let Some(&ResolutionEvent::Cancelled { cause }) = events.first() {
            return Err((Stage::Resolution, cause));
        }
        for ev in events {
            match ev {
                // Handled above: a cancelled resolution emits exactly one
                // event and no resolutions.
                ResolutionEvent::Cancelled { .. } => {}
                ResolutionEvent::NotConverged { mention, report } => diags.record(
                    Stage::Resolution,
                    format!("mention {mention}"),
                    &BriqError::RwrNotConverged {
                        mention,
                        iterations: report.iterations,
                        residual: report.residual,
                    },
                    DegradedAction::Truncated,
                ),
                ResolutionEvent::PriorFallback { mention, error } => diags.record(
                    Stage::Resolution,
                    format!("mention {mention}"),
                    &BriqError::Graph(error),
                    DegradedAction::Fallback,
                ),
            }
        }
        let alignments: Vec<Alignment> = resolved
            .into_iter()
            .map(|r| {
                let x = &mentions[r.mention];
                Alignment {
                    mention_start: x.quantity.start,
                    mention_end: x.quantity.end,
                    mention_raw: x.quantity.raw.clone(),
                    target: targets[r.target].clone(),
                    score: r.score,
                }
            })
            .collect();
        timings.resolve_s += t1.elapsed().as_secs_f64();
        rec.count(names::ALIGNMENTS, alignments.len() as u64);
        Ok(alignments)
    }
}

/// The fused classify+filter stage, factored into a per-mention unit so
/// the alignment store can re-run it for exactly the dirty mentions of a
/// changed page version (DESIGN.md §15) while [`Briq::classify_filter_stage`]
/// drives it over every mention. One instance per document: the
/// featurizer, scoring engine, retrieval index, and scratch buffers are
/// built once and shared across `run_mention` calls, exactly as the
/// former monolithic loop did.
pub(crate) struct ClassifyPass<'a> {
    briq: &'a Briq,
    doc: &'a Document,
    mentions: &'a [TextMention],
    ctx: &'a DocContext,
    targets: &'a [TableMention],
    featurizer: PairFeaturizer<'a>,
    engine: crate::scoring::ScoringEngine,
    scratch: crate::retrieval::RetrievalScratch,
    index: Option<CandidateIndex>,
    no_prune: bool,
}

impl<'a> ClassifyPass<'a> {
    /// Build the per-document machinery. The retrieval-index build is
    /// charged to the classify stage so throughput artifacts and the
    /// perf-trend gate see its cost, as before.
    pub(crate) fn new(
        briq: &'a Briq,
        doc: &'a Document,
        mentions: &'a [TextMention],
        ctx: &'a DocContext,
        targets: &'a [TableMention],
        timings: &mut StageTimings,
    ) -> ClassifyPass<'a> {
        let no_prune = std::env::var_os("BRIQ_NO_PRUNE").is_some_and(|v| v == "1");
        let no_index =
            !briq.cfg.use_index || std::env::var_os("BRIQ_NO_INDEX").is_some_and(|v| v == "1");
        let featurizer = PairFeaturizer::new(mentions, targets, ctx);
        // Pooled per-worker scratch (DESIGN.md §14): reset engine and
        // retrieval buffers from this thread's arena instead of cold
        // construction. An early cancellation return simply drops them;
        // the arena refills on the next document.
        let engine = crate::arena::take_engine();
        // Built once per document (tokenless: `retrieve` never consults
        // postings, so the hot path must not pay for them); retrieval
        // per mention is then allocation-free and bounded by the viable
        // candidate set.
        let t_build = Instant::now();
        let index = (!no_index)
            .then(|| CandidateIndex::build(targets, briq.cfg.filter.value_diff_threshold));
        if index.is_some() {
            timings.classify_s += t_build.elapsed().as_secs_f64();
        }
        let scratch = crate::arena::take_retrieval_scratch();
        ClassifyPass {
            briq,
            doc,
            mentions,
            ctx,
            targets,
            featurizer,
            engine,
            scratch,
            index,
            no_prune,
        }
    }

    /// Classify + filter one mention. Returns its kept candidates and a
    /// fresh [`FilterStats`] delta holding exactly this mention's
    /// contribution to the document totals (filter counts plus
    /// retrieval-dropped counts) — pure per mention, so the store can
    /// cache and replay it.
    pub(crate) fn run_mention(
        &mut self,
        mi: usize,
        timings: &mut StageTimings,
        rec: &Recorder,
    ) -> (Vec<Candidate>, FilterStats) {
        let x = &self.mentions[mi];
        let mut delta = FilterStats::default();
        let t0 = Instant::now();
        let tags = {
            let _g = span!(rec, names::SPAN_CLASSIFY, mention = mi);
            let mut tags = self
                .briq
                .tagger
                .tags(&tagger_features(x, self.ctx, self.doc));
            if self.briq.cfg.virtual_cells.extended {
                tags.extend(crate::tagger::extended_lexical_tags(
                    &self.ctx.mentions[mi].immediate_words,
                ));
            }
            match &self.index {
                Some(idx) => {
                    idx.retrieve(x.quantity.value, x.quantity.unit, &tags, &mut self.scratch);
                    self.engine.fill_rows_selected(
                        &mut self.featurizer,
                        mi,
                        &self.scratch.near,
                        &self.scratch.far,
                    );
                    match &self.briq.classifier {
                        Some(clf) => self.engine.score_trained_selected(
                            x,
                            self.targets,
                            &tags,
                            clf,
                            &self.briq.cfg.filter,
                            !self.no_prune,
                        ),
                        None => self.engine.score_heuristic_selected(&self.briq.cfg.mask),
                    }
                    // Keep Table-VI totals identical to the oracle's.
                    idx.record_dropped(&self.scratch, &mut delta);
                    let retrieved = self.scratch.retrieved() as u64;
                    let skipped = self.targets.len() as u64 - retrieved;
                    timings.candidates_retrieved += retrieved;
                    timings.pairs_skipped_retrieval += skipped;
                    rec.count(names::RETRIEVAL_CANDIDATES, retrieved);
                    rec.count(names::RETRIEVAL_PAIRS_DROPPED, skipped);
                    rec.observe(names::RETRIEVAL_CANDIDATES_PER_MENTION, retrieved as f64);
                }
                None => {
                    self.engine.fill_rows(&mut self.featurizer, mi);
                    match &self.briq.classifier {
                        Some(clf) => self.engine.score_trained(
                            x,
                            self.targets,
                            &tags,
                            clf,
                            &self.briq.cfg.filter,
                            !self.no_prune,
                        ),
                        None => self.engine.score_heuristic(&self.briq.cfg.mask),
                    }
                }
            }
            tags
        };
        timings.classify_s += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let cands;
        {
            let _g = span!(rec, names::SPAN_FILTER, mention = mi);
            cands = filter_mention_pruned(
                x,
                self.engine.computed(),
                self.engine.pruned_targets(),
                self.targets,
                &tags,
                &self.briq.cfg.filter,
                &mut delta,
            );
        }
        timings.filter_s += t1.elapsed().as_secs_f64();
        (cands, delta)
    }

    /// Flush engine totals and recycle the scratch buffers. `stats` is
    /// the document's final (merged) filter totals, recorded exactly
    /// where the former monolithic loop recorded them.
    pub(crate) fn finish(self, timings: &mut StageTimings, stats: &FilterStats, rec: &Recorder) {
        timings.rows_deduped += self.engine.rows_deduped();
        timings.pairs_pruned += self.engine.pairs_pruned();
        self.engine.record_into(rec);
        stats.record_into(rec);
        crate::arena::put_engine(self.engine);
        crate::arena::put_retrieval_scratch(self.scratch);
        rec.observe(names::ARENA_BYTES_PEAK, crate::arena::bytes_peak() as f64);
    }
}

/// Shared early-return shape for a cancelled request: no alignments, no
/// candidates, previously recorded diagnostics kept, plus exactly one
/// [`DegradedAction::Cancelled`] entry naming the stage that observed the
/// token. Discarding the stage outputs wholesale is what "no partial
/// state" means — a cancelled response can never leak a half-resolved
/// alignment set.
pub(crate) fn cancelled_result(
    stage: Stage,
    cause: CancelCause,
    mut diags: Diagnostics,
    rec: &Recorder,
) -> (
    Vec<Alignment>,
    FilterStats,
    Vec<Vec<Candidate>>,
    Diagnostics,
) {
    diags.record(
        stage,
        "document".into(),
        &BriqError::Cancelled { stage, cause },
        DegradedAction::Cancelled,
    );
    rec.count(names::CANCELLATIONS, 1);
    (Vec::new(), FilterStats::default(), Vec::new(), diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_table::Table;

    fn health_doc() -> Document {
        Document::new(
            0,
            "A total of 123 patients reported side effects; depression was \
             the most common, reported by 38 patients, and eye disorders \
             the least common, reported by 5 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec![
                        "side effects".into(),
                        "male".into(),
                        "female".into(),
                        "total".into(),
                    ],
                    vec!["Rash".into(), "15".into(), "20".into(), "35".into()],
                    vec!["Depression".into(), "13".into(), "25".into(), "38".into()],
                    vec!["Hypertension".into(), "19".into(), "15".into(), "34".into()],
                    vec!["Nausea".into(), "5".into(), "6".into(), "11".into()],
                    vec!["Eye Disorders".into(), "2".into(), "3".into(), "5".into()],
                ],
            )],
        )
    }

    #[test]
    fn untrained_pipeline_aligns_fig1a() {
        let briq = Briq::untrained(BriqConfig::default());
        let doc = health_doc();
        let alignments = briq.align(&doc);
        assert!(!alignments.is_empty());
        // "38" should go to the Depression row's total cell (2,3).
        let a38 = alignments
            .iter()
            .find(|a| a.mention_raw.starts_with("38"))
            .expect("38 aligned");
        assert_eq!(a38.target.cells, vec![(2, 3)]);
        // "total of 123" should map to the sum of the total column.
        let a123 = alignments.iter().find(|a| a.mention_raw.starts_with("123"));
        if let Some(a) = a123 {
            assert!(a.target.is_aggregate(), "{a:?}");
            assert_eq!(a.target.value, 123.0);
        }
    }

    #[test]
    fn score_document_shapes() {
        let briq = Briq::untrained(BriqConfig::default());
        let sd = briq.score_document(&health_doc());
        assert_eq!(sd.mentions.len(), sd.scored.len());
        assert_eq!(sd.mentions.len(), sd.tags.len());
        assert!(!sd.targets.is_empty());
        for row in &sd.scored {
            assert_eq!(row.len(), sd.targets.len());
            for &(_, s) in row {
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn filtering_reduces_candidates() {
        let briq = Briq::untrained(BriqConfig::default());
        let sd = briq.score_document(&health_doc());
        let (candidates, stats) = briq.filter(&sd);
        let total_pairs: usize = sd.scored.iter().map(Vec::len).sum();
        let kept: usize = candidates.iter().map(Vec::len).sum();
        assert!(kept < total_pairs / 2, "kept {kept} of {total_pairs}");
        assert!(stats.overall_selectivity() < 0.5);
    }

    #[test]
    fn empty_document_no_alignments() {
        let briq = Briq::untrained(BriqConfig::default());
        let doc = Document::new(0, "no numbers here at all", vec![]);
        assert!(briq.align(&doc).is_empty());
    }

    #[test]
    fn align_checked_matches_align_on_clean_input() {
        let briq = Briq::untrained(BriqConfig::default());
        let doc = health_doc();
        let plain = briq.align(&doc);
        let (checked, diags) = briq.align_checked(&doc);
        assert_eq!(plain, checked);
        assert!(diags.is_clean(), "{diags:?}");
    }

    #[test]
    fn tight_budgets_degrade_with_diagnostics_not_panics() {
        let briq = Briq::untrained(BriqConfig::default());
        let doc = health_doc();
        let budget = crate::error::Budget {
            max_regex_steps: 1,
            max_virtual_cells_per_table: 3,
            max_graph_edges: 2,
            max_rwr_iterations: 1,
        };
        let (alignments, diags) = briq.align_checked_with(&doc, &budget);
        assert!(!diags.is_clean());
        let stages: Vec<Stage> = diags.items.iter().map(|d| d.stage).collect();
        assert!(stages.contains(&Stage::VirtualCells), "{diags:?}");
        assert!(stages.contains(&Stage::GraphConstruction), "{diags:?}");
        // Budget enforcement: no more virtual-cell targets than allowed.
        let (sd, _) = briq.score_document_budgeted(&doc, &budget);
        let virtuals = sd
            .targets
            .iter()
            .filter(|t| t.kind != briq_table::TableMentionKind::SingleCell)
            .count();
        assert!(virtuals <= budget.max_virtual_cells_per_table);
        // Degraded mode still returns (possibly empty) alignments.
        let _ = alignments;
    }

    #[test]
    fn degenerate_tables_are_skipped_with_diagnostics() {
        let briq = Briq::untrained(BriqConfig::default());
        let doc = Document::new(
            0,
            "There were 38 patients in total.",
            vec![Table::from_grid("", Vec::new())],
        );
        let (_, diags) = briq.align_checked(&doc);
        assert!(
            diags.items.iter().any(|d| d.stage == Stage::Extraction
                && d.action == crate::error::DegradedAction::Skipped),
            "{diags:?}"
        );
    }

    #[test]
    fn heuristic_prior_ranges() {
        let perfect = vec![1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let terrible = vec![0.0, 0.0, 0.0, 0.0, 0.0, 2.0, 2.0, 3.0, 6.0, 4.0, 0.0, 3.0];
        assert!(heuristic_prior(&perfect) > 0.9);
        assert!(heuristic_prior(&terrible) < 0.2);
        assert!(heuristic_prior(&perfect) <= 1.0);
        assert!(heuristic_prior(&terrible) >= 0.0);
    }

    #[test]
    fn train_tuned_selects_valid_parameters() {
        let doc = health_doc();
        let s38 = doc.text.find("38").unwrap();
        let gold = vec![crate::mention::GoldAlignment {
            mention_start: s38,
            mention_end: s38 + 2,
            table: 0,
            kind: briq_table::TableMentionKind::SingleCell,
            cells: vec![(2, 3)],
        }];
        let ld = LabeledDocument {
            document: doc,
            gold,
        };
        let mut cfg = BriqConfig::default();
        cfg.forest.n_trees = 16;
        cfg.tagger_forest.n_trees = 8;
        let (briq, f1) =
            Briq::train_tuned(cfg, std::slice::from_ref(&ld), std::slice::from_ref(&ld));
        assert!(briq.cfg.resolution.alpha + briq.cfg.resolution.beta > 0.99);
        assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn trained_pipeline_runs() {
        // Minimal training corpus from the health example itself.
        let doc = health_doc();
        let s38 = doc.text.find("38").unwrap();
        let gold = vec![crate::mention::GoldAlignment {
            mention_start: s38,
            mention_end: s38 + 2,
            table: 0,
            kind: briq_table::TableMentionKind::SingleCell,
            cells: vec![(2, 3)],
        }];
        let ld = LabeledDocument {
            document: doc.clone(),
            gold,
        };
        let briq = Briq::train(
            BriqConfig::default(),
            std::slice::from_ref(&ld),
            std::slice::from_ref(&ld),
        );
        assert!(briq.is_trained());
        let alignments = briq.align(&doc);
        // The trained system still produces alignments on its train doc.
        assert!(!alignments.is_empty());
    }
}

// Hand-written (not `json_struct!`) so `use_index` can default to `true`
// on model files serialized before the field existed.
impl briq_json::ToJson for BriqConfig {
    fn to_json(&self) -> briq_json::Value {
        briq_json::Value::Object(vec![
            ("context".to_string(), self.context.to_json()),
            ("virtual_cells".to_string(), self.virtual_cells.to_json()),
            ("filter".to_string(), self.filter.to_json()),
            ("graph".to_string(), self.graph.to_json()),
            ("resolution".to_string(), self.resolution.to_json()),
            ("forest".to_string(), self.forest.to_json()),
            ("tagger_forest".to_string(), self.tagger_forest.to_json()),
            (
                "tagger_threshold".to_string(),
                self.tagger_threshold.to_json(),
            ),
            ("mask".to_string(), self.mask.to_json()),
            ("use_index".to_string(), self.use_index.to_json()),
            ("use_store".to_string(), self.use_store.to_json()),
        ])
    }
}
impl briq_json::FromJson for BriqConfig {
    fn from_json(v: &briq_json::Value) -> briq_json::Result<Self> {
        let obj = v
            .as_object()
            .ok_or_else(|| briq_json::JsonError::new("expected BriqConfig object"))?;
        Ok(BriqConfig {
            context: briq_json::field(obj, "context")?,
            virtual_cells: briq_json::field(obj, "virtual_cells")?,
            filter: briq_json::field(obj, "filter")?,
            graph: briq_json::field(obj, "graph")?,
            resolution: briq_json::field(obj, "resolution")?,
            forest: briq_json::field(obj, "forest")?,
            tagger_forest: briq_json::field(obj, "tagger_forest")?,
            tagger_threshold: briq_json::field(obj, "tagger_threshold")?,
            mask: briq_json::field(obj, "mask")?,
            use_index: briq_json::field_or(obj, "use_index", true)?,
            use_store: briq_json::field_or(obj, "use_store", true)?,
        })
    }
}
briq_json::json_struct!(Briq {
    cfg,
    classifier,
    tagger
});
