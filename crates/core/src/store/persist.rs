//! Durable on-disk backing for the [`AlignmentStore`](super::AlignmentStore)
//! (DESIGN.md §16): an append-only novelty log plus periodically compacted
//! snapshots, so warm starts survive process restarts.
//!
//! The layer is std-only and deliberately small:
//!
//! - **Novelty log** (`novelty.log`) — every entry the store caches is
//!   appended as one length-prefixed frame whose payload (store key +
//!   full [`DocEntry`](super::AlignmentStore) encoding) is checksummed
//!   with the same FNV-1a the content fingerprints use. Appends are the
//!   only write on the hot path.
//! - **Snapshot** (`snapshot-<gen>.briq`) — a compaction of the resident
//!   entries into one file, written to a temp file, fsynced, and renamed
//!   into place; the log is then reset. Snapshots happen when the log
//!   outgrows its compaction threshold and on graceful drain/exit.
//! - **Manifest** (`MANIFEST`) — a tiny text file naming the format
//!   version, the model/config fingerprint, and the current snapshot
//!   generation. Any mismatch (foreign file, version bump, retrained
//!   model) marks the directory incompatible: its store files are
//!   rebuilt from scratch rather than trusted.
//! - **Recovery** — replay snapshot then log, last write per key wins.
//!   A torn tail frame (short header, short payload, or checksum
//!   mismatch) truncates the file at the last valid frame boundary
//!   instead of failing: everything before the tear is served warm,
//!   everything after is recomputed cold.
//!
//! The codec is a bespoke binary encoding, not JSON: the store's
//! contract is *bit* identity, and `briq_json` degrades non-finite
//! floats to `null`. Every `f64` round-trips through `to_bits()`, every
//! string is length-prefixed UTF-8, every enum is a fixed `u8` tag, and
//! every map/set is a `BTree*` whose iteration order is deterministic —
//! so encode∘decode is the identity on every entry the pipeline can
//! produce, including NaN/∞ values from the non-finite chaos family.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use briq_table::{Orientation, TableMention, TableMentionKind};
use briq_text::cues::{AggregationKind, ApproxIndicator};
use briq_text::quantity::QuantityMention;
use briq_text::token::{Token, TokenKind};
use briq_text::units::{Currency, Measure, Unit};

use super::{DocEntry, Fingerprint, MentionArtifact};
use crate::context::{DocContext, MentionContext, TableContext};
use crate::error::{DegradedAction, Diagnostic, Diagnostics, Stage};
use crate::filtering::{Candidate, FilterStats};
use crate::mention::{Alignment, TextMention};

/// On-disk format version. Bumped on any incompatible codec or layout
/// change; a manifest naming a different version marks the whole
/// directory incompatible and it is rebuilt from scratch.
pub const FORMAT_VERSION: u32 = 1;

/// File name of the append-only novelty log inside the store directory.
pub const LOG_FILE: &str = "novelty.log";

/// File name of the manifest inside the store directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// File name of the compacted snapshot for generation `gen` (`gen >= 1`).
pub fn snapshot_file(gen: u64) -> String {
    format!("snapshot-{gen}.briq")
}

/// Magic bytes opening every snapshot/log file.
const MAGIC: [u8; 4] = *b"BQST";

/// First line of the manifest.
const MANIFEST_MAGIC: &str = "briq-store";

/// Fixed binary file header: magic + format version + model fingerprint
/// + snapshot generation.
const HEADER_LEN: u64 = 4 + 4 + 8 + 8;

/// Per-frame header: payload length (u32) + FNV-1a checksum (u64).
const FRAME_HEADER_LEN: usize = 4 + 8;

/// Sanity cap on one frame's payload; anything larger is treated as a
/// corrupt length field (= torn tail).
const MAX_FRAME_BYTES: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// Append-only byte encoder. All integers are little-endian; lengths are
/// `u32`; `usize` values (byte offsets, indices) widen to `u64`; floats
/// are stored as their IEEE-754 bit patterns.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn len(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize);
        self.u32(n as u32);
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Decode failure: the payload is structurally invalid (short read, bad
/// enum tag, non-UTF-8 string, trailing garbage). Recovery treats it
/// like a checksum mismatch — the frame and everything after it are
/// dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(&'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over one frame payload.
struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Dec<'a> {
        Dec { b, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError("overflow"))?;
        if end > self.b.len() {
            return Err(DecodeError("short payload"));
        }
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError("usize overflow"))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A container/string length. Bounded by the remaining payload (every
    /// element occupies at least one byte), so a corrupt length cannot
    /// trigger a huge allocation.
    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.b.len() - self.pos {
            return Err(DecodeError("length exceeds payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        let s = std::str::from_utf8(self.take(n)?).map_err(|_| DecodeError("invalid utf-8"))?;
        Ok(s.to_string())
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.b.len() {
            Ok(())
        } else {
            Err(DecodeError("trailing garbage"))
        }
    }
}

// --- leaf encoders/decoders -------------------------------------------------

fn enc_string_vec(e: &mut Enc, v: &[String]) {
    e.len(v.len());
    for s in v {
        e.str(s);
    }
}

fn dec_string_vec(d: &mut Dec<'_>) -> Result<Vec<String>, DecodeError> {
    let n = d.len()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(d.str()?);
    }
    Ok(v)
}

fn enc_string_set(e: &mut Enc, v: &std::collections::BTreeSet<String>) {
    e.len(v.len());
    for s in v {
        e.str(s);
    }
}

fn dec_string_set(d: &mut Dec<'_>) -> Result<std::collections::BTreeSet<String>, DecodeError> {
    let n = d.len()?;
    let mut v = std::collections::BTreeSet::new();
    for _ in 0..n {
        v.insert(d.str()?);
    }
    Ok(v)
}

fn enc_set_vec(e: &mut Enc, v: &[std::collections::BTreeSet<String>]) {
    e.len(v.len());
    for s in v {
        enc_string_set(e, s);
    }
}

fn dec_set_vec(d: &mut Dec<'_>) -> Result<Vec<std::collections::BTreeSet<String>>, DecodeError> {
    let n = d.len()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(dec_string_set(d)?);
    }
    Ok(v)
}

fn enc_weight_map(e: &mut Enc, m: &BTreeMap<String, f64>) {
    e.len(m.len());
    for (k, &v) in m {
        e.str(k);
        e.f64(v);
    }
}

fn dec_weight_map(d: &mut Dec<'_>) -> Result<BTreeMap<String, f64>, DecodeError> {
    let n = d.len()?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let k = d.str()?;
        let v = d.f64()?;
        m.insert(k, v);
    }
    Ok(m)
}

fn enc_count_map(e: &mut Enc, m: &BTreeMap<String, usize>) {
    e.len(m.len());
    for (k, &v) in m {
        e.str(k);
        e.usize(v);
    }
}

fn dec_count_map(d: &mut Dec<'_>) -> Result<BTreeMap<String, usize>, DecodeError> {
    let n = d.len()?;
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let k = d.str()?;
        let v = d.usize()?;
        m.insert(k, v);
    }
    Ok(m)
}

fn enc_token_kind(e: &mut Enc, k: TokenKind) {
    e.u8(match k {
        TokenKind::Word => 0,
        TokenKind::Number => 1,
        TokenKind::Alphanumeric => 2,
        TokenKind::Punct => 3,
        TokenKind::Symbol => 4,
    });
}

fn dec_token_kind(d: &mut Dec<'_>) -> Result<TokenKind, DecodeError> {
    Ok(match d.u8()? {
        0 => TokenKind::Word,
        1 => TokenKind::Number,
        2 => TokenKind::Alphanumeric,
        3 => TokenKind::Punct,
        4 => TokenKind::Symbol,
        _ => return Err(DecodeError("bad token kind")),
    })
}

fn enc_unit(e: &mut Enc, u: Unit) {
    match u {
        Unit::Currency(c) => {
            e.u8(0);
            e.u8(match c {
                Currency::Usd => 0,
                Currency::Eur => 1,
                Currency::Gbp => 2,
                Currency::Cad => 3,
                Currency::Inr => 4,
                Currency::Jpy => 5,
                Currency::Other => 6,
            });
        }
        Unit::Percent => e.u8(1),
        Unit::BasisPoints => e.u8(2),
        Unit::Measure(m) => {
            e.u8(3);
            e.u8(match m {
                Measure::Mpge => 0,
                Measure::GramsPerKm => 1,
                Measure::KWh => 2,
                Measure::Mg => 3,
                Measure::Km => 4,
                Measure::Count => 5,
            });
        }
        Unit::None => e.u8(4),
    }
}

fn dec_unit(d: &mut Dec<'_>) -> Result<Unit, DecodeError> {
    Ok(match d.u8()? {
        0 => Unit::Currency(match d.u8()? {
            0 => Currency::Usd,
            1 => Currency::Eur,
            2 => Currency::Gbp,
            3 => Currency::Cad,
            4 => Currency::Inr,
            5 => Currency::Jpy,
            6 => Currency::Other,
            _ => return Err(DecodeError("bad currency")),
        }),
        1 => Unit::Percent,
        2 => Unit::BasisPoints,
        3 => Unit::Measure(match d.u8()? {
            0 => Measure::Mpge,
            1 => Measure::GramsPerKm,
            2 => Measure::KWh,
            3 => Measure::Mg,
            4 => Measure::Km,
            5 => Measure::Count,
            _ => return Err(DecodeError("bad measure")),
        }),
        4 => Unit::None,
        _ => return Err(DecodeError("bad unit")),
    })
}

fn enc_approx(e: &mut Enc, a: ApproxIndicator) {
    e.u8(match a {
        ApproxIndicator::Exact => 0,
        ApproxIndicator::Approximate => 1,
        ApproxIndicator::UpperBound => 2,
        ApproxIndicator::LowerBound => 3,
        ApproxIndicator::None => 4,
    });
}

fn dec_approx(d: &mut Dec<'_>) -> Result<ApproxIndicator, DecodeError> {
    Ok(match d.u8()? {
        0 => ApproxIndicator::Exact,
        1 => ApproxIndicator::Approximate,
        2 => ApproxIndicator::UpperBound,
        3 => ApproxIndicator::LowerBound,
        4 => ApproxIndicator::None,
        _ => return Err(DecodeError("bad approx indicator")),
    })
}

fn agg_tag(a: AggregationKind) -> u8 {
    match a {
        AggregationKind::Sum => 0,
        AggregationKind::Difference => 1,
        AggregationKind::Percentage => 2,
        AggregationKind::ChangeRatio => 3,
        AggregationKind::Average => 4,
        AggregationKind::Max => 5,
        AggregationKind::Min => 6,
    }
}

fn dec_agg(d: &mut Dec<'_>) -> Result<AggregationKind, DecodeError> {
    Ok(match d.u8()? {
        0 => AggregationKind::Sum,
        1 => AggregationKind::Difference,
        2 => AggregationKind::Percentage,
        3 => AggregationKind::ChangeRatio,
        4 => AggregationKind::Average,
        5 => AggregationKind::Max,
        6 => AggregationKind::Min,
        _ => return Err(DecodeError("bad aggregation kind")),
    })
}

fn enc_text_mention(e: &mut Enc, m: &TextMention) {
    e.usize(m.id);
    let q: &QuantityMention = &m.quantity;
    e.str(&q.raw);
    e.f64(q.value);
    e.f64(q.unnormalized);
    enc_unit(e, q.unit);
    e.u8(q.precision);
    enc_approx(e, q.approx);
    e.usize(q.start);
    e.usize(q.end);
}

fn dec_text_mention(d: &mut Dec<'_>) -> Result<TextMention, DecodeError> {
    let id = d.usize()?;
    let raw = d.str()?;
    let value = d.f64()?;
    let unnormalized = d.f64()?;
    let unit = dec_unit(d)?;
    let precision = d.u8()?;
    let approx = dec_approx(d)?;
    let start = d.usize()?;
    let end = d.usize()?;
    Ok(TextMention {
        id,
        quantity: QuantityMention {
            raw,
            value,
            unnormalized,
            unit,
            precision,
            approx,
            start,
            end,
        },
    })
}

fn enc_token(e: &mut Enc, t: &Token) {
    e.str(&t.text);
    e.usize(t.start);
    e.usize(t.end);
    enc_token_kind(e, t.kind);
}

fn dec_token(d: &mut Dec<'_>) -> Result<Token, DecodeError> {
    Ok(Token {
        text: d.str()?,
        start: d.usize()?,
        end: d.usize()?,
        kind: dec_token_kind(d)?,
    })
}

fn enc_mention_ctx(e: &mut Enc, m: &MentionContext) {
    enc_weight_map(e, &m.local_weights);
    enc_string_set(e, &m.sentence_phrases);
    enc_string_vec(e, &m.immediate_words);
    enc_string_vec(e, &m.sentence_words);
    match m.inferred_aggregation {
        None => e.u8(0),
        Some(a) => {
            e.u8(1);
            e.u8(agg_tag(a));
        }
    }
    e.usize(m.token_index);
}

fn dec_mention_ctx(d: &mut Dec<'_>) -> Result<MentionContext, DecodeError> {
    Ok(MentionContext {
        local_weights: dec_weight_map(d)?,
        sentence_phrases: dec_string_set(d)?,
        immediate_words: dec_string_vec(d)?,
        sentence_words: dec_string_vec(d)?,
        inferred_aggregation: match d.u8()? {
            0 => None,
            1 => Some(dec_agg(d)?),
            _ => return Err(DecodeError("bad option tag")),
        },
        token_index: d.usize()?,
    })
}

fn enc_table_ctx(e: &mut Enc, t: &TableContext) {
    enc_set_vec(e, &t.row_words);
    enc_set_vec(e, &t.col_words);
    enc_string_set(e, &t.table_words);
    enc_set_vec(e, &t.row_phrases);
    enc_set_vec(e, &t.col_phrases);
    enc_string_set(e, &t.table_phrases);
}

fn dec_table_ctx(d: &mut Dec<'_>) -> Result<TableContext, DecodeError> {
    Ok(TableContext {
        row_words: dec_set_vec(d)?,
        col_words: dec_set_vec(d)?,
        table_words: dec_string_set(d)?,
        row_phrases: dec_set_vec(d)?,
        col_phrases: dec_set_vec(d)?,
        table_phrases: dec_string_set(d)?,
    })
}

fn enc_doc_ctx(e: &mut Enc, c: &DocContext) {
    e.len(c.tokens.len());
    for t in &c.tokens {
        enc_token(e, t);
    }
    enc_string_set(e, &c.paragraph_words);
    enc_string_vec(e, &c.paragraph_word_list);
    enc_string_set(e, &c.paragraph_phrases);
    e.len(c.tables.len());
    for t in &c.tables {
        enc_table_ctx(e, t);
    }
    e.len(c.mentions.len());
    for m in &c.mentions {
        enc_mention_ctx(e, m);
    }
}

fn dec_doc_ctx(d: &mut Dec<'_>) -> Result<DocContext, DecodeError> {
    let n = d.len()?;
    let mut tokens = Vec::with_capacity(n);
    for _ in 0..n {
        tokens.push(dec_token(d)?);
    }
    let paragraph_words = dec_string_set(d)?;
    let paragraph_word_list = dec_string_vec(d)?;
    let paragraph_phrases = dec_string_set(d)?;
    let n = d.len()?;
    let mut tables = Vec::with_capacity(n);
    for _ in 0..n {
        tables.push(dec_table_ctx(d)?);
    }
    let n = d.len()?;
    let mut mentions = Vec::with_capacity(n);
    for _ in 0..n {
        mentions.push(dec_mention_ctx(d)?);
    }
    Ok(DocContext {
        tokens,
        paragraph_words,
        paragraph_word_list,
        paragraph_phrases,
        tables,
        mentions,
    })
}

fn enc_table_mention(e: &mut Enc, t: &TableMention) {
    e.usize(t.table);
    match t.kind {
        TableMentionKind::SingleCell => e.u8(0),
        TableMentionKind::Aggregate(a) => {
            e.u8(1);
            e.u8(agg_tag(a));
        }
    }
    e.len(t.cells.len());
    for &(r, c) in &t.cells {
        e.usize(r);
        e.usize(c);
    }
    e.f64(t.value);
    e.f64(t.unnormalized);
    e.str(&t.raw);
    enc_unit(e, t.unit);
    e.u8(t.precision);
    match t.orientation {
        None => e.u8(0),
        Some(Orientation::Row(i)) => {
            e.u8(1);
            e.usize(i);
        }
        Some(Orientation::Column(i)) => {
            e.u8(2);
            e.usize(i);
        }
    }
}

fn dec_table_mention(d: &mut Dec<'_>) -> Result<TableMention, DecodeError> {
    let table = d.usize()?;
    let kind = match d.u8()? {
        0 => TableMentionKind::SingleCell,
        1 => TableMentionKind::Aggregate(dec_agg(d)?),
        _ => return Err(DecodeError("bad table mention kind")),
    };
    let n = d.len()?;
    let mut cells = Vec::with_capacity(n);
    for _ in 0..n {
        let r = d.usize()?;
        let c = d.usize()?;
        cells.push((r, c));
    }
    Ok(TableMention {
        table,
        kind,
        cells,
        value: d.f64()?,
        unnormalized: d.f64()?,
        raw: d.str()?,
        unit: dec_unit(d)?,
        precision: d.u8()?,
        orientation: match d.u8()? {
            0 => None,
            1 => Some(Orientation::Row(d.usize()?)),
            2 => Some(Orientation::Column(d.usize()?)),
            _ => return Err(DecodeError("bad orientation")),
        },
    })
}

fn enc_candidates(e: &mut Enc, v: &[Candidate]) {
    e.len(v.len());
    for c in v {
        e.usize(c.target);
        e.f64(c.score);
    }
}

fn dec_candidates(d: &mut Dec<'_>) -> Result<Vec<Candidate>, DecodeError> {
    let n = d.len()?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        let target = d.usize()?;
        let score = d.f64()?;
        v.push(Candidate { target, score });
    }
    Ok(v)
}

fn enc_filter_stats(e: &mut Enc, s: &FilterStats) {
    enc_count_map(e, &s.total);
    enc_count_map(e, &s.kept);
}

fn dec_filter_stats(d: &mut Dec<'_>) -> Result<FilterStats, DecodeError> {
    Ok(FilterStats {
        total: dec_count_map(d)?,
        kept: dec_count_map(d)?,
    })
}

fn enc_alignment(e: &mut Enc, a: &Alignment) {
    e.usize(a.mention_start);
    e.usize(a.mention_end);
    e.str(&a.mention_raw);
    enc_table_mention(e, &a.target);
    e.f64(a.score);
}

fn dec_alignment(d: &mut Dec<'_>) -> Result<Alignment, DecodeError> {
    Ok(Alignment {
        mention_start: d.usize()?,
        mention_end: d.usize()?,
        mention_raw: d.str()?,
        target: dec_table_mention(d)?,
        score: d.f64()?,
    })
}

fn enc_diagnostics(e: &mut Enc, ds: &Diagnostics) {
    e.len(ds.items.len());
    for item in &ds.items {
        e.u8(match item.stage {
            Stage::Extraction => 0,
            Stage::VirtualCells => 1,
            Stage::Classification => 2,
            Stage::GraphConstruction => 3,
            Stage::Resolution => 4,
            Stage::Batch => 5,
            Stage::Admission => 6,
        });
        e.str(&item.scope);
        e.str(&item.error);
        e.u8(match item.action {
            DegradedAction::Skipped => 0,
            DegradedAction::Truncated => 1,
            DegradedAction::Fallback => 2,
            DegradedAction::Cancelled => 3,
        });
    }
}

fn dec_diagnostics(d: &mut Dec<'_>) -> Result<Diagnostics, DecodeError> {
    let n = d.len()?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let stage = match d.u8()? {
            0 => Stage::Extraction,
            1 => Stage::VirtualCells,
            2 => Stage::Classification,
            3 => Stage::GraphConstruction,
            4 => Stage::Resolution,
            5 => Stage::Batch,
            6 => Stage::Admission,
            _ => return Err(DecodeError("bad stage")),
        };
        let scope = d.str()?;
        let error = d.str()?;
        let action = match d.u8()? {
            0 => DegradedAction::Skipped,
            1 => DegradedAction::Truncated,
            2 => DegradedAction::Fallback,
            3 => DegradedAction::Cancelled,
            _ => return Err(DecodeError("bad degraded action")),
        };
        items.push(Diagnostic {
            stage,
            scope,
            error,
            action,
        });
    }
    Ok(Diagnostics { items })
}

/// Encode one log/snapshot record payload: store key + full entry.
/// `approx_bytes` and the LRU clock are *not* encoded — both are
/// recomputed on recovery, so the on-disk format stays a pure function
/// of the cached artifact values.
pub(crate) fn encode_record(key: u64, e: &DocEntry) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u64(key);
    enc.u64(e.config_fp);
    enc.u64(e.text_fp);
    enc.u64(e.aggregate_fp);
    enc.len(e.table_fps.len());
    for &fp in &e.table_fps {
        enc.u64(fp);
    }
    enc.len(e.text_mentions.len());
    for m in &e.text_mentions {
        enc_text_mention(&mut enc, m);
    }
    enc_doc_ctx(&mut enc, &e.text_ctx);
    enc.len(e.table_contexts.len());
    for t in &e.table_contexts {
        enc_table_ctx(&mut enc, t);
    }
    enc.len(e.targets.len());
    for t in &e.targets {
        enc_table_mention(&mut enc, t);
    }
    enc_diagnostics(&mut enc, &e.extract_diags);
    enc.len(e.artifacts.len());
    for a in &e.artifacts {
        enc.u64(a.fp);
        enc_candidates(&mut enc, &a.candidates);
        enc_filter_stats(&mut enc, &a.stats);
    }
    enc.len(e.alignments.len());
    for a in &e.alignments {
        enc_alignment(&mut enc, a);
    }
    enc_diagnostics(&mut enc, &e.diagnostics);
    enc_filter_stats(&mut enc, &e.stats);
    enc.buf
}

/// Decode one record payload back into `(key, entry)`. Strict: the
/// payload must be consumed exactly; any slack or structural error is a
/// decode failure (treated as corruption by recovery).
pub(crate) fn decode_record(payload: &[u8]) -> Result<(u64, DocEntry), DecodeError> {
    let mut d = Dec::new(payload);
    let key = d.u64()?;
    let config_fp = d.u64()?;
    let text_fp = d.u64()?;
    let aggregate_fp = d.u64()?;
    let n = d.len()?;
    let mut table_fps = Vec::with_capacity(n);
    for _ in 0..n {
        table_fps.push(d.u64()?);
    }
    let n = d.len()?;
    let mut text_mentions = Vec::with_capacity(n);
    for _ in 0..n {
        text_mentions.push(dec_text_mention(&mut d)?);
    }
    let text_ctx = dec_doc_ctx(&mut d)?;
    let n = d.len()?;
    let mut table_contexts = Vec::with_capacity(n);
    for _ in 0..n {
        table_contexts.push(dec_table_ctx(&mut d)?);
    }
    let n = d.len()?;
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        targets.push(dec_table_mention(&mut d)?);
    }
    let extract_diags = dec_diagnostics(&mut d)?;
    let n = d.len()?;
    let mut artifacts = Vec::with_capacity(n);
    for _ in 0..n {
        let fp = d.u64()?;
        let candidates = dec_candidates(&mut d)?;
        let stats = dec_filter_stats(&mut d)?;
        artifacts.push(MentionArtifact {
            fp,
            candidates,
            stats,
        });
    }
    let n = d.len()?;
    let mut alignments = Vec::with_capacity(n);
    for _ in 0..n {
        alignments.push(dec_alignment(&mut d)?);
    }
    let diagnostics = dec_diagnostics(&mut d)?;
    let stats = dec_filter_stats(&mut d)?;
    d.finish()?;
    let mut entry = DocEntry {
        config_fp,
        text_fp,
        aggregate_fp,
        table_fps,
        text_mentions,
        text_ctx,
        table_contexts,
        targets,
        extract_diags,
        artifacts,
        alignments,
        diagnostics,
        stats,
        approx_bytes: 0,
        last_used: 0,
    };
    entry.approx_bytes = entry.estimate_bytes();
    Ok((key, entry))
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

fn checksum(payload: &[u8]) -> u64 {
    let mut fp = Fingerprint::new();
    fp.bytes(payload);
    fp.finish()
}

/// Frame a payload: `len (u32 LE) | fnv1a(payload) (u64 LE) | payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn file_header(model_fp: u64, gen: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(HEADER_LEN as usize);
    h.extend_from_slice(&MAGIC);
    h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    h.extend_from_slice(&model_fp.to_le_bytes());
    h.extend_from_slice(&gen.to_le_bytes());
    h
}

/// Validate a file header against this process's identity. `Ok(gen)`
/// means the file was written by a compatible store; anything else is
/// incompatible (foreign magic, version bump, retrained model).
fn check_header(bytes: &[u8], model_fp: u64) -> Option<u64> {
    if bytes.len() < HEADER_LEN as usize || bytes[..4] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let fp = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let gen = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
    (version == FORMAT_VERSION && fp == model_fp).then_some(gen)
}

/// Walk frames from `bytes[start..]`, decoding entries until the first
/// invalid frame. Returns the decoded entries, the byte offset of the
/// end of the last valid frame (= where a writer may safely resume
/// appending), and whether a tear was found.
fn read_frames(bytes: &[u8], start: usize) -> (Vec<(u64, DocEntry)>, u64, bool) {
    let mut entries = Vec::new();
    let mut pos = start;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return (entries, pos as u64, false);
        }
        if rest.len() < FRAME_HEADER_LEN {
            return (entries, pos as u64, true);
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap_or([0; 4]));
        let sum = u64::from_le_bytes(rest[4..12].try_into().unwrap_or([0; 8]));
        if len > MAX_FRAME_BYTES || rest.len() - FRAME_HEADER_LEN < len as usize {
            return (entries, pos as u64, true);
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize];
        if checksum(payload) != sum {
            return (entries, pos as u64, true);
        }
        match decode_record(payload) {
            Ok(kv) => entries.push(kv),
            Err(_) => return (entries, pos as u64, true),
        }
        pos += FRAME_HEADER_LEN + len as usize;
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

struct Manifest {
    model_fp: u64,
    snapshot_gen: u64,
}

enum ManifestState {
    Missing,
    Incompatible,
    Valid(Manifest),
}

fn read_manifest(dir: &Path) -> ManifestState {
    let text = match fs::read_to_string(dir.join(MANIFEST_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return ManifestState::Missing,
        Err(_) => return ManifestState::Incompatible,
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return ManifestState::Incompatible;
    }
    let (mut version, mut model_fp, mut snapshot_gen) = (None, None, None);
    for line in lines {
        match line.split_once(' ') {
            Some(("format_version", v)) => version = v.parse::<u32>().ok(),
            Some(("model_fp", v)) => model_fp = u64::from_str_radix(v, 16).ok(),
            Some(("snapshot_gen", v)) => snapshot_gen = v.parse::<u64>().ok(),
            _ => {}
        }
    }
    match (version, model_fp, snapshot_gen) {
        (Some(v), Some(fp), Some(gen)) if v == FORMAT_VERSION => ManifestState::Valid(Manifest {
            model_fp: fp,
            snapshot_gen: gen,
        }),
        _ => ManifestState::Incompatible,
    }
}

fn manifest_text(model_fp: u64, snapshot_gen: u64) -> String {
    format!("{MANIFEST_MAGIC}\nformat_version {FORMAT_VERSION}\nmodel_fp {model_fp:016x}\nsnapshot_gen {snapshot_gen}\n")
}

// ---------------------------------------------------------------------------
// Atomic file helpers
// ---------------------------------------------------------------------------

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename into place, then fsync the directory so the rename
/// itself is durable.
fn write_atomic(dir: &Path, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    sync_dir(dir);
    Ok(())
}

/// Best-effort directory fsync (makes renames durable on Linux; a no-op
/// error elsewhere is acceptable — the files themselves are synced).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Remove every file this layer owns (manifest, log, snapshots, temps).
/// Called when the directory's contents are incompatible and must be
/// rebuilt; foreign files that merely *live* in the directory are left
/// alone.
fn wipe_store_files(dir: &Path) {
    let _ = fs::remove_file(dir.join(MANIFEST_FILE));
    let _ = fs::remove_file(dir.join(LOG_FILE));
    if let Ok(rd) = fs::read_dir(dir) {
        for entry in rd.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if (name.starts_with("snapshot-") && name.ends_with(".briq")) || name.ends_with(".tmp")
            {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Persistence handle
// ---------------------------------------------------------------------------

/// What recovery found in the store directory.
pub(crate) struct Recovered {
    /// Entries in replay order (snapshot first, then log); the caller
    /// inserts them last-wins per key.
    pub entries: Vec<(u64, DocEntry)>,
    /// True if a torn tail was truncated in the snapshot or log.
    pub truncated: bool,
    /// True if incompatible/foreign files were discarded and the
    /// directory rebuilt from scratch.
    pub rebuilt: bool,
}

struct LogFile {
    file: File,
    bytes: u64,
}

/// The durable backing of one [`AlignmentStore`](super::AlignmentStore):
/// open log handle, snapshot generation, and byte accounting. All file
/// writes go through this handle; the in-memory entry map stays in the
/// store itself.
pub(crate) struct Persistence {
    dir: PathBuf,
    model_fp: u64,
    compact_log_bytes: u64,
    log: Mutex<LogFile>,
    /// Serializes snapshot writers (the log mutex alone protects appends).
    snap: Mutex<()>,
    gen: AtomicU64,
    log_records: AtomicU64,
    snapshot_bytes: AtomicU64,
    compactions: AtomicU64,
}

impl std::fmt::Debug for Persistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Persistence")
            .field("dir", &self.dir)
            .field("gen", &self.gen.load(Ordering::Relaxed))
            .finish()
    }
}

impl Persistence {
    /// Open (or create) a store directory and recover its contents.
    /// Never fails on *corrupt* data — torn tails truncate, incompatible
    /// files rebuild; only real I/O errors (permissions, full disk on
    /// the initial log create) surface as `Err`.
    pub(crate) fn open(
        dir: &Path,
        model_fp: u64,
        compact_log_bytes: u64,
    ) -> std::io::Result<(Persistence, Recovered)> {
        fs::create_dir_all(dir)?;
        let mut entries = Vec::new();
        let mut truncated = false;
        let mut rebuilt = false;

        // Manifest decides whether anything on disk can be trusted.
        let mut gen = match read_manifest(dir) {
            ManifestState::Valid(m) if m.model_fp == model_fp => m.snapshot_gen,
            ManifestState::Missing => {
                // A missing manifest with store files present means an
                // unknown writer left them; never trust unmanifested data.
                if dir.join(LOG_FILE).exists() {
                    rebuilt = true;
                    wipe_store_files(dir);
                }
                0
            }
            _ => {
                // Foreign magic, version bump, or model/config change.
                rebuilt = true;
                wipe_store_files(dir);
                0
            }
        };

        // Snapshot: replayed first, so the log wins per key.
        if gen > 0 {
            let path = dir.join(snapshot_file(gen));
            match fs::read(&path) {
                Ok(bytes) if check_header(&bytes, model_fp) == Some(gen) => {
                    let (snap_entries, _, torn) = read_frames(&bytes, HEADER_LEN as usize);
                    truncated |= torn;
                    entries.extend(snap_entries);
                }
                _ => {
                    // Named by the manifest but unreadable or incompatible:
                    // nothing on disk can be trusted any more.
                    rebuilt = true;
                    entries.clear();
                    wipe_store_files(dir);
                    gen = 0;
                }
            }
        }

        // Novelty log: replayed on top of the snapshot, then physically
        // truncated at the last valid frame so appends resume cleanly.
        let log_path = dir.join(LOG_FILE);
        let mut log_valid_len = None;
        if let Ok(bytes) = fs::read(&log_path) {
            match check_header(&bytes, model_fp) {
                Some(log_gen) if log_gen == gen => {
                    let (log_entries, valid_len, torn) = read_frames(&bytes, HEADER_LEN as usize);
                    truncated |= torn;
                    entries.extend(log_entries);
                    log_valid_len = Some(valid_len);
                }
                // A log for another generation (crash between manifest
                // update and log reset) or an incompatible header: its
                // content is already in the snapshot or untrustworthy.
                _ => {
                    let _ = fs::remove_file(&log_path);
                }
            }
        }

        // Open the log for append, creating it (with a header) if needed.
        let log_records = entries.len() as u64;
        let (file, bytes) = match log_valid_len {
            Some(valid) => {
                let f = OpenOptions::new().append(true).open(&log_path)?;
                f.set_len(valid)?;
                (f, valid)
            }
            None => {
                let header = file_header(model_fp, gen);
                write_atomic(dir, &log_path, &header)?;
                (OpenOptions::new().append(true).open(&log_path)?, HEADER_LEN)
            }
        };

        // Always leave a valid manifest behind, so the next process can
        // trust (or reject) the directory without guessing.
        write_atomic(
            dir,
            &dir.join(MANIFEST_FILE),
            manifest_text(model_fp, gen).as_bytes(),
        )?;
        cleanup_stale(dir, gen);

        let snapshot_bytes = if gen > 0 {
            fs::metadata(dir.join(snapshot_file(gen)))
                .map(|m| m.len())
                .unwrap_or(0)
        } else {
            0
        };
        let p = Persistence {
            dir: dir.to_path_buf(),
            model_fp,
            compact_log_bytes,
            log: Mutex::new(LogFile { file, bytes }),
            snap: Mutex::new(()),
            gen: AtomicU64::new(gen),
            log_records: AtomicU64::new(log_records),
            snapshot_bytes: AtomicU64::new(snapshot_bytes),
            compactions: AtomicU64::new(0),
        };
        Ok((
            p,
            Recovered {
                entries,
                truncated,
                rebuilt,
            },
        ))
    }

    /// Append one encoded record payload to the novelty log.
    pub(crate) fn append(&self, payload: &[u8]) -> std::io::Result<()> {
        let framed = frame(payload);
        let mut log = lock(&self.log);
        log.file.write_all(&framed)?;
        log.bytes += framed.len() as u64;
        self.log_records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// True when the log has outgrown the compaction threshold and the
    /// store should write a snapshot.
    pub(crate) fn wants_compact(&self) -> bool {
        self.log_bytes() > self.compact_log_bytes
    }

    /// Write a compacted snapshot of `payloads` (pre-encoded records),
    /// atomically advance the manifest, and reset the log. The caller
    /// holds the entry-map lock, so the payload set is a consistent view.
    pub(crate) fn write_snapshot(&self, payloads: &[Vec<u8>]) -> std::io::Result<()> {
        let _guard = lock(&self.snap);
        let old_gen = self.gen.load(Ordering::Relaxed);
        let next = old_gen + 1;

        // 1. Snapshot file: temp + fsync + rename + dir fsync.
        let mut body = file_header(self.model_fp, next);
        for p in payloads {
            body.extend_from_slice(&frame(p));
        }
        let snap_path = self.dir.join(snapshot_file(next));
        write_atomic(&self.dir, &snap_path, &body)?;

        // 2. Manifest: after this rename, recovery reads the new snapshot.
        write_atomic(
            &self.dir,
            &self.dir.join(MANIFEST_FILE),
            manifest_text(self.model_fp, next).as_bytes(),
        )?;

        // 3. Fresh log for the new generation, swapped under the log
        // lock so in-flight appends land either in the old log (whose
        // records the snapshot already covers) or the new one.
        {
            let mut log = lock(&self.log);
            write_atomic(
                &self.dir,
                &self.dir.join(LOG_FILE),
                &file_header(self.model_fp, next),
            )?;
            log.file = OpenOptions::new()
                .append(true)
                .open(self.dir.join(LOG_FILE))?;
            log.bytes = HEADER_LEN;
        }
        self.log_records.store(0, Ordering::Relaxed);

        // 4. The old snapshot is now unreachable from the manifest.
        if old_gen > 0 {
            let _ = fs::remove_file(self.dir.join(snapshot_file(old_gen)));
        }
        self.gen.store(next, Ordering::Relaxed);
        self.snapshot_bytes
            .store(body.len() as u64, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flush buffered log appends to the OS and fsync the log file.
    pub(crate) fn sync(&self) -> std::io::Result<()> {
        let log = lock(&self.log);
        log.file.sync_all()
    }

    /// Store directory path.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current novelty-log size in bytes (header included).
    pub(crate) fn log_bytes(&self) -> u64 {
        lock(&self.log).bytes
    }

    /// Size in bytes of the current snapshot (0 before the first one).
    pub(crate) fn snapshot_bytes(&self) -> u64 {
        self.snapshot_bytes.load(Ordering::Relaxed)
    }

    /// Compactions (snapshot writes) performed by this process.
    pub(crate) fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }
}

/// Remove temp files and snapshots other than the current generation —
/// debris from crashes between protocol steps.
fn cleanup_stale(dir: &Path, gen: u64) {
    let keep = snapshot_file(gen);
    if let Ok(rd) = fs::read_dir(dir) {
        for entry in rd.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale_snapshot =
                name.starts_with("snapshot-") && name.ends_with(".briq") && *name != *keep;
            if stale_snapshot || name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::super::{AlignmentStore, StoreOptions};
    use super::*;
    use crate::error::Budget;
    use crate::pipeline::{Briq, BriqConfig};
    use briq_table::{Document, Table};
    use proptest::prelude::*;
    use std::sync::atomic::AtomicUsize;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A unique scratch directory, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("briq-persist-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn briq() -> Briq {
        Briq::untrained(BriqConfig::default())
    }

    fn persistent(briq: &Briq, dir: &Path) -> AlignmentStore {
        AlignmentStore::with_options(
            briq,
            &StoreOptions {
                dir: Some(dir.to_path_buf()),
                ..StoreOptions::default()
            },
        )
        .expect("open persistent store")
    }

    fn docs() -> Vec<Document> {
        vec![
            Document::new(
                0,
                "Overall, a total of 123 patients reported side effects. \
                 Depression was reported by 38 patients.",
                vec![Table::from_grid(
                    "",
                    vec![
                        vec!["side effects".into(), "patients".into()],
                        vec!["Rash".into(), "35".into()],
                        vec!["Depression".into(), "38".into()],
                    ],
                )],
            ),
            Document::new(
                1,
                "Revenue grew to $12.5 million in 2018, up from $9.1 million.",
                vec![Table::from_grid(
                    "Revenue",
                    vec![
                        vec!["year".into(), "revenue".into()],
                        vec!["2017".into(), "$9.1M".into()],
                        vec!["2018".into(), "$12.5M".into()],
                    ],
                )],
            ),
        ]
    }

    /// Align `docs` through `store` and return every output surface.
    #[allow(clippy::type_complexity)]
    fn align_all(
        briq: &Briq,
        store: &AlignmentStore,
        docs: &[Document],
    ) -> Vec<(
        Vec<Alignment>,
        FilterStats,
        Vec<Vec<Candidate>>,
        Diagnostics,
    )> {
        docs.iter()
            .enumerate()
            .map(|(i, d)| briq.align_stored_detailed(store, i as u64, d, &Budget::default()))
            .collect()
    }

    #[test]
    fn restart_recovers_from_log_alone() {
        let briq = briq();
        let dir = TempDir::new("log-only");
        let docs = docs();
        let cold = {
            let store = persistent(&briq, dir.path());
            let out = align_all(&briq, &store, &docs);
            assert_eq!(store.len(), docs.len());
            // No snapshot was ever written: recovery must come from the
            // novelty log alone (the SIGKILL-without-drain case).
            assert_eq!(store.snapshot_bytes(), 0);
            out
        };
        let store = persistent(&briq, dir.path());
        assert_eq!(store.recovered_entries(), docs.len() as u64);
        let warm = align_all(&briq, &store, &docs);
        assert_eq!(store.hits(), docs.len() as u64, "restart must serve warm");
        assert_eq!(cold, warm, "recovered output must be bit-identical");
    }

    #[test]
    fn restart_recovers_from_snapshot_plus_log() {
        let briq = briq();
        let dir = TempDir::new("snap-log");
        let docs = docs();
        let cold = {
            let store = persistent(&briq, dir.path());
            let out = align_all(&briq, &store, &docs[..1]);
            store.snapshot().expect("snapshot");
            assert!(store.snapshot_bytes() > 0);
            // One more document lands in the post-snapshot log.
            let mut out2 = align_all(&briq, &store, &docs);
            assert_eq!(out2.remove(0), out[0]);
            (out, out2)
        };
        let store = persistent(&briq, dir.path());
        assert_eq!(store.recovered_entries(), docs.len() as u64);
        let warm = align_all(&briq, &store, &docs);
        assert_eq!(store.hits(), docs.len() as u64);
        assert_eq!(warm[0], cold.0[0]);
        assert_eq!(warm[1], cold.1[0]);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let briq = briq();
        let dir = TempDir::new("torn");
        let docs = docs();
        {
            let store = persistent(&briq, dir.path());
            align_all(&briq, &store, &docs);
        }
        // Tear the last record: chop bytes off the log tail, simulating
        // a crash mid-write.
        let log = dir.path().join(LOG_FILE);
        let bytes = fs::read(&log).expect("read log");
        fs::write(&log, &bytes[..bytes.len() - 7]).expect("tear log");

        let store = persistent(&briq, dir.path());
        assert_eq!(
            store.recovered_entries(),
            docs.len() as u64 - 1,
            "the torn record is dropped, the prefix survives"
        );
        // The torn document recomputes cold; output is still identical
        // to a fresh run, and the log accepts new appends after the tear.
        let briq2 = briq;
        let warm = align_all(&briq2, &store, &docs);
        let oracle_store = AlignmentStore::for_system(&briq2);
        let oracle = align_all(&briq2, &oracle_store, &docs);
        assert_eq!(warm, oracle);
        let store2 = persistent(&briq2, dir.path());
        assert_eq!(store2.recovered_entries(), docs.len() as u64);
    }

    #[test]
    fn corrupt_mid_log_byte_keeps_valid_prefix() {
        let briq = briq();
        let dir = TempDir::new("flip");
        let docs = docs();
        {
            let store = persistent(&briq, dir.path());
            align_all(&briq, &store, &docs);
        }
        let log = dir.path().join(LOG_FILE);
        let mut bytes = fs::read(&log).expect("read log");
        // Flip one byte inside the *second* record's payload: checksum
        // catches it, the first record survives.
        let second_start = {
            let after_header = &bytes[HEADER_LEN as usize..];
            let len = u32::from_le_bytes(after_header[..4].try_into().unwrap()) as usize;
            HEADER_LEN as usize + FRAME_HEADER_LEN + len
        };
        bytes[second_start + FRAME_HEADER_LEN + 20] ^= 0xFF;
        fs::write(&log, &bytes).expect("corrupt log");

        let store = persistent(&briq, dir.path());
        assert_eq!(store.recovered_entries(), 1);
        let warm = align_all(&briq, &store, &docs);
        let oracle_store = AlignmentStore::for_system(&briq);
        assert_eq!(warm, align_all(&briq, &oracle_store, &docs));
    }

    #[test]
    fn version_mismatch_rebuilds_instead_of_trusting() {
        let briq = briq();
        let dir = TempDir::new("version");
        {
            let store = persistent(&briq, dir.path());
            align_all(&briq, &store, &docs());
            store.snapshot().expect("snapshot");
        }
        // Rewrite the manifest to a future format version.
        let manifest = dir.path().join(MANIFEST_FILE);
        let text = fs::read_to_string(&manifest).expect("read manifest");
        fs::write(
            &manifest,
            text.replace("format_version 1", "format_version 999"),
        )
        .expect("rewrite manifest");

        let store = persistent(&briq, dir.path());
        assert_eq!(store.recovered_entries(), 0, "incompatible data is rebuilt");
        assert!(
            !dir.path().join(snapshot_file(1)).exists(),
            "stale snapshot wiped"
        );
        // The rebuilt directory works normally again.
        align_all(&briq, &store, &docs());
        let store2 = persistent(&briq, dir.path());
        assert_eq!(store2.recovered_entries(), 2);
    }

    #[test]
    fn model_change_invalidates_directory() {
        let dir = TempDir::new("model");
        let briq_a = briq();
        {
            let store = persistent(&briq_a, dir.path());
            align_all(&briq_a, &store, &docs());
        }
        let mut cfg = BriqConfig::default();
        cfg.filter.k_exact += 1; // any config change flips the model fp
        let briq_b = Briq::untrained(cfg);
        let store = persistent(&briq_b, dir.path());
        assert_eq!(
            store.recovered_entries(),
            0,
            "a retrained/reconfigured model must not trust old artifacts"
        );
    }

    #[test]
    fn foreign_file_is_not_trusted() {
        let dir = TempDir::new("foreign");
        fs::write(dir.path().join(MANIFEST_FILE), "some other tool\n").expect("write foreign");
        fs::write(dir.path().join(LOG_FILE), b"not a briq log at all").expect("write foreign");
        let briq = briq();
        let store = persistent(&briq, dir.path());
        assert_eq!(store.recovered_entries(), 0);
        // And the directory is usable afterwards.
        align_all(&briq, &store, &docs());
        let store2 = persistent(&briq, dir.path());
        assert_eq!(store2.recovered_entries(), 2);
    }

    #[test]
    fn compaction_resets_log_and_survives_restart() {
        let briq = briq();
        let dir = TempDir::new("compact");
        let docs = docs();
        {
            // A 1-byte compaction threshold: every append triggers one.
            let store = AlignmentStore::with_options(
                &briq,
                &StoreOptions {
                    dir: Some(dir.path().to_path_buf()),
                    compact_log_bytes: 1,
                    ..StoreOptions::default()
                },
            )
            .expect("open");
            align_all(&briq, &store, &docs);
            assert!(store.compactions() >= 2);
            assert_eq!(store.log_bytes(), HEADER_LEN, "log reset after compaction");
            assert!(store.snapshot_bytes() > 0);
        }
        let store = persistent(&briq, dir.path());
        assert_eq!(store.recovered_entries(), docs.len() as u64);
        align_all(&briq, &store, &docs);
        assert_eq!(store.hits(), docs.len() as u64);
    }

    // -- proptest round-trip ------------------------------------------------

    /// Strategy for strings that stress the codec: unicode, embedded
    /// NULs, quote/backslash soup, empty.
    fn any_string() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u32..0x110000, 0..12).prop_map(|cs| {
            cs.into_iter()
                .filter_map(char::from_u32)
                .collect::<String>()
        })
    }

    /// Any f64 bit pattern: negative zero, NaN payloads, infinities,
    /// subnormals — bit identity must hold for all of them.
    fn any_f64() -> impl Strategy<Value = f64> {
        (0u64..=u64::MAX).prop_map(f64::from_bits)
    }

    fn any_unit() -> impl Strategy<Value = Unit> {
        (0u8..5, 0u8..7, 0u8..6).prop_map(|(t, c, m)| match t {
            0 => Unit::Currency(match c {
                0 => Currency::Usd,
                1 => Currency::Eur,
                2 => Currency::Gbp,
                3 => Currency::Cad,
                4 => Currency::Inr,
                5 => Currency::Jpy,
                _ => Currency::Other,
            }),
            1 => Unit::Percent,
            2 => Unit::BasisPoints,
            3 => Unit::Measure(match m {
                0 => Measure::Mpge,
                1 => Measure::GramsPerKm,
                2 => Measure::KWh,
                3 => Measure::Mg,
                4 => Measure::Km,
                _ => Measure::Count,
            }),
            _ => Unit::None,
        })
    }

    fn any_artifact() -> impl Strategy<Value = MentionArtifact> {
        (
            (0u64..=u64::MAX),
            proptest::collection::vec((0usize..4096, any_f64()), 0..8),
            proptest::collection::vec((any_string(), 0usize..1000), 0..4),
        )
            .prop_map(|(fp, cands, counts)| MentionArtifact {
                fp,
                candidates: cands
                    .into_iter()
                    .map(|(target, score)| Candidate { target, score })
                    .collect(),
                stats: FilterStats {
                    total: counts.iter().cloned().collect(),
                    kept: counts.into_iter().map(|(k, v)| (k, v / 2)).collect(),
                },
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// encode → decode is the identity on arbitrary artifact sets —
        /// checked in byte space (decode then re-encode reproduces the
        /// exact payload) and on the artifact values themselves.
        #[test]
        fn record_roundtrip_is_identity(
            key in (0u64..=u64::MAX),
            fps in proptest::collection::vec(0u64..=u64::MAX, 0..4),
            artifacts in proptest::collection::vec(any_artifact(), 0..6),
            raw in any_string(),
            value in any_f64(),
            unit in any_unit(),
            scope in any_string(),
        ) {
            let quantity = QuantityMention {
                raw: raw.clone(),
                value,
                unnormalized: value,
                unit,
                precision: 3,
                approx: ApproxIndicator::Approximate,
                start: 7,
                end: 7 + raw.len(),
            };
            let target = TableMention {
                table: 1,
                kind: TableMentionKind::Aggregate(AggregationKind::Sum),
                cells: vec![(0, 1), (2, 3)],
                value,
                unnormalized: value,
                raw: raw.clone(),
                unit,
                precision: 2,
                orientation: Some(Orientation::Row(4)),
            };
            let mut entry = DocEntry {
                config_fp: key.rotate_left(17),
                text_fp: key.rotate_left(31),
                aggregate_fp: key.rotate_left(43),
                table_fps: fps,
                text_mentions: vec![TextMention { id: 0, quantity: quantity.clone() }],
                text_ctx: DocContext {
                    tokens: vec![Token {
                        text: raw.clone(),
                        start: 0,
                        end: raw.len(),
                        kind: TokenKind::Number,
                    }],
                    paragraph_words: [raw.clone()].into_iter().collect(),
                    paragraph_word_list: vec![raw.clone(), scope.clone()],
                    paragraph_phrases: [scope.clone()].into_iter().collect(),
                    tables: Vec::new(),
                    mentions: vec![MentionContext {
                        local_weights: [(raw.clone(), value)].into_iter().collect(),
                        sentence_phrases: [scope.clone()].into_iter().collect(),
                        immediate_words: vec![raw.clone()],
                        sentence_words: vec![scope.clone()],
                        inferred_aggregation: Some(AggregationKind::ChangeRatio),
                        token_index: 5,
                    }],
                },
                table_contexts: vec![TableContext {
                    row_words: vec![[raw.clone()].into_iter().collect()],
                    col_words: vec![[scope.clone()].into_iter().collect()],
                    table_words: [raw.clone(), scope.clone()].into_iter().collect(),
                    row_phrases: vec![Default::default()],
                    col_phrases: vec![[raw.clone()].into_iter().collect()],
                    table_phrases: Default::default(),
                }],
                targets: vec![target.clone()],
                extract_diags: Diagnostics {
                    items: vec![Diagnostic {
                        stage: Stage::VirtualCells,
                        scope: scope.clone(),
                        error: raw.clone(),
                        action: DegradedAction::Truncated,
                    }],
                },
                artifacts,
                alignments: vec![Alignment {
                    mention_start: 7,
                    mention_end: 9,
                    mention_raw: raw,
                    target,
                    score: value,
                }],
                diagnostics: Diagnostics::default(),
                stats: FilterStats::default(),
                approx_bytes: 0,
                last_used: 0,
            };
            entry.approx_bytes = entry.estimate_bytes();

            let payload = encode_record(key, &entry);
            let (key2, decoded) = decode_record(&payload).expect("decode");
            prop_assert_eq!(key, key2);
            // Byte-space identity: re-encoding the decoded entry must
            // reproduce the payload exactly.
            prop_assert_eq!(encode_record(key2, &decoded), payload);
            // Spot-check value-space identity on the surfaces that carry
            // floats (bit equality, so NaN payloads count too).
            prop_assert_eq!(decoded.alignments.len(), entry.alignments.len());
            prop_assert_eq!(
                decoded.alignments[0].score.to_bits(),
                entry.alignments[0].score.to_bits()
            );
            prop_assert_eq!(decoded.artifacts.len(), entry.artifacts.len());
            for (a, b) in decoded.artifacts.iter().zip(&entry.artifacts) {
                prop_assert_eq!(a.fp, b.fp);
                prop_assert_eq!(a.candidates.len(), b.candidates.len());
                for (x, y) in a.candidates.iter().zip(&b.candidates) {
                    prop_assert_eq!(x.target, y.target);
                    prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
                }
                prop_assert_eq!(&a.stats, &b.stats);
            }
            prop_assert_eq!(decoded.approx_bytes, entry.approx_bytes);
        }

        /// Truncating a valid record stream at ANY byte offset recovers
        /// the longest valid prefix and never errors.
        #[test]
        fn any_truncation_point_recovers_prefix(cut_frac in 0.0f64..1.0) {
            let briq = Briq::untrained(BriqConfig::default());
            let entry_docs = docs();
            let mut stream = file_header(1234, 0);
            let store = AlignmentStore::for_system(&briq);
            for (i, d) in entry_docs.iter().enumerate() {
                briq.align_stored_detailed(&store, i as u64, d, &Budget::default());
            }
            let payloads = store.encoded_entries();
            for p in &payloads {
                stream.extend_from_slice(&frame(p));
            }
            let cut = HEADER_LEN as usize
                + ((stream.len() - HEADER_LEN as usize) as f64 * cut_frac) as usize;
            let (entries, valid_len, torn) = read_frames(&stream[..cut], HEADER_LEN as usize);
            prop_assert!(valid_len as usize <= cut);
            prop_assert!(entries.len() <= payloads.len());
            prop_assert_eq!(torn, valid_len as usize != cut);
            // The recovered prefix re-encodes to the stream prefix.
            let mut replay = Vec::new();
            for (k, e) in &entries {
                replay.extend_from_slice(&frame(&encode_record(*k, e)));
            }
            prop_assert_eq!(&stream[HEADER_LEN as usize..valid_len as usize], &replay[..]);
        }
    }
}
