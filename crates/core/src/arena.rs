//! Per-worker document arena: pooled scratch state reused across
//! documents (DESIGN.md §14).
//!
//! The alignment hot path used to construct a fresh [`ScoringEngine`],
//! [`RetrievalScratch`], and per-walk RWR buffers for every document —
//! dozens of heap allocations per document that immediately grow to the
//! same steady-state shapes. The arena keeps one instance of each per
//! worker thread: the pipeline *takes* a pooled value at stage entry
//! (reset, capacity intact) and *puts* it back at stage exit, so in
//! steady state a document allocates only for state that genuinely
//! outgrows every previous document.
//!
//! Thread-locality is what makes this safe and deterministic:
//!
//! * the batch engine's workers never share scratch, so there is no
//!   locking and no cross-thread traffic;
//! * every pooled value is **fully reset** before reuse (caches cleared,
//!   counters zeroed) so per-document outputs and counters are
//!   bit-identical to the cold-construction path — document→worker
//!   assignment (which varies run to run under work stealing) can never
//!   leak into results;
//! * a take without a matching put (an early cancellation return) just
//!   drops the value; the next take falls back to a cold construction.
//!
//! The arena reports its retained footprint through the
//! `arena_bytes_peak` histogram (one observation per document, see
//! [`crate::obs::names::ARENA_BYTES_PEAK`]).

use std::cell::RefCell;

use briq_graph::CsrScratch;

use crate::retrieval::RetrievalScratch;
use crate::scoring::ScoringEngine;

/// The pooled per-thread scratch set. Public only through the
/// take/put free functions.
#[derive(Default)]
struct DocArena {
    engine: Option<ScoringEngine>,
    retrieval: Option<RetrievalScratch>,
    csr: Option<CsrScratch>,
    /// Largest approximate byte footprint ever put back, this thread.
    bytes_peak: usize,
}

thread_local! {
    static ARENA: RefCell<DocArena> = RefCell::new(DocArena::default());
}

/// Take the pooled [`ScoringEngine`] (reset, capacity retained), or a
/// fresh one when the pool is empty.
pub fn take_engine() -> ScoringEngine {
    let mut engine = ARENA
        .with(|a| a.borrow_mut().engine.take())
        .unwrap_or_default();
    engine.reset();
    engine
}

/// Return a [`ScoringEngine`] to the pool for the next document on this
/// thread, recording its footprint into the thread's peak.
pub fn put_engine(engine: ScoringEngine) {
    ARENA.with(|a| {
        let mut arena = a.borrow_mut();
        let bytes = current_bytes(&arena, Some(&engine), None, None);
        arena.bytes_peak = arena.bytes_peak.max(bytes);
        arena.engine = Some(engine);
    });
}

/// Take the pooled [`RetrievalScratch`], or a fresh one.
pub fn take_retrieval_scratch() -> RetrievalScratch {
    ARENA
        .with(|a| a.borrow_mut().retrieval.take())
        .unwrap_or_default()
}

/// Return a [`RetrievalScratch`] to the pool.
pub fn put_retrieval_scratch(scratch: RetrievalScratch) {
    ARENA.with(|a| {
        let mut arena = a.borrow_mut();
        let bytes = current_bytes(&arena, None, Some(&scratch), None);
        arena.bytes_peak = arena.bytes_peak.max(bytes);
        arena.retrieval = Some(scratch);
    });
}

/// Take the pooled RWR [`CsrScratch`], or a fresh one.
pub fn take_csr_scratch() -> CsrScratch {
    ARENA
        .with(|a| a.borrow_mut().csr.take())
        .unwrap_or_default()
}

/// Return a [`CsrScratch`] to the pool.
pub fn put_csr_scratch(scratch: CsrScratch) {
    ARENA.with(|a| {
        let mut arena = a.borrow_mut();
        let bytes = current_bytes(&arena, None, None, Some(&scratch));
        arena.bytes_peak = arena.bytes_peak.max(bytes);
        arena.csr = Some(scratch);
    });
}

/// Largest approximate byte footprint the arena has held on this thread
/// (pooled values only; 0 before anything was put back).
pub fn bytes_peak() -> usize {
    ARENA.with(|a| a.borrow().bytes_peak)
}

/// Footprint of the arena with an incoming value substituted for its
/// pooled slot (the slot is empty while the value is out on loan).
fn current_bytes(
    arena: &DocArena,
    engine: Option<&ScoringEngine>,
    retrieval: Option<&RetrievalScratch>,
    csr: Option<&CsrScratch>,
) -> usize {
    let engine_bytes = engine
        .or(arena.engine.as_ref())
        .map_or(0, ScoringEngine::approx_bytes);
    let retrieval_bytes = retrieval
        .or(arena.retrieval.as_ref())
        .map_or(0, retrieval_scratch_bytes);
    let csr_bytes = csr
        .or(arena.csr.as_ref())
        .map_or(0, CsrScratch::approx_bytes);
    engine_bytes + retrieval_bytes + csr_bytes
}

/// Approximate heap bytes retained by a [`RetrievalScratch`].
fn retrieval_scratch_bytes(s: &RetrievalScratch) -> usize {
    (s.near.capacity() + s.far.capacity()) * std::mem::size_of::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_round_trips_capacity() {
        let mut e = take_engine();
        // Force some capacity, return it, take again: capacity survives.
        e.fill_capacity_probe();
        put_engine(e);
        let e2 = take_engine();
        assert!(e2.approx_bytes() > 0, "pooled capacity must survive reset");
        put_engine(e2);
        assert!(bytes_peak() > 0);
    }

    #[test]
    fn csr_scratch_pools() {
        let s = take_csr_scratch();
        put_csr_scratch(s);
        let s2 = take_csr_scratch();
        put_csr_scratch(s2);
    }

    #[test]
    fn retrieval_scratch_pools() {
        let mut s = take_retrieval_scratch();
        s.near.reserve(64);
        put_retrieval_scratch(s);
        let s2 = take_retrieval_scratch();
        assert!(s2.near.capacity() >= 64);
        put_retrieval_scratch(s2);
    }
}
