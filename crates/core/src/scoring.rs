//! Batched candidate-scoring engine: unique-row deduplication, block-wise
//! flat-forest traversal, and exact bound-based pruning (DESIGN.md §10).
//!
//! [`ScoringEngine`] replaces the row-at-a-time `classifier.score(row)`
//! loop on the alignment hot path. Per document it keeps a score cache
//! keyed on the raw f64 bits of each 12-feature row (scores are pure
//! functions of the row, so a cache hit is bit-identical by construction)
//! and scores the remaining distinct rows through
//! [`briq_ml::FlatForest::score_block`] / [`briq_ml::FlatForest::score_block_bounded`] —
//! trees in the outer loop, rows in the inner loop.
//!
//! Pruning is *exact*, never approximate: a row's scoring is abandoned
//! only when the forest's remaining-vote upper bound proves its score is
//! strictly below the smallest value at which downstream filtering
//! ([`crate::filtering::filter_mention_pruned`]) could keep the pair or
//! let it influence the mention-type vote. Alignments, candidates, and
//! filter statistics are therefore byte-identical with pruning on or off.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use briq_table::{TableMention, TableMentionKind};
use briq_text::cues::{AggregationKind, ApproxIndicator};

use crate::classifier::PairClassifier;
use crate::features::{FeatureMask, PairFeaturizer, FEATURE_COUNT};
use crate::filtering::FilterConfig;
use crate::mention::TextMention;
use crate::pipeline::heuristic_prior_masked;

/// FxHash-style mixer for row-bit keys: the standard SipHash is pure
/// overhead for short fixed-width keys that are already high-entropy f64
/// bit patterns.
#[derive(Default)]
pub struct RowHasher(u64);

impl Hasher for RowHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// A feature row keyed by its exact bit pattern. Distinct bit patterns of
/// equal values (`-0.0` vs `0.0`) hash apart, which only costs a cache
/// miss — never correctness.
type RowKey = [u64; FEATURE_COUNT];

fn row_key(row: &[f64]) -> RowKey {
    let mut key = [0u64; FEATURE_COUNT];
    for (k, v) in key.iter_mut().zip(row) {
        *k = v.to_bits();
    }
    key
}

/// The smallest classifier score at which filtering could still keep the
/// pair `(mention, target)` — derived from the already-filled feature row
/// and the exact keep conditions of `filter_mention_pruned`:
///
/// * `row[5]` is `relative_difference(x.value, t.value)`, the quantity
///   the value/unit pruning step compares against `value_diff_threshold`;
/// * `row[7] == 3.0` (both units specified and different) is exactly the
///   condition under which `unit_ok` fails.
///
/// A score strictly below the returned cut makes the keep decision
/// `false` without computing the score. `+∞` means the pair can never be
/// kept; `-∞` means it is kept at any score and must be computed.
fn static_cut(
    row: &[f64],
    target: &TableMention,
    tags: &[AggregationKind],
    cfg: &FilterConfig,
) -> f64 {
    let unit_ok = row[7] != 3.0;
    let value_far = row[5] > cfg.value_diff_threshold;
    match target.kind {
        TableMentionKind::SingleCell => {
            if !unit_ok {
                f64::INFINITY
            } else if value_far {
                cfg.score_floor.max(cfg.score_threshold)
            } else {
                cfg.score_floor
            }
        }
        TableMentionKind::Aggregate(k) => {
            if !tags.contains(&k) || !unit_ok {
                f64::INFINITY
            } else if value_far {
                cfg.score_threshold
            } else {
                f64::NEG_INFINITY
            }
        }
    }
}

/// Whether filtering could keep the pair at *any* score — and, equally,
/// whether the pair participates in [`crate::filtering::mention_type`]'s
/// majority vote: unit-compatible (`row[7] != 3.0`, the `StrongMismatch`
/// encode), and for aggregates a matching tagger prediction. This is the
/// exact set [`crate::retrieval::CandidateIndex::retrieve`] returns, so
/// the indexed and exhaustive paths agree by construction.
fn is_viable(row: &[f64], target: &TableMention, tags: &[AggregationKind]) -> bool {
    row[7] != 3.0
        && match target.kind {
            TableMentionKind::SingleCell => true,
            TableMentionKind::Aggregate(k) => tags.contains(&k),
        }
}

/// The fifth-highest value of `scores`, or `-∞` when there are fewer than
/// five — the strict threshold below which a pair can never enter the
/// top-5 majority vote of [`crate::filtering::mention_type`].
fn fifth_highest(scores: impl Iterator<Item = f64>) -> f64 {
    let mut top = [f64::NEG_INFINITY; 5];
    let mut n = 0usize;
    for s in scores {
        n += 1;
        let mut lo = 0;
        for (i, v) in top.iter().enumerate().skip(1) {
            if v.total_cmp(&top[lo]).is_lt() {
                lo = i;
            }
        }
        if s.total_cmp(&top[lo]).is_gt() {
            top[lo] = s;
        }
    }
    if n < 5 {
        return f64::NEG_INFINITY;
    }
    let mut min = top[0];
    for &v in &top[1..] {
        if v.total_cmp(&min).is_lt() {
            min = v;
        }
    }
    min
}

/// Per-document batched scorer. Construct once per document, then for
/// each mention: [`ScoringEngine::fill_rows`], then one of the scoring
/// entry points, then read [`ScoringEngine::computed`] /
/// [`ScoringEngine::pruned_targets`] and hand both to
/// [`crate::filtering::filter_mention_pruned`].
///
/// All buffers (including the dedup cache) live for the whole document,
/// so repeated mentions reuse capacity and identical rows across mentions
/// score once.
pub struct ScoringEngine {
    /// Bit-exact row → score cache; pruned rows are never inserted
    /// (their score was not computed).
    cache: HashMap<RowKey, f64, BuildHasherDefault<RowHasher>>,
    /// The current mention's row matrix (`targets × FEATURE_COUNT`).
    rows: Vec<f64>,
    /// Gathered distinct rows pending one block-scoring call.
    block: Vec<f64>,
    /// Target index of each gathered block row.
    block_tis: Vec<usize>,
    /// Per-row pruning cuts for the bounded kernel.
    cuts: Vec<f64>,
    /// Block-scoring output buffer.
    out: Vec<f64>,
    /// Per-row pruned flags from the bounded kernel.
    pruned_flags: Vec<bool>,
    /// Exactly scored `(target index, score)` pairs of the current
    /// mention, in no particular order (filtering sorts under a total
    /// order, so ordering cannot leak into results).
    computed: Vec<(usize, f64)>,
    /// Viability flag per `computed` entry (see [`is_viable`]): only
    /// viable scores feed the fifth-highest vote bound.
    viable_flags: Vec<bool>,
    /// Target indices whose scoring was provably cut short.
    pruned: Vec<usize>,
    /// Row positions (exhaustive path: target indices) deferred to the
    /// bounded phase.
    deferred: Vec<usize>,
    /// Selected-target map of the retrieval path: row `k` of the filled
    /// matrix is pair `(mention, sel[k])`. Empty on the exhaustive path.
    sel: Vec<usize>,
    /// How many leading entries of `sel` retrieval classified as near.
    n_near: usize,
    /// Route exhaustive phase-A blocks through the lockstep lane kernel
    /// ([`briq_ml::FlatForest::score_lanes`], bit-identical to
    /// `score_block`). Read once from `BRIQ_NO_LANES` at construction;
    /// `BRIQ_NO_LANES=1` is the oracle hatch CI byte-compares against.
    use_lanes: bool,
    /// Opt-in f32 fast path (`BRIQ_F32=1`): phase-A blocks score through
    /// the quantized [`briq_ml::FlatForestF32`] and the exact pruning phase is
    /// disabled (its bounds are f64 contracts). **Approximate** — scores
    /// may differ within the §14 tolerance contract — so CI never sets
    /// it and it is never the default.
    use_f32: bool,
    /// The quantized forest, built lazily per document when `use_f32`
    /// (cleared by [`ScoringEngine::reset`] so a pooled engine can never
    /// leak one model's quantization into another's documents).
    flat32: Option<briq_ml::FlatForestF32>,
    rows_deduped: u64,
    pairs_pruned: u64,
    rows_scored_exhaustive: u64,
    rows_scored_bounded: u64,
}

impl Default for ScoringEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoringEngine {
    /// An empty engine; buffers grow to the document's shape on first use.
    pub fn new() -> ScoringEngine {
        ScoringEngine {
            cache: HashMap::default(),
            rows: Vec::new(),
            block: Vec::new(),
            block_tis: Vec::new(),
            cuts: Vec::new(),
            out: Vec::new(),
            pruned_flags: Vec::new(),
            computed: Vec::new(),
            viable_flags: Vec::new(),
            pruned: Vec::new(),
            deferred: Vec::new(),
            sel: Vec::new(),
            n_near: 0,
            use_lanes: std::env::var_os("BRIQ_NO_LANES").is_none_or(|v| v != "1"),
            use_f32: std::env::var_os("BRIQ_F32").is_some_and(|v| v == "1"),
            flat32: None,
            rows_deduped: 0,
            pairs_pruned: 0,
            rows_scored_exhaustive: 0,
            rows_scored_bounded: 0,
        }
    }

    /// Reset the engine to a fresh-document state while keeping every
    /// buffer's capacity. Clears the score cache and the quantized
    /// forest (both are per-document/per-model state) and zeroes the
    /// counters, so a pooled engine produces output and observability
    /// counters bit-identical to a cold-constructed one regardless of
    /// which documents this worker scored before.
    pub fn reset(&mut self) {
        self.cache.clear();
        self.rows.clear();
        self.block.clear();
        self.block_tis.clear();
        self.cuts.clear();
        self.out.clear();
        self.pruned_flags.clear();
        self.computed.clear();
        self.viable_flags.clear();
        self.pruned.clear();
        self.deferred.clear();
        self.sel.clear();
        self.n_near = 0;
        self.flat32 = None;
        self.rows_deduped = 0;
        self.pairs_pruned = 0;
        self.rows_scored_exhaustive = 0;
        self.rows_scored_bounded = 0;
    }

    /// Approximate heap bytes retained by the engine's buffers (capacity,
    /// not length) — the arena's footprint accounting.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // A hashbrown bucket holds the (key, value) pair plus one control
        // byte; close enough for a monitoring figure.
        self.cache.capacity() * (size_of::<RowKey>() + size_of::<f64>() + 1)
            + (self.rows.capacity()
                + self.block.capacity()
                + self.cuts.capacity()
                + self.out.capacity())
                * size_of::<f64>()
            + (self.block_tis.capacity()
                + self.pruned.capacity()
                + self.deferred.capacity()
                + self.sel.capacity())
                * size_of::<usize>()
            + self.computed.capacity() * size_of::<(usize, f64)>()
            + self.pruned_flags.capacity()
            + self.viable_flags.capacity()
    }

    /// Grow some buffer capacity so pooling tests can observe it
    /// surviving a take/put round trip.
    #[cfg(test)]
    pub(crate) fn fill_capacity_probe(&mut self) {
        self.rows.reserve(256);
        self.computed.reserve(32);
    }

    /// Phase-A kernel dispatch over the gathered block: the opt-in f32
    /// forest when `BRIQ_F32=1`, the lockstep lane kernel by default, or
    /// the row-at-a-time block kernel under the `BRIQ_NO_LANES=1` oracle
    /// hatch. Lanes vs. block is bit-identical by the flat-forest
    /// equivalence suite; only f32 may deviate.
    fn score_block_phase_a(&mut self, flat: &briq_ml::FlatForest) {
        let n = self.block_tis.len();
        self.out.clear();
        self.out.resize(n, 0.0);
        match &self.flat32 {
            Some(f) => f.score_block(&self.block, FEATURE_COUNT, &mut self.out),
            None if self.use_lanes => flat.score_lanes(&self.block, FEATURE_COUNT, &mut self.out),
            None => flat.score_block(&self.block, FEATURE_COUNT, &mut self.out),
        }
        self.rows_scored_exhaustive += n as u64;
    }

    /// Apply the opt-in f32 mode to a scoring call: build the quantized
    /// forest on first use and force pruning off (the phase-B bounds are
    /// exact f64 contracts that do not transfer to quantized scores), so
    /// every row goes through the exhaustive f32 phase A.
    fn effective_prune(&mut self, clf: &PairClassifier, prune: bool) -> bool {
        if !self.use_f32 {
            return prune;
        }
        if self.flat32.is_none() {
            self.flat32 = Some(briq_ml::FlatForestF32::from_flat(clf.flat()));
        }
        false
    }

    /// Fill the engine's row matrix with every target's features for
    /// mention `mi`.
    pub fn fill_rows(&mut self, fz: &mut PairFeaturizer, mi: usize) {
        self.sel.clear();
        self.n_near = 0;
        fz.fill_mention_rows(mi, &mut self.rows);
    }

    /// Fill the row matrix with only the retrieved targets for mention
    /// `mi`: `near` then `far`, as returned by
    /// [`crate::retrieval::CandidateIndex::retrieve`]. Pair with the
    /// `*_selected` scoring entry points.
    pub fn fill_rows_selected(
        &mut self,
        fz: &mut PairFeaturizer,
        mi: usize,
        near: &[usize],
        far: &[usize],
    ) {
        self.sel.clear();
        self.sel.extend_from_slice(near);
        self.sel.extend_from_slice(far);
        self.n_near = near.len();
        fz.fill_rows_for(mi, &self.sel, &mut self.rows);
    }

    /// Exactly scored `(target index, score)` pairs of the last-scored
    /// mention.
    pub fn computed(&self) -> &[(usize, f64)] {
        &self.computed
    }

    /// Target indices of the last-scored mention whose scoring was
    /// abandoned by an exact bound.
    pub fn pruned_targets(&self) -> &[usize] {
        &self.pruned
    }

    /// Rows answered from the dedup cache so far (whole document).
    pub fn rows_deduped(&self) -> u64 {
        self.rows_deduped
    }

    /// Rows whose forest traversal was cut short so far (whole document).
    pub fn pairs_pruned(&self) -> u64 {
        self.pairs_pruned
    }

    /// Emit the engine's whole-document counters into an observability
    /// recorder (a no-op on a disabled recorder): dedup hits, pruned
    /// traversals, and how many rows each scoring phase fully evaluated
    /// (exhaustive phase A vs. the bounded phase-B kernel).
    pub fn record_into(&self, rec: &crate::obs::Recorder) {
        use crate::obs::names;
        rec.count(names::ROWS_DEDUPED, self.rows_deduped);
        rec.count(names::PAIRS_PRUNED, self.pairs_pruned);
        rec.count(names::ROWS_SCORED_EXHAUSTIVE, self.rows_scored_exhaustive);
        rec.count(names::ROWS_SCORED_BOUNDED, self.rows_scored_bounded);
    }

    /// Score the untrained heuristic prior over the filled rows, with
    /// dedup only — the heuristic costs about as much as evaluating the
    /// bound, so pruning cannot pay for itself there.
    pub fn score_heuristic(&mut self, mask: &FeatureMask) {
        self.computed.clear();
        self.viable_flags.clear();
        self.pruned.clear();
        for (ti, row) in self.rows.chunks_exact(FEATURE_COUNT).enumerate() {
            let key = row_key(row);
            let s = match self.cache.get(&key) {
                Some(&s) => {
                    self.rows_deduped += 1;
                    s
                }
                None => {
                    let s = heuristic_prior_masked(row, mask);
                    self.cache.insert(key, s);
                    self.rows_scored_exhaustive += 1;
                    s
                }
            };
            self.computed.push((ti, s));
        }
    }

    /// [`ScoringEngine::score_heuristic`] over the retrieved candidate
    /// rows filled by [`ScoringEngine::fill_rows_selected`]: row position
    /// `i` belongs to target `sel[i]`, not target `i`.
    pub fn score_heuristic_selected(&mut self, mask: &FeatureMask) {
        self.computed.clear();
        self.viable_flags.clear();
        self.pruned.clear();
        for (pos, row) in self.rows.chunks_exact(FEATURE_COUNT).enumerate() {
            let ti = self.sel[pos];
            let key = row_key(row);
            let s = match self.cache.get(&key) {
                Some(&s) => {
                    self.rows_deduped += 1;
                    s
                }
                None => {
                    let s = heuristic_prior_masked(row, mask);
                    self.cache.insert(key, s);
                    self.rows_scored_exhaustive += 1;
                    s
                }
            };
            self.computed.push((ti, s));
        }
    }

    /// Score the filled rows through the trained forest in two phases.
    ///
    /// Phase A scores every row that filtering might keep at any score at
    /// or below the floor (must-compute aggregates and floor-cut singles)
    /// exactly, through the dedup cache and [`briq_ml::FlatForest::score_block`].
    /// The fifth-highest *viable* phase-A score then bounds the
    /// mention-type vote (the vote polls only viable pairs — unit-compatible
    /// single cells and tagged, unit-compatible aggregates): any viable
    /// pair scoring strictly below it can never enter the top-5 (at
    /// least five viable computed pairs outrank it under the vote's total
    /// order), and a non-viable pair is invisible to both the keep
    /// decision and the vote, so its cut is `+∞`. Phase B may therefore
    /// abandon a row once the forest's
    /// remaining-vote bound falls below
    /// `min(static keep cut, fifth-highest)` — or below the static cut
    /// alone when the mention's approximation modifier decides the vote
    /// without looking at scores. With `prune` false everything goes
    /// through phase A, which keeps the dedup win and stays exhaustive.
    pub fn score_trained(
        &mut self,
        x: &TextMention,
        targets: &[TableMention],
        tags: &[AggregationKind],
        clf: &PairClassifier,
        cfg: &FilterConfig,
        prune: bool,
    ) {
        let prune = self.effective_prune(clf, prune);
        let flat = clf.flat();
        self.computed.clear();
        self.viable_flags.clear();
        self.pruned.clear();
        self.deferred.clear();
        self.block.clear();
        self.block_tis.clear();

        // Partition: cache hits resolve immediately; rows whose static
        // cut is at or below the floor must be computed exactly (phase
        // A); the rest wait for the bound-based phase B.
        for (ti, row) in self.rows.chunks_exact(FEATURE_COUNT).enumerate() {
            if let Some(&s) = self.cache.get(&row_key(row)) {
                self.rows_deduped += 1;
                self.computed.push((ti, s));
                self.viable_flags.push(is_viable(row, &targets[ti], tags));
                continue;
            }
            let must_compute =
                !prune || static_cut(row, &targets[ti], tags, cfg) <= cfg.score_floor;
            if must_compute {
                self.block.extend_from_slice(row);
                self.block_tis.push(ti);
            } else {
                self.deferred.push(ti);
            }
        }

        // Phase A: exhaustive block scoring of the must-compute rows.
        self.score_block_phase_a(flat);
        for (i, &ti) in self.block_tis.iter().enumerate() {
            let s = self.out[i];
            let row = &self.block[i * FEATURE_COUNT..(i + 1) * FEATURE_COUNT];
            self.cache.insert(row_key(row), s);
            self.computed.push((ti, s));
            self.viable_flags.push(is_viable(row, &targets[ti], tags));
        }

        if self.deferred.is_empty() {
            return;
        }

        // The mention-type vote inspects candidate scores only for
        // unmodified mentions (and polls only viable pairs); otherwise
        // the modifier decides and the static cut alone is exact.
        let fifth = if x.quantity.approx == ApproxIndicator::None {
            fifth_highest(self.viable_scores())
        } else {
            f64::INFINITY
        };

        // Phase B: bounded block scoring of the deferred rows. Rows that
        // gained a cache entry during phase A resolve as dedup hits.
        // Non-viable rows (which filtering can never keep and the vote
        // never polls) carry an infinite cut: the bounded kernel prunes
        // them at the first opportunity.
        self.block.clear();
        self.block_tis.clear();
        self.cuts.clear();
        for i in 0..self.deferred.len() {
            let ti = self.deferred[i];
            let row = &self.rows[ti * FEATURE_COUNT..(ti + 1) * FEATURE_COUNT];
            if let Some(&s) = self.cache.get(&row_key(row)) {
                self.rows_deduped += 1;
                self.computed.push((ti, s));
                self.viable_flags.push(is_viable(row, &targets[ti], tags));
                continue;
            }
            let cut = if is_viable(row, &targets[ti], tags) {
                static_cut(row, &targets[ti], tags, cfg).min(fifth)
            } else {
                f64::INFINITY
            };
            self.block.extend_from_slice(row);
            self.block_tis.push(ti);
            self.cuts.push(cut);
        }
        self.score_deferred_block(targets, tags, flat);
    }

    /// Score the retrieved candidate rows (filled by
    /// [`ScoringEngine::fill_rows_selected`]) through the trained forest.
    /// Same two-phase structure as [`ScoringEngine::score_trained`], but
    /// every row is viable by the retrieval recall contract, near rows
    /// are phase-A must-computes by construction, and far rows' static
    /// cuts follow from their kind alone — asserted against the
    /// exhaustive path's `static_cut` over the actual feature row in
    /// debug builds.
    pub fn score_trained_selected(
        &mut self,
        x: &TextMention,
        targets: &[TableMention],
        tags: &[AggregationKind],
        clf: &PairClassifier,
        cfg: &FilterConfig,
        prune: bool,
    ) {
        let prune = self.effective_prune(clf, prune);
        let flat = clf.flat();
        self.computed.clear();
        self.viable_flags.clear();
        self.pruned.clear();
        self.deferred.clear();
        self.block.clear();
        self.block_tis.clear();

        for (pos, row) in self.rows.chunks_exact(FEATURE_COUNT).enumerate() {
            let ti = self.sel[pos];
            debug_assert!(is_viable(row, &targets[ti], tags));
            if let Some(&s) = self.cache.get(&row_key(row)) {
                self.rows_deduped += 1;
                self.computed.push((ti, s));
                self.viable_flags.push(true);
                continue;
            }
            let near = pos < self.n_near;
            debug_assert!(
                near == (static_cut(row, &targets[ti], tags, cfg) <= cfg.score_floor)
                    || cfg.score_threshold <= cfg.score_floor,
                "retrieval near/far split must match the static cut"
            );
            if !prune || near {
                self.block.extend_from_slice(row);
                self.block_tis.push(ti);
            } else {
                self.deferred.push(pos);
            }
        }

        self.score_block_phase_a(flat);
        for (i, &ti) in self.block_tis.iter().enumerate() {
            let s = self.out[i];
            self.cache.insert(
                row_key(&self.block[i * FEATURE_COUNT..(i + 1) * FEATURE_COUNT]),
                s,
            );
            self.computed.push((ti, s));
            self.viable_flags.push(true);
        }

        if self.deferred.is_empty() {
            return;
        }

        let fifth = if x.quantity.approx == ApproxIndicator::None {
            fifth_highest(self.viable_scores())
        } else {
            f64::INFINITY
        };

        self.block.clear();
        self.block_tis.clear();
        self.cuts.clear();
        for i in 0..self.deferred.len() {
            let pos = self.deferred[i];
            let ti = self.sel[pos];
            let row = &self.rows[pos * FEATURE_COUNT..(pos + 1) * FEATURE_COUNT];
            if let Some(&s) = self.cache.get(&row_key(row)) {
                self.rows_deduped += 1;
                self.computed.push((ti, s));
                self.viable_flags.push(true);
                continue;
            }
            // A far single cell survives only at/above the score
            // threshold (and never below the floor); a far tagged
            // aggregate only at/above the threshold.
            let cut = match targets[ti].kind {
                TableMentionKind::SingleCell => cfg.score_floor.max(cfg.score_threshold),
                TableMentionKind::Aggregate(_) => cfg.score_threshold,
            };
            debug_assert_eq!(
                cut,
                static_cut(row, &targets[ti], tags, cfg),
                "kind-derived far cut must match the row's static cut"
            );
            self.block.extend_from_slice(row);
            self.block_tis.push(ti);
            self.cuts.push(cut.min(fifth));
        }
        self.score_deferred_block(targets, tags, flat);
    }

    /// Shared phase-B tail: run the bounded kernel over the gathered
    /// block and fold survivors into `computed` (with their viability)
    /// and pruned rows into `pruned`.
    fn score_deferred_block(
        &mut self,
        targets: &[TableMention],
        tags: &[AggregationKind],
        flat: &briq_ml::FlatForest,
    ) {
        let n = self.block_tis.len();
        self.out.clear();
        self.out.resize(n, 0.0);
        self.pruned_flags.clear();
        self.pruned_flags.resize(n, false);
        flat.score_block_bounded(
            &self.block,
            FEATURE_COUNT,
            &self.cuts,
            &mut self.out,
            &mut self.pruned_flags,
        );
        for (i, &ti) in self.block_tis.iter().enumerate() {
            if self.pruned_flags[i] {
                self.pairs_pruned += 1;
                self.pruned.push(ti);
            } else {
                self.rows_scored_bounded += 1;
                let s = self.out[i];
                let row = &self.block[i * FEATURE_COUNT..(i + 1) * FEATURE_COUNT];
                self.cache.insert(row_key(row), s);
                self.computed.push((ti, s));
                self.viable_flags.push(is_viable(row, &targets[ti], tags));
            }
        }
    }

    /// Scores of the viable computed pairs — the exact multiset the
    /// mention-type vote ranks.
    fn viable_scores(&self) -> impl Iterator<Item = f64> + '_ {
        self.computed
            .iter()
            .zip(&self.viable_flags)
            .filter(|&(_, &v)| v)
            .map(|(&(_, s), _)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn fifth_highest_thresholds() {
        assert_eq!(fifth_highest([].into_iter()), f64::NEG_INFINITY);
        assert_eq!(
            fifth_highest([0.9, 0.8, 0.7, 0.6].into_iter()),
            f64::NEG_INFINITY,
            "fewer than five scores must not enable vote pruning"
        );
        assert_eq!(fifth_highest([0.9, 0.8, 0.7, 0.6, 0.5].into_iter()), 0.5);
        assert_eq!(
            fifth_highest([0.1, 0.9, 0.8, 0.2, 0.7, 0.6, 0.5].into_iter()),
            0.5
        );
        // Duplicates: the fifth-highest of the multiset.
        assert_eq!(
            fifth_highest([0.9, 0.9, 0.9, 0.9, 0.9, 0.1].into_iter()),
            0.9
        );
    }

    #[test]
    fn row_keys_are_bit_exact() {
        let a = [0.0f64; FEATURE_COUNT];
        let mut b = [0.0f64; FEATURE_COUNT];
        b[3] = -0.0;
        assert_ne!(row_key(&a), row_key(&b), "-0.0 and 0.0 must key apart");
        assert_eq!(row_key(&a), row_key(a.as_ref()));
    }

    #[test]
    fn row_hasher_spreads_keys() {
        let build = BuildHasherDefault::<RowHasher>::default();
        let mut row = [0.5f64; FEATURE_COUNT];
        let h1 = build.hash_one(row_key(&row));
        row[0] = 0.5000001;
        let h2 = build.hash_one(row_key(&row));
        assert_ne!(h1, h2);
    }
}
