//! The mention-pair classifier (§IV): a class-weighted Random Forest over
//! the 12-feature vectors, with an ablation mask.

use briq_ml::{Dataset, FlatForest, RandomForest, RandomForestConfig};

use crate::features::FeatureMask;

/// A trained mention-pair classifier.
///
/// Scoring runs on a flattened copy of the forest with the ablation mask
/// baked in ([`FlatForest::from_forest_masked`]), so [`PairClassifier::score`]
/// neither copies the feature row nor allocates — bit-identical to the
/// former copy-mask-traverse path. The recursive forest is kept alongside
/// for serialization and diagnostics.
#[derive(Debug, Clone)]
pub struct PairClassifier {
    forest: RandomForest,
    mask: FeatureMask,
    flat: FlatForest,
}

impl PairClassifier {
    /// Train on a dataset of 12-feature vectors. The mask restricts which
    /// features trees may split on and is remembered for scoring — the
    /// training matrix is NOT copied to apply it. Class weights should
    /// already be applied to `data` (see [`Dataset::apply_class_weights`]).
    pub fn train(data: &Dataset, rf: RandomForestConfig, mask: FeatureMask) -> PairClassifier {
        let forest = RandomForest::fit_masked(data, rf, |f| mask.keeps(f));
        Self::from_parts(forest, mask)
    }

    /// Assemble a classifier from a forest and its mask, building the
    /// mask-baked flat scoring layout.
    fn from_parts(forest: RandomForest, mask: FeatureMask) -> PairClassifier {
        let flat = FlatForest::from_forest_masked(&forest, |f| mask.keeps(f));
        PairClassifier { forest, mask, flat }
    }

    /// Confidence that the pair is related, in `[0, 1]`. Allocation-free:
    /// the mask is pre-baked into the flat forest layout.
    pub fn score(&self, features: &[f64]) -> f64 {
        self.flat.predict_proba_slice(features)
    }

    /// The ablation mask in force.
    pub fn mask(&self) -> FeatureMask {
        self.mask
    }

    /// The mask-baked flat scoring layout — the batched entry point for
    /// [`FlatForest::score_block`] and [`FlatForest::score_block_bounded`]
    /// (see [`crate::scoring`]). Scoring through it is bit-identical to
    /// [`PairClassifier::score`] row by row.
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }

    /// The underlying recursive forest (reference scoring path for the
    /// equivalence suite, and diagnostics).
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Number of trees (diagnostics).
    pub fn n_trees(&self) -> usize {
        self.forest.n_trees()
    }
}

// The serialized form stays `{forest, mask}` exactly as `json_struct!`
// produced before the flat layout existed — the flat arrays are derived
// state, rebuilt on deserialization.
impl briq_json::ToJson for PairClassifier {
    fn to_json(&self) -> briq_json::Value {
        briq_json::Value::Object(vec![
            ("forest".to_string(), self.forest.to_json()),
            ("mask".to_string(), self.mask.to_json()),
        ])
    }
}

impl briq_json::FromJson for PairClassifier {
    fn from_json(v: &briq_json::Value) -> briq_json::Result<Self> {
        let obj = v
            .as_object()
            .ok_or_else(|| briq_json::JsonError::new("expected PairClassifier object"))?;
        let forest: RandomForest = briq_json::field(obj, "forest")?;
        let mask: FeatureMask = briq_json::field(obj, "mask")?;
        Ok(Self::from_parts(forest, mask))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_COUNT;

    /// Synthetic pair data: "related" iff value distance (f6 at index 5)
    /// is small and surface similarity (f1 at index 0) is high.
    fn synth(n: usize, seed: u64) -> Dataset {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let related = rng.random_bool(0.3);
            let mut row = vec![0.0; FEATURE_COUNT];
            row[0] = if related {
                rng.random_range(0.7..1.0)
            } else {
                rng.random_range(0.0..0.8)
            };
            row[5] = if related {
                rng.random_range(0.0..0.1)
            } else {
                rng.random_range(0.05..1.0)
            };
            row[1] = rng.random_range(0.0..1.0);
            d.push(row, related);
        }
        d.apply_class_weights();
        d
    }

    #[test]
    fn learns_synthetic_signal() {
        let train = synth(500, 1);
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), FeatureMask::all());
        let mut strong = vec![0.0; FEATURE_COUNT];
        strong[0] = 0.95;
        strong[5] = 0.01;
        let mut weak = vec![0.0; FEATURE_COUNT];
        weak[0] = 0.2;
        weak[5] = 0.8;
        assert!(clf.score(&strong) > 0.6, "{}", clf.score(&strong));
        assert!(clf.score(&weak) < 0.4, "{}", clf.score(&weak));
    }

    #[test]
    fn mask_disables_features_at_scoring_time() {
        let train = synth(500, 2);
        let mask = FeatureMask {
            surface: false,
            context: true,
            quantity: false,
        };
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), mask);
        // With surface and quantity masked, the two probe rows that only
        // differ in f1/f6 must score identically.
        let mut a = vec![0.0; FEATURE_COUNT];
        a[0] = 0.95;
        a[5] = 0.01;
        let mut b = vec![0.0; FEATURE_COUNT];
        b[0] = 0.1;
        b[5] = 0.9;
        assert_eq!(clf.score(&a), clf.score(&b));
        assert_eq!(clf.mask(), mask);
    }

    #[test]
    fn flat_scoring_matches_reference_forest_path() {
        let train = synth(500, 4);
        let mask = FeatureMask {
            surface: true,
            context: false,
            quantity: true,
        };
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), mask);
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let row: Vec<f64> = (0..FEATURE_COUNT)
                .map(|_| rng.random_range(0.0..1.0))
                .collect();
            // Reference path: copy, mask, recursive traversal.
            let mut masked = row.clone();
            clf.mask().apply(&mut masked);
            assert_eq!(clf.score(&row), clf.forest().predict_proba(&masked));
        }
    }

    #[test]
    fn json_round_trip_preserves_scores_and_shape() {
        let train = synth(300, 6);
        let mask = FeatureMask {
            surface: false,
            context: true,
            quantity: true,
        };
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), mask);
        let s = briq_json::to_string(&clf);
        assert!(s.contains("\"forest\""));
        assert!(s.contains("\"mask\""));
        assert!(!s.contains("\"flat\""), "derived state must not serialize");
        let back: PairClassifier = briq_json::from_str(&s).expect("round-trips");
        assert_eq!(back.mask(), clf.mask());
        assert_eq!(back.n_trees(), clf.n_trees());
        let probe = vec![0.4; FEATURE_COUNT];
        assert_eq!(back.score(&probe), clf.score(&probe));
        // Round-tripping again yields identical bytes.
        assert_eq!(briq_json::to_string(&back), s);
    }

    #[test]
    fn scores_bounded() {
        let train = synth(200, 3);
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), FeatureMask::all());
        for _ in 0..10 {
            let row = vec![0.5; FEATURE_COUNT];
            let s = clf.score(&row);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
