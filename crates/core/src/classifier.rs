//! The mention-pair classifier (§IV): a class-weighted Random Forest over
//! the 12-feature vectors, with an ablation mask.

use briq_ml::{Dataset, RandomForest, RandomForestConfig};

use crate::features::FeatureMask;

/// A trained mention-pair classifier.
#[derive(Debug, Clone)]
pub struct PairClassifier {
    forest: RandomForest,
    mask: FeatureMask,
}

impl PairClassifier {
    /// Train on a dataset of 12-feature vectors. The mask is applied to
    /// the training rows and remembered for scoring. Class weights should
    /// already be applied to `data` (see [`Dataset::apply_class_weights`]).
    pub fn train(data: &Dataset, rf: RandomForestConfig, mask: FeatureMask) -> PairClassifier {
        let mut masked = data.clone();
        for row in &mut masked.features {
            mask.apply(row);
        }
        PairClassifier {
            forest: RandomForest::fit(&masked, rf),
            mask,
        }
    }

    /// Confidence that the pair is related, in `[0, 1]`.
    pub fn score(&self, features: &[f64]) -> f64 {
        let mut row = features.to_vec();
        self.mask.apply(&mut row);
        self.forest.predict_proba(&row)
    }

    /// The ablation mask in force.
    pub fn mask(&self) -> FeatureMask {
        self.mask
    }

    /// Number of trees (diagnostics).
    pub fn n_trees(&self) -> usize {
        self.forest.n_trees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_COUNT;

    /// Synthetic pair data: "related" iff value distance (f6 at index 5)
    /// is small and surface similarity (f1 at index 0) is high.
    fn synth(n: usize, seed: u64) -> Dataset {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let related = rng.random_bool(0.3);
            let mut row = vec![0.0; FEATURE_COUNT];
            row[0] = if related {
                rng.random_range(0.7..1.0)
            } else {
                rng.random_range(0.0..0.8)
            };
            row[5] = if related {
                rng.random_range(0.0..0.1)
            } else {
                rng.random_range(0.05..1.0)
            };
            row[1] = rng.random_range(0.0..1.0);
            d.push(row, related);
        }
        d.apply_class_weights();
        d
    }

    #[test]
    fn learns_synthetic_signal() {
        let train = synth(500, 1);
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), FeatureMask::all());
        let mut strong = vec![0.0; FEATURE_COUNT];
        strong[0] = 0.95;
        strong[5] = 0.01;
        let mut weak = vec![0.0; FEATURE_COUNT];
        weak[0] = 0.2;
        weak[5] = 0.8;
        assert!(clf.score(&strong) > 0.6, "{}", clf.score(&strong));
        assert!(clf.score(&weak) < 0.4, "{}", clf.score(&weak));
    }

    #[test]
    fn mask_disables_features_at_scoring_time() {
        let train = synth(500, 2);
        let mask = FeatureMask {
            surface: false,
            context: true,
            quantity: false,
        };
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), mask);
        // With surface and quantity masked, the two probe rows that only
        // differ in f1/f6 must score identically.
        let mut a = vec![0.0; FEATURE_COUNT];
        a[0] = 0.95;
        a[5] = 0.01;
        let mut b = vec![0.0; FEATURE_COUNT];
        b[0] = 0.1;
        b[5] = 0.9;
        assert_eq!(clf.score(&a), clf.score(&b));
        assert_eq!(clf.mask(), mask);
    }

    #[test]
    fn scores_bounded() {
        let train = synth(200, 3);
        let clf = PairClassifier::train(&train, RandomForestConfig::default(), FeatureMask::all());
        for _ in 0..10 {
            let row = vec![0.5; FEATURE_COUNT];
            let s = clf.score(&row);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}

briq_json::json_struct!(PairClassifier { forest, mask });
