//! Candidate alignment graph construction (§VI-A).
//!
//! Nodes are quantity mentions: the document's text mentions, its
//! single-cell table mentions, and any virtual-cell mentions that survived
//! adaptive filtering. Three edge families:
//!
//! * **text–text** — mentions in textual proximity or with similar surface
//!   forms; weight `λ1·f_prox + λ2·f_strsim`;
//! * **table–table** — table mentions sharing a row or column of the same
//!   table (uniform weight); virtual cells additionally connect to their
//!   member cells;
//! * **text–table** — the surviving candidate pairs, weighted by the
//!   classifier confidence (the informed prior).
//!
//! After construction the walk normalizes each node's outgoing weights.

use briq_graph::Graph;
use briq_table::{TableMention, TableMentionKind};
use std::collections::BTreeMap;

use crate::filtering::Candidate;
use crate::jaro::jaro_winkler;
use crate::mention::TextMention;

/// Graph-construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Weight of textual proximity in text-text edges (λ1).
    pub lambda_proximity: f64,
    /// Weight of surface similarity in text-text edges (λ2).
    pub lambda_similarity: f64,
    /// Maximum token distance for proximity edges.
    pub proximity_window: usize,
    /// Minimum Jaro-Winkler similarity for similarity-only edges.
    pub similarity_threshold: f64,
    /// Uniform weight of table-table edges.
    pub table_edge_weight: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            lambda_proximity: 0.6,
            lambda_similarity: 0.4,
            proximity_window: 40,
            similarity_threshold: 0.85,
            table_edge_weight: 1.0,
        }
    }
}

/// The constructed graph plus the node-id mapping.
#[derive(Debug, Clone)]
pub struct AlignmentGraph {
    /// The undirected weighted graph.
    pub graph: Graph,
    /// Node id of text mention `i` (identity: text mentions come first).
    pub text_nodes: Vec<usize>,
    /// Node id per table-mention index (only for included mentions).
    pub table_nodes: BTreeMap<usize, usize>,
}

impl AlignmentGraph {
    /// Node id for table-mention index `ti`, if included.
    pub fn table_node(&self, ti: usize) -> Option<usize> {
        self.table_nodes.get(&ti).copied()
    }
}

/// Build the alignment graph.
///
/// * `mentions` — the document's text mentions (with token indices in
///   `token_positions`, parallel).
/// * `doc_tokens` — total token count of the document (proximity scaling).
/// * `targets` — all table mentions of the document.
/// * `candidates` — per text mention, the surviving scored candidates.
pub fn build_graph(
    mentions: &[TextMention],
    token_positions: &[usize],
    doc_tokens: usize,
    targets: &[TableMention],
    candidates: &[Vec<Candidate>],
    cfg: &GraphConfig,
) -> AlignmentGraph {
    build_graph_budgeted(
        mentions,
        token_positions,
        doc_tokens,
        targets,
        candidates,
        cfg,
        usize::MAX,
    )
    .0
}

/// Tracks how many more edges construction may add. The text-text family
/// is quadratic in the mention count, so a pathological page (thousands
/// of numerals in one paragraph) would otherwise allocate millions of
/// edges before the walk even starts.
struct EdgeBudget {
    left: usize,
    truncated: bool,
}

impl EdgeBudget {
    /// Charge one edge; `false` once the budget is exhausted.
    fn take(&mut self) -> bool {
        if self.left == 0 {
            self.truncated = true;
            return false;
        }
        self.left -= 1;
        true
    }
}

/// Budgeted variant of [`build_graph`]: stops adding edges once
/// `max_edges` exist and reports whether it had to. Edge families are
/// inserted in the same order as the unbudgeted builder (text-text,
/// table-table, text-table), so an unlimited budget is bit-identical.
pub fn build_graph_budgeted(
    mentions: &[TextMention],
    token_positions: &[usize],
    doc_tokens: usize,
    targets: &[TableMention],
    candidates: &[Vec<Candidate>],
    cfg: &GraphConfig,
    max_edges: usize,
) -> (AlignmentGraph, bool) {
    let mut budget = EdgeBudget {
        left: max_edges,
        truncated: false,
    };
    let m = mentions.len();
    let mut graph = Graph::new(m);
    let text_nodes: Vec<usize> = (0..m).collect();

    // Which table mentions become nodes: all single cells + kept virtuals.
    let mut include: Vec<usize> = targets
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind == TableMentionKind::SingleCell)
        .map(|(i, _)| i)
        .collect();
    for cands in candidates {
        for c in cands {
            if targets[c.target].kind != TableMentionKind::SingleCell {
                include.push(c.target);
            }
        }
    }
    include.sort_unstable();
    include.dedup();

    let mut table_nodes = BTreeMap::new();
    for &ti in &include {
        table_nodes.insert(ti, graph.add_node());
    }

    // text-text edges
    let len = doc_tokens.max(1) as f64;
    'text_text: for i in 0..m {
        for j in (i + 1)..m {
            let dist = token_positions[i].abs_diff(token_positions[j]);
            let sim = jaro_winkler(
                &mentions[i].quantity.raw.to_lowercase(),
                &mentions[j].quantity.raw.to_lowercase(),
            );
            let near = dist <= cfg.proximity_window;
            let similar = sim >= cfg.similarity_threshold;
            if near || similar {
                if !budget.take() {
                    break 'text_text;
                }
                let f_prox = 1.0 - (dist as f64 / len).min(1.0);
                let w = cfg.lambda_proximity * f_prox + cfg.lambda_similarity * sim;
                graph.add_edge(i, j, w);
            }
        }
    }

    // table-table edges: same row or same column of the same table.
    'table_table: for (a_pos, &a) in include.iter().enumerate() {
        for &b in include.iter().skip(a_pos + 1) {
            let (ta, tb) = (&targets[a], &targets[b]);
            if ta.table != tb.table {
                continue;
            }
            let related = share_line(ta, tb) || member_of(ta, tb) || member_of(tb, ta);
            if related {
                if !budget.take() {
                    break 'table_table;
                }
                graph.add_edge(table_nodes[&a], table_nodes[&b], cfg.table_edge_weight);
            }
        }
    }

    // text-table edges: classifier priors.
    'text_table: for (i, cands) in candidates.iter().enumerate() {
        for c in cands {
            if let Some(&tn) = table_nodes.get(&c.target) {
                if !budget.take() {
                    break 'text_table;
                }
                // scores can be 0 for heuristic priors; keep a tiny floor
                graph.add_edge(i, tn, c.score.max(1e-6));
            }
        }
    }

    (
        AlignmentGraph {
            graph,
            text_nodes,
            table_nodes,
        },
        budget.truncated,
    )
}

/// Two single-cell mentions share a row or column.
fn share_line(a: &TableMention, b: &TableMention) -> bool {
    if a.kind != TableMentionKind::SingleCell || b.kind != TableMentionKind::SingleCell {
        return false;
    }
    let (ar, ac) = a.cells[0];
    let (br, bc) = b.cells[0];
    ar == br || ac == bc
}

/// Is `cell` one of aggregate `agg`'s member cells?
fn member_of(agg: &TableMention, cell: &TableMention) -> bool {
    agg.kind != TableMentionKind::SingleCell
        && cell.kind == TableMentionKind::SingleCell
        && agg.cells.contains(&cell.cells[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_text::cues::AggregationKind;
    use briq_text::quantity::QuantityMention;
    use briq_text::units::Unit;

    fn mention(id: usize, value: f64, start: usize) -> TextMention {
        TextMention {
            id,
            quantity: QuantityMention {
                raw: format!("{value}"),
                value,
                unnormalized: value,
                unit: Unit::None,
                precision: 0,
                approx: Default::default(),
                start,
                end: start + 2,
            },
        }
    }

    fn cell(table: usize, r: usize, c: usize, value: f64) -> TableMention {
        TableMention {
            table,
            kind: TableMentionKind::SingleCell,
            cells: vec![(r, c)],
            value,
            unnormalized: value,
            raw: format!("{value}"),
            unit: Unit::None,
            precision: 0,
            orientation: None,
        }
    }

    fn agg(table: usize, cells: Vec<(usize, usize)>, value: f64) -> TableMention {
        TableMention {
            table,
            kind: TableMentionKind::Aggregate(AggregationKind::Sum),
            cells,
            value,
            unnormalized: value,
            raw: "sum".into(),
            unit: Unit::None,
            precision: 0,
            orientation: Some(briq_table::Orientation::Column(1)),
        }
    }

    fn setup() -> (Vec<TextMention>, Vec<TableMention>, Vec<Vec<Candidate>>) {
        let mentions = vec![mention(0, 5.0, 0), mention(1, 11.0, 10)];
        let targets = vec![
            cell(0, 1, 1, 5.0),
            cell(0, 2, 1, 6.0),
            cell(0, 1, 2, 7.0),
            agg(0, vec![(1, 1), (2, 1)], 11.0),
        ];
        let candidates = vec![
            vec![Candidate {
                target: 0,
                score: 0.9,
            }],
            vec![Candidate {
                target: 3,
                score: 0.7,
            }],
        ];
        (mentions, targets, candidates)
    }

    #[test]
    fn nodes_cover_text_singles_and_kept_virtuals() {
        let (mentions, targets, candidates) = setup();
        let g = build_graph(
            &mentions,
            &[0, 3],
            20,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        // 2 text + 3 single cells + 1 kept aggregate
        assert_eq!(g.graph.len(), 6);
        assert!(g.table_node(3).is_some());
    }

    #[test]
    fn unkept_virtuals_not_nodes() {
        let (mentions, targets, mut candidates) = setup();
        candidates[1].clear();
        let g = build_graph(
            &mentions,
            &[0, 3],
            20,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        assert_eq!(g.graph.len(), 5);
        assert!(g.table_node(3).is_none());
    }

    #[test]
    fn text_text_edge_for_near_mentions() {
        let (mentions, targets, candidates) = setup();
        let g = build_graph(
            &mentions,
            &[0, 3],
            20,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        assert!(g.graph.edge_weight(0, 1).is_some());
    }

    #[test]
    fn far_dissimilar_mentions_not_connected() {
        let (mut mentions, targets, candidates) = setup();
        mentions[1].quantity.raw = "99999".into();
        let g = build_graph(
            &mentions,
            &[0, 500],
            1000,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        assert!(g.graph.edge_weight(0, 1).is_none());
    }

    #[test]
    fn table_table_edges_same_row_or_col() {
        let (mentions, targets, candidates) = setup();
        let g = build_graph(
            &mentions,
            &[0, 3],
            20,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let n0 = g.table_node(0).unwrap(); // (1,1)
        let n1 = g.table_node(1).unwrap(); // (2,1) same column
        let n2 = g.table_node(2).unwrap(); // (1,2) same row as (1,1)
        assert!(g.graph.edge_weight(n0, n1).is_some());
        assert!(g.graph.edge_weight(n0, n2).is_some());
        // (2,1) and (1,2): no shared line
        assert!(g.graph.edge_weight(n1, n2).is_none());
    }

    #[test]
    fn aggregate_connects_to_members() {
        let (mentions, targets, candidates) = setup();
        let g = build_graph(
            &mentions,
            &[0, 3],
            20,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let sum_node = g.table_node(3).unwrap();
        let member = g.table_node(0).unwrap();
        let nonmember = g.table_node(2).unwrap();
        assert!(g.graph.edge_weight(sum_node, member).is_some());
        assert!(g.graph.edge_weight(sum_node, nonmember).is_none());
    }

    #[test]
    fn edge_budget_truncates_construction() {
        let (mentions, targets, candidates) = setup();
        let cfg = GraphConfig::default();
        let (full, t_full) = build_graph_budgeted(
            &mentions,
            &[0, 3],
            20,
            &targets,
            &candidates,
            &cfg,
            usize::MAX,
        );
        assert!(!t_full);
        let total = full.graph.edge_count();
        assert!(total > 1, "setup should produce several edges, got {total}");
        let (capped, truncated) =
            build_graph_budgeted(&mentions, &[0, 3], 20, &targets, &candidates, &cfg, 1);
        assert!(truncated);
        assert_eq!(capped.graph.edge_count(), 1);
        // Zero budget still yields a usable (edgeless) graph.
        let (bare, truncated) =
            build_graph_budgeted(&mentions, &[0, 3], 20, &targets, &candidates, &cfg, 0);
        assert!(truncated);
        assert_eq!(bare.graph.edge_count(), 0);
        assert_eq!(bare.graph.len(), full.graph.len());
    }

    #[test]
    fn text_table_edges_use_scores() {
        let (mentions, targets, candidates) = setup();
        let g = build_graph(
            &mentions,
            &[0, 3],
            20,
            &targets,
            &candidates,
            &GraphConfig::default(),
        );
        let n0 = g.table_node(0).unwrap();
        assert_eq!(g.graph.edge_weight(0, n0), Some(0.9));
    }
}

briq_json::json_struct!(GraphConfig {
    lambda_proximity,
    lambda_similarity,
    proximity_window,
    similarity_threshold,
    table_edge_weight,
});
