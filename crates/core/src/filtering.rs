//! Adaptive filtering (§V): reduce thousands of candidate pairs to the
//! hundreds global resolution can afford, without losing true targets.
//!
//! Order of operations per text mention:
//! 1. **Tag-based pruning** — keep all single-cell candidates; keep an
//!    aggregate candidate only when its aggregation function matches the
//!    tagger's prediction for the mention.
//! 2. **Value/unit pruning** — drop pairs whose values differ by more than
//!    `v` while the classifier score is below `p`; drop pairs whose
//!    specified units disagree.
//! 3. **Adaptive top-k** — pick k from the mention type (exact mentions
//!    need fewer candidates than approximate/truncated ones) and from the
//!    entropy of the score distribution (§V-B).

use briq_ml::entropy::normalized_entropy;
use briq_table::{TableMention, TableMentionKind};
use briq_text::cues::{AggregationKind, ApproxIndicator};
use std::collections::BTreeMap;

use crate::mention::TextMention;

/// A surviving candidate pair: target table-mention index plus the
/// classifier's confidence (the prior `σ` of §VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index into the document's table-mention list.
    pub target: usize,
    /// Classifier confidence score.
    pub score: f64,
}

/// Filtering parameters (`v`, `p`, `k…` are tuned on validation data).
#[derive(Debug, Clone, Copy)]
pub struct FilterConfig {
    /// Value-difference threshold `v` (relative difference).
    pub value_diff_threshold: f64,
    /// Score threshold `p` below which large value differences are pruned.
    pub score_threshold: f64,
    /// Top-k for exact mentions.
    pub k_exact: usize,
    /// Top-k for approximate/truncated mentions.
    pub k_approx: usize,
    /// Top-k under low entropy (skewed scores).
    pub k_small: usize,
    /// Top-k under high entropy (near-ties).
    pub k_large: usize,
    /// Normalized-entropy threshold separating the two regimes.
    pub entropy_threshold: f64,
    /// Candidates with classifier score below this floor are dropped
    /// outright (speed guard; 0 disables).
    pub score_floor: f64,
}

impl Default for FilterConfig {
    fn default() -> Self {
        FilterConfig {
            value_diff_threshold: 0.35,
            score_threshold: 0.5,
            k_exact: 3,
            k_approx: 6,
            k_small: 3,
            k_large: 8,
            entropy_threshold: 0.75,
            score_floor: 0.02,
        }
    }
}

/// Mention type for top-k selection (§V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MentionType {
    /// The mention value matches candidates exactly.
    Exact,
    /// Approximate (modifier present or no exact candidate).
    Approximate,
}

/// Classify a text mention as exact/approximate using its modifiers, then
/// by majority vote over high-confidence candidates (§V-B).
pub fn mention_type(
    x: &TextMention,
    candidates: &[(usize, f64)],
    targets: &[TableMention],
) -> MentionType {
    match x.quantity.approx {
        ApproxIndicator::Exact => return MentionType::Exact,
        ApproxIndicator::Approximate
        | ApproxIndicator::UpperBound
        | ApproxIndicator::LowerBound => return MentionType::Approximate,
        ApproxIndicator::None => {}
    }
    // Majority vote among the top-5 scored candidates: exact value match?
    // Ranked under a total order (score descending, then target index) so
    // ties and non-finite scores cannot perturb the vote.
    let mut ranked: Vec<&(usize, f64)> = candidates.iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let top = &ranked[..ranked.len().min(5)];
    if top.is_empty() {
        return MentionType::Approximate;
    }
    let exact = top
        .iter()
        .filter(|(t, _)| {
            let tv = targets[*t].value;
            tv == x.quantity.value || targets[*t].unnormalized == x.quantity.unnormalized
        })
        .count();
    if exact * 2 >= top.len() {
        MentionType::Exact
    } else {
        MentionType::Approximate
    }
}

/// Per-kind selectivity statistics (Table VI).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterStats {
    /// Candidate pairs seen by the classifier, per target kind.
    pub total: BTreeMap<String, usize>,
    /// Pairs surviving the filter, per target kind.
    pub kept: BTreeMap<String, usize>,
}

impl FilterStats {
    fn record(&mut self, kind: TableMentionKind, kept: bool) {
        *self.total.entry(kind.name().to_string()).or_insert(0) += 1;
        if kept {
            *self.kept.entry(kind.name().to_string()).or_insert(0) += 1;
        }
    }

    /// Bulk-account `n` candidate pairs of kind `kind_name` that the
    /// retrieval index proved non-viable and never handed to the
    /// classifier: they enter `total` (the classifier *would* have seen
    /// them on the exhaustive path) but never `kept`, so selectivity
    /// figures stay comparable with `BRIQ_NO_INDEX=1` runs.
    pub fn record_dropped(&mut self, kind_name: &str, n: usize) {
        *self.total.entry(kind_name.to_string()).or_insert(0) += n;
    }

    /// Merge another stats object into this one.
    pub fn merge(&mut self, other: &FilterStats) {
        for (k, v) in &other.total {
            *self.total.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.kept {
            *self.kept.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Selectivity (kept / total) for a kind name; `None` if unseen.
    pub fn selectivity(&self, kind: &str) -> Option<f64> {
        let t = *self.total.get(kind)?;
        if t == 0 {
            return None;
        }
        Some(*self.kept.get(kind).unwrap_or(&0) as f64 / t as f64)
    }

    /// Overall selectivity.
    pub fn overall_selectivity(&self) -> f64 {
        let t: usize = self.total.values().sum();
        if t == 0 {
            return 0.0;
        }
        self.kept.values().sum::<usize>() as f64 / t as f64
    }

    /// Emit the per-kind totals into an observability recorder (a no-op
    /// on a disabled recorder): `filter_total.<kind>` /
    /// `filter_kept.<kind>` counters plus the overall `candidates_kept`.
    pub fn record_into(&self, rec: &crate::obs::Recorder) {
        use crate::obs::names;
        if !rec.is_enabled() {
            return;
        }
        for (kind, &n) in &self.total {
            rec.count(&format!("{}{kind}", names::FILTER_TOTAL_PREFIX), n as u64);
        }
        for (kind, &n) in &self.kept {
            rec.count(&format!("{}{kind}", names::FILTER_KEPT_PREFIX), n as u64);
        }
        rec.count(
            names::CANDIDATES_KEPT,
            self.kept.values().sum::<usize>() as u64,
        );
    }
}

/// Apply adaptive filtering for one text mention.
///
/// `scored`: every `(target index, classifier score)` pair for the
/// mention. `tags`: the tagger's predictions (empty = single cell).
///
/// Following §V-A, single-cell and aggregate candidates are treated
/// differently: aggregate candidates survive only when their aggregation
/// function matches a predicted tag (value/unit pruning still applies,
/// plus a generous cap for the quadratic pair aggregates); single-cell
/// candidates are never tag-pruned but go through value/unit pruning and
/// the adaptive top-k ("further pruning steps for the single-cell cases").
/// Returns surviving candidates sorted by descending score.
pub fn filter_mention(
    x: &TextMention,
    scored: &[(usize, f64)],
    targets: &[TableMention],
    tags: &[AggregationKind],
    cfg: &FilterConfig,
    stats: &mut FilterStats,
) -> Vec<Candidate> {
    filter_mention_pruned(x, scored, &[], targets, tags, cfg, stats)
}

/// [`filter_mention`] over a partially scored candidate set: `computed`
/// holds the exactly scored `(target index, score)` pairs and `pruned`
/// the target indices whose scoring was abandoned by the bound-based
/// pruning engine.
///
/// Exactness contract (upheld by the caller, `scoring`): a non-viable
/// pruned pair (unit strong-mismatch, or untagged aggregate) has keep
/// decision `false` at any score and is excluded from the vote, so it may
/// be abandoned unconditionally; a viable pruned pair's true score is
/// strictly below both (a) the smallest score at which it could pass
/// value/unit pruning and the score floor, so its keep decision is
/// `false` without computing it, and (b) the fifth-highest *viable*
/// computed score when the mention-type vote looks at scores at all, so
/// it can never appear in [`mention_type`]'s top-5 (at least five viable
/// computed pairs outrank it under the total order). Kept candidates are
/// therefore always exactly scored, the entropy input (kept singles) is
/// unchanged, and the result is identical to [`filter_mention`] over the
/// fully scored set. With `pruned` empty this *is* [`filter_mention`].
pub fn filter_mention_pruned(
    x: &TextMention,
    computed: &[(usize, f64)],
    pruned: &[usize],
    targets: &[TableMention],
    tags: &[AggregationKind],
    cfg: &FilterConfig,
    stats: &mut FilterStats,
) -> Vec<Candidate> {
    let scored = computed;
    for &ti in pruned {
        stats.record(targets[ti].kind, false);
    }
    let mut singles: Vec<(usize, f64)> = Vec::new();
    let mut aggregates: Vec<(usize, f64)> = Vec::new();

    let value_ok = |t: &TableMention, score: f64| {
        let vd = crate::features::relative_difference(x.quantity.value, t.value);
        !(vd > cfg.value_diff_threshold && score < cfg.score_threshold)
    };
    let unit_ok = |t: &TableMention| {
        !(x.quantity.unit.is_specified()
            && t.unit.is_specified()
            && !x.quantity.unit.matches(t.unit))
    };

    for &(ti, score) in scored {
        let t = &targets[ti];
        match t.kind {
            TableMentionKind::SingleCell => {
                let keep = score >= cfg.score_floor && value_ok(t, score) && unit_ok(t);
                stats.record(t.kind, keep);
                if keep {
                    singles.push((ti, score));
                }
            }
            TableMentionKind::Aggregate(k) => {
                let keep = tags.contains(&k) && value_ok(t, score) && unit_ok(t);
                stats.record(t.kind, keep);
                if keep {
                    aggregates.push((ti, score));
                }
            }
        }
    }

    // Total order: score descending, ties broken by ascending target
    // index. `total_cmp` gives NaN a defined rank, so a degenerate score
    // can never make the comparator inconsistent, and the explicit
    // tiebreak makes the truncation cut deterministic by construction
    // rather than by stable-sort insertion order.
    let by_score = |a: &(usize, f64), b: &(usize, f64)| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0));

    // Cap the (quadratic) pair aggregates at a generous bound.
    aggregates.sort_by(by_score);
    let agg_cap = cfg.k_large * 3;
    for &(ti, _) in aggregates.iter().skip(agg_cap) {
        decrement(stats, targets[ti].kind);
    }
    aggregates.truncate(agg_cap);

    // Adaptive top-k over single cells. The mention-type vote polls only
    // *viable* pairs — those the value/unit/tag predicates could keep at
    // some score — so provably dead pairs (unit strong-mismatches,
    // untagged aggregates) can neither sway the exact-vs-approximate
    // majority nor need scoring on the retrieval path.
    singles.sort_by(by_score);
    let viable: Vec<(usize, f64)> = scored
        .iter()
        .copied()
        .filter(|&(ti, _)| {
            let t = &targets[ti];
            unit_ok(t)
                && match t.kind {
                    TableMentionKind::SingleCell => true,
                    TableMentionKind::Aggregate(k) => tags.contains(&k),
                }
        })
        .collect();
    let k_type = match mention_type(x, &viable, targets) {
        MentionType::Exact => cfg.k_exact,
        MentionType::Approximate => cfg.k_approx,
    };
    let scores: Vec<f64> = singles.iter().map(|&(_, s)| s).collect();
    let k_entropy = if normalized_entropy(&scores) < cfg.entropy_threshold {
        cfg.k_small
    } else {
        cfg.k_large
    };
    let k = k_type.max(k_entropy);
    for &(ti, _) in singles.iter().skip(k) {
        decrement(stats, targets[ti].kind);
    }
    singles.truncate(k);

    let mut out: Vec<Candidate> = singles
        .into_iter()
        .chain(aggregates)
        .map(|(target, score)| Candidate { target, score })
        .collect();
    // Stable score-only sort: equal-score singles stay ahead of
    // aggregates (their insertion order), which the resolution stage's
    // edge ordering relies on.
    out.sort_by(|a, b| b.score.total_cmp(&a.score));
    out
}

fn decrement(stats: &mut FilterStats, kind: TableMentionKind) {
    if let Some(c) = stats.kept.get_mut(kind.name()) {
        *c = c.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_text::quantity::QuantityMention;
    use briq_text::units::{Currency, Unit};

    fn mention(value: f64, approx: ApproxIndicator, unit: Unit) -> TextMention {
        TextMention {
            id: 0,
            quantity: QuantityMention {
                raw: crate::features::format_value(value),
                value,
                unnormalized: value,
                unit,
                precision: 0,
                approx,
                start: 0,
                end: 4,
            },
        }
    }

    fn target(value: f64, kind: TableMentionKind, unit: Unit) -> TableMention {
        TableMention {
            table: 0,
            kind,
            cells: vec![(1, 1)],
            value,
            unnormalized: value,
            raw: crate::features::format_value(value),
            unit,
            precision: 0,
            orientation: None,
        }
    }

    #[test]
    fn aggregates_pruned_unless_tag_matches() {
        let x = mention(123.0, ApproxIndicator::None, Unit::None);
        let targets = vec![
            target(123.0, TableMentionKind::SingleCell, Unit::None),
            target(
                123.0,
                TableMentionKind::Aggregate(AggregationKind::Sum),
                Unit::None,
            ),
            target(
                123.0,
                TableMentionKind::Aggregate(AggregationKind::Difference),
                Unit::None,
            ),
        ];
        let scored: Vec<(usize, f64)> = (0..3).map(|i| (i, 0.8)).collect();
        let mut stats = FilterStats::default();
        // tag = Sum → single-cell and sum survive, diff is pruned
        let kept = filter_mention(
            &x,
            &scored,
            &targets,
            &[AggregationKind::Sum],
            &FilterConfig::default(),
            &mut stats,
        );
        let kinds: Vec<&str> = kept.iter().map(|c| targets[c.target].kind.name()).collect();
        assert!(kinds.contains(&"single-cell"));
        assert!(kinds.contains(&"sum"));
        assert!(!kinds.contains(&"diff"));
    }

    #[test]
    fn single_cell_tag_prunes_all_aggregates() {
        let x = mention(50.0, ApproxIndicator::None, Unit::None);
        let targets = vec![
            target(50.0, TableMentionKind::SingleCell, Unit::None),
            target(
                50.0,
                TableMentionKind::Aggregate(AggregationKind::Sum),
                Unit::None,
            ),
        ];
        let scored = vec![(0, 0.9), (1, 0.9)];
        let mut stats = FilterStats::default();
        let kept = filter_mention(
            &x,
            &scored,
            &targets,
            &[],
            &FilterConfig::default(),
            &mut stats,
        );
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].target, 0);
    }

    #[test]
    fn value_difference_pruning_needs_low_score() {
        let x = mention(100.0, ApproxIndicator::None, Unit::None);
        let targets = vec![
            target(500.0, TableMentionKind::SingleCell, Unit::None), // far value
        ];
        let cfg = FilterConfig::default();
        let mut stats = FilterStats::default();
        // low score → pruned
        let kept = filter_mention(&x, &[(0, 0.1)], &targets, &[], &cfg, &mut stats);
        assert!(kept.is_empty());
        // high score → survives despite distance
        let kept = filter_mention(&x, &[(0, 0.9)], &targets, &[], &cfg, &mut stats);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn unit_disagreement_always_prunes() {
        let x = mention(100.0, ApproxIndicator::None, Unit::Currency(Currency::Usd));
        let targets = vec![target(
            100.0,
            TableMentionKind::SingleCell,
            Unit::Currency(Currency::Eur),
        )];
        let mut stats = FilterStats::default();
        let kept = filter_mention(
            &x,
            &[(0, 0.95)],
            &targets,
            &[],
            &FilterConfig::default(),
            &mut stats,
        );
        assert!(kept.is_empty());
    }

    #[test]
    fn top_k_limits_candidates() {
        let x = mention(10.0, ApproxIndicator::None, Unit::None);
        let targets: Vec<TableMention> = (0..20)
            .map(|i| {
                target(
                    10.0 + i as f64 * 0.001,
                    TableMentionKind::SingleCell,
                    Unit::None,
                )
            })
            .collect();
        let scored: Vec<(usize, f64)> = (0..20).map(|i| (i, 0.9 - i as f64 * 0.001)).collect();
        let cfg = FilterConfig::default();
        let mut stats = FilterStats::default();
        let kept = filter_mention(&x, &scored, &targets, &[], &cfg, &mut stats);
        assert!(kept.len() <= cfg.k_large.max(cfg.k_approx));
        // sorted by descending score
        for w in kept.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // stats reflect the final kept count
        assert_eq!(stats.kept["single-cell"], kept.len());
        assert_eq!(stats.total["single-cell"], 20);
    }

    #[test]
    fn exact_mention_gets_small_k() {
        let x = mention(10.0, ApproxIndicator::Exact, Unit::None);
        // Highly skewed scores → low entropy → k_small; exact → k_exact.
        let targets: Vec<TableMention> = (0..10)
            .map(|_| target(10.0, TableMentionKind::SingleCell, Unit::None))
            .collect();
        let mut scored: Vec<(usize, f64)> = (0..10).map(|i| (i, 0.02)).collect();
        scored[0].1 = 0.98;
        let cfg = FilterConfig::default();
        let mut stats = FilterStats::default();
        let kept = filter_mention(&x, &scored, &targets, &[], &cfg, &mut stats);
        assert!(kept.len() <= cfg.k_exact.max(cfg.k_small));
        assert_eq!(kept[0].target, 0);
    }

    #[test]
    fn candidate_order_is_total_under_ties_and_nan() {
        let x = mention(10.0, ApproxIndicator::None, Unit::None);
        let targets: Vec<TableMention> = (0..8)
            .map(|_| target(10.0, TableMentionKind::SingleCell, Unit::None))
            .collect();
        // All scores tied, one NaN: the comparator must stay consistent
        // and the cut must fall on ascending target index.
        let mut scored: Vec<(usize, f64)> = (0..8).map(|i| (i, 0.9)).collect();
        scored[3].1 = f64::NAN;
        let cfg = FilterConfig::default();
        let mut stats = FilterStats::default();
        let kept = filter_mention(&x, &scored, &targets, &[], &cfg, &mut stats);
        assert!(!kept.is_empty());
        // NaN ranks above every finite score under total_cmp but must not
        // panic or scramble the rest; tied finite scores keep index order.
        let finite: Vec<usize> = kept
            .iter()
            .filter(|c| c.score.is_finite())
            .map(|c| c.target)
            .collect();
        let mut sorted = finite.clone();
        sorted.sort_unstable();
        assert_eq!(finite, sorted, "tied scores must rank by target index");
        // Reversed input produces the same kept set: the order is total,
        // not an artifact of insertion order.
        let mut rev = scored.clone();
        rev.reverse();
        let mut stats2 = FilterStats::default();
        let kept_rev = filter_mention(&x, &rev, &targets, &[], &cfg, &mut stats2);
        let ids: Vec<usize> = kept.iter().map(|c| c.target).collect();
        let ids_rev: Vec<usize> = kept_rev.iter().map(|c| c.target).collect();
        assert_eq!(ids, ids_rev);
    }

    #[test]
    fn mention_type_resolution() {
        let targets = vec![
            target(10.0, TableMentionKind::SingleCell, Unit::None),
            target(10.5, TableMentionKind::SingleCell, Unit::None),
        ];
        let exact = mention(10.0, ApproxIndicator::None, Unit::None);
        assert_eq!(
            mention_type(&exact, &[(0, 0.9), (1, 0.2)], &targets),
            MentionType::Exact
        );
        let approx = mention(10.2, ApproxIndicator::None, Unit::None);
        assert_eq!(
            mention_type(&approx, &[(0, 0.9), (1, 0.8)], &targets),
            MentionType::Approximate
        );
        let modified = mention(10.0, ApproxIndicator::Approximate, Unit::None);
        assert_eq!(
            mention_type(&modified, &[(0, 0.9)], &targets),
            MentionType::Approximate
        );
    }

    #[test]
    fn stats_selectivity() {
        let mut s = FilterStats::default();
        s.record(TableMentionKind::SingleCell, true);
        s.record(TableMentionKind::SingleCell, false);
        s.record(TableMentionKind::Aggregate(AggregationKind::Sum), false);
        assert_eq!(s.selectivity("single-cell"), Some(0.5));
        assert_eq!(s.selectivity("sum"), Some(0.0));
        assert_eq!(s.selectivity("ratio"), None);
        assert!((s.overall_selectivity() - 1.0 / 3.0).abs() < 1e-12);
        let mut s2 = FilterStats::default();
        s2.record(TableMentionKind::SingleCell, true);
        s.merge(&s2);
        assert_eq!(s.total["single-cell"], 3);
        assert_eq!(s.kept["single-cell"], 2);
    }
}

briq_json::json_struct!(FilterConfig {
    value_diff_threshold,
    score_threshold,
    k_exact,
    k_approx,
    k_small,
    k_large,
    entropy_threshold,
    score_floor,
});
briq_json::json_struct!(FilterStats { total, kept });
