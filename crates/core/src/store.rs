//! Versioned alignment store with incremental re-alignment (DESIGN.md §15).
//!
//! The batch pipeline is stateless: every run recomputes every document
//! from scratch, even though real workloads re-align near-identical page
//! versions over and over. The [`AlignmentStore`] turns alignments into
//! first-class precomputed artifacts: per document key it caches the
//! text-side extraction, the table-side contexts and targets, every
//! mention's classify/filter output, and the final alignments +
//! diagnostics + filter totals, each guarded by a content fingerprint of
//! exactly the inputs that artifact reads.
//!
//! On re-alignment of a new page version the store diffs fingerprints
//! and serves the largest prefix of the pipeline it can prove unchanged:
//!
//! - **Full hit** — config, paragraph text, and every table fingerprint
//!   match: the cached alignments, diagnostics, candidates, and filter
//!   totals are served verbatim; classify, filter, and resolution do not
//!   run at all.
//! - **Text changed, tables unchanged** — the table side (per-table
//!   contexts, targets, degenerate/truncation diagnostics) is replayed
//!   from cache; the text side is re-extracted. Mentions whose own
//!   fingerprint *and* the document's text-aggregate fingerprint are
//!   unchanged are **clean**: their cached tags/candidates/filter deltas
//!   are replayed. The rest are **dirty** (or **new**) and re-run
//!   through the same per-mention `ClassifyPass` the full pipeline
//!   uses.
//! - **Tables changed** — every mention is dirty (the tagger reads every
//!   table's quantities, so the per-mention read set spans all tables),
//!   but the text side is still replayed from cache when the paragraph
//!   is unchanged — and extraction is the slowest stage of the pipeline.
//!
//! Resolution is a global algorithm (every accepted alignment updates
//! the graph the next walk runs on), so any changed document re-runs
//! graph construction + resolution in full from the (partially replayed)
//! candidate sets — through the very same `graph_resolve_stage` code
//! the stateless path uses. That, plus the purity of each cached
//! artifact in its fingerprinted inputs, is the bit-identity argument:
//! the store can only ever replay values the full recompute would have
//! produced.
//! `BRIQ_NO_STORE=1` / `use_store: false` is the CI oracle hatch that
//! byte-compares the two paths on real corpora every run.
//!
//! With [`StoreOptions::dir`] set, the store is additionally backed by
//! the [`persist`] layer (DESIGN.md §16): every cached entry is appended
//! to an on-disk novelty log, periodically compacted into snapshots, and
//! recovered on the next open — so warm starts survive process restarts.
//! [`StoreOptions::max_bytes`] bounds resident memory with LRU eviction.
//! Neither changes any output: persistence and eviction only move work
//! between "served from cache" and "recomputed", never alter a result.

pub mod persist;

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use briq_table::{Document, Table, TableMention};

use crate::batch::StageTimings;
use crate::context::{DocContext, MentionContext, TableContext};
use crate::error::{Budget, CancelToken, Diagnostics, Stage};
use crate::filtering::{Candidate, FilterStats};
use crate::mention::{text_mentions, Alignment, TextMention};
use crate::obs::{names, Recorder};
use crate::pipeline::{cancelled_result, Briq, ClassifyPass};

/// Incremental FNV-1a hasher used for every content fingerprint. FNV is
/// fully deterministic — no per-process seed — so fingerprints are
/// stable across runs, processes, and hosts, which the store's
/// versioning contract (and the fingerprint proptests) require.
#[derive(Debug, Clone)]
pub struct Fingerprint {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl Fingerprint {
    /// Start a fresh fingerprint.
    pub fn new() -> Fingerprint {
        Fingerprint { state: FNV_OFFSET }
    }

    /// Fold raw bytes into the fingerprint.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Fold a `usize` (widened; stable across pointer widths).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Fold an `f64` via its bit pattern — the store's equality is bit
    /// equality, exactly like the pipeline's determinism contract.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Fold a bool.
    pub fn bool(&mut self, v: bool) {
        self.bytes(&[v as u8]);
    }

    /// Fold a string, length-prefixed so `("ab","c")` and `("a","bc")`
    /// cannot collide structurally.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// Fold any `Debug` value through its formatting — used for small
    /// enums (units, approximation indicators, aggregation kinds) whose
    /// derived `Debug` output is stable and total.
    pub fn debug<T: std::fmt::Debug>(&mut self, v: &T) {
        self.str(&format!("{v:?}"));
    }

    /// The 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprint of a paragraph's raw text. Everything the text side of
/// extraction produces (tokens, stem sets, phrases, mention contexts) is
/// a pure function of this string plus the context config.
pub fn text_fingerprint(text: &str) -> u64 {
    let mut fp = Fingerprint::new();
    fp.str(text);
    fp.finish()
}

/// Fingerprint of one table: caption, shape, detected header split, and
/// every cell string. All other [`Table`] state (parsed quantities, unit
/// and scale hints) is derived deterministically from these, so two
/// tables with equal fingerprints produce identical contexts, targets,
/// and tagger counts.
pub fn table_fingerprint(t: &Table) -> u64 {
    let mut fp = Fingerprint::new();
    fp.str(&t.caption);
    fp.usize(t.n_rows);
    fp.usize(t.n_cols);
    fp.usize(t.header_rows);
    fp.usize(t.header_cols);
    fp.usize(t.cells.len());
    for row in &t.cells {
        fp.usize(row.len());
        for cell in row {
            fp.str(cell);
        }
    }
    fp.finish()
}

/// Fingerprint of the per-call [`Budget`]. Budgets change which targets
/// are generated and when graph/resolution truncate, so they are part of
/// the store's config fingerprint.
pub fn budget_fingerprint(b: &Budget) -> u64 {
    let mut fp = Fingerprint::new();
    fp.usize(b.max_regex_steps);
    fp.usize(b.max_virtual_cells_per_table);
    fp.usize(b.max_graph_edges);
    fp.usize(b.max_rwr_iterations);
    fp.finish()
}

/// Fingerprint of the whole system identity: configuration, trained
/// classifier, and tagger, via the model's canonical JSON serialization.
/// Any retrain or config change flips it, invalidating every entry.
pub fn model_fingerprint(briq: &Briq) -> u64 {
    let mut fp = Fingerprint::new();
    match briq.to_json() {
        Ok(s) => fp.str(&s),
        Err(_) => fp.str("unserializable-model"),
    }
    fp.finish()
}

/// Fingerprint of the document-global text aggregates the per-mention
/// classify path reads: the paragraph stem set (feature f3), the
/// paragraph noun phrases (f5), and the ordered paragraph word list (the
/// tagger's global scope). A mention can only be clean if these are
/// unchanged — they are part of every mention's read set.
fn aggregate_fingerprint(ctx: &DocContext) -> u64 {
    let mut fp = Fingerprint::new();
    fp.usize(ctx.paragraph_words.len());
    for w in &ctx.paragraph_words {
        fp.str(w);
    }
    fp.usize(ctx.paragraph_phrases.len());
    for p in &ctx.paragraph_phrases {
        fp.str(p);
    }
    fp.usize(ctx.paragraph_word_list.len());
    for w in &ctx.paragraph_word_list {
        fp.str(w);
    }
    fp.finish()
}

/// Fingerprint of one text mention's classify-path read set: the parsed
/// quantity (minus its byte span) and the mention-local context (minus
/// its token index). Byte positions deliberately do NOT participate —
/// classification never reads absolute positions (they only feed graph
/// construction, which re-runs for any changed document), so a mention
/// that merely *moved* is still clean.
fn mention_fingerprint(m: &TextMention, mc: &MentionContext) -> u64 {
    let mut fp = Fingerprint::new();
    let q = &m.quantity;
    fp.str(&q.raw);
    fp.f64(q.value);
    fp.f64(q.unnormalized);
    fp.debug(&q.unit);
    fp.bytes(&[q.precision]);
    fp.debug(&q.approx);
    fp.usize(mc.local_weights.len());
    for (w, &v) in &mc.local_weights {
        fp.str(w);
        fp.f64(v);
    }
    fp.usize(mc.sentence_phrases.len());
    for p in &mc.sentence_phrases {
        fp.str(p);
    }
    fp.usize(mc.immediate_words.len());
    for w in &mc.immediate_words {
        fp.str(w);
    }
    fp.usize(mc.sentence_words.len());
    for w in &mc.sentence_words {
        fp.str(w);
    }
    fp.debug(&mc.inferred_aggregation);
    fp.finish()
}

/// One mention's cached classify/filter output: kept candidates plus its
/// private contribution to the document's filter totals. Pure in the
/// mention fingerprint + aggregate fingerprint + table fingerprints +
/// config fingerprint, all of which gate its replay.
#[derive(Debug, Clone)]
struct MentionArtifact {
    fp: u64,
    candidates: Vec<Candidate>,
    stats: FilterStats,
}

/// Everything the store remembers about one document version.
#[derive(Debug)]
pub(crate) struct DocEntry {
    config_fp: u64,
    text_fp: u64,
    aggregate_fp: u64,
    table_fps: Vec<u64>,
    /// Text-side extraction artifacts: mentions and the text half of the
    /// context (`text_ctx.tables` is empty; table contexts live below so
    /// the two sides invalidate independently).
    text_mentions: Vec<TextMention>,
    text_ctx: DocContext,
    /// Table-side extraction artifacts.
    table_contexts: Vec<TableContext>,
    targets: Vec<TableMention>,
    extract_diags: Diagnostics,
    /// Per-mention classify/filter artifacts, parallel to `text_mentions`.
    artifacts: Vec<MentionArtifact>,
    /// Final document outputs, served verbatim on a full hit.
    alignments: Vec<Alignment>,
    diagnostics: Diagnostics,
    stats: FilterStats,
    approx_bytes: u64,
    /// LRU clock value of the last lookup that touched this entry
    /// (monotone per-store counter, not wall time). Not persisted.
    last_used: u64,
}

impl DocEntry {
    /// Coarse resident-size estimate for the `store_bytes_peak` gauge:
    /// string payloads plus shallow container sizes. Observational only.
    fn estimate_bytes(&self) -> u64 {
        fn strings<'a, I: IntoIterator<Item = &'a String>>(it: I) -> usize {
            it.into_iter().map(|s| s.len() + 32).sum()
        }
        let mut n = std::mem::size_of::<DocEntry>();
        n += self.table_fps.len() * 8;
        n += self.text_mentions.len() * std::mem::size_of::<TextMention>();
        n += strings(self.text_mentions.iter().map(|m| &m.quantity.raw));
        let ctx = &self.text_ctx;
        n += std::mem::size_of_val(ctx.tokens.as_slice());
        n += strings(&ctx.paragraph_words) + strings(&ctx.paragraph_phrases);
        n += strings(&ctx.paragraph_word_list);
        for mc in &ctx.mentions {
            n += strings(mc.local_weights.keys()) + mc.local_weights.len() * 8;
            n += strings(&mc.sentence_phrases);
            n += strings(&mc.immediate_words) + strings(&mc.sentence_words);
        }
        for tc in &self.table_contexts {
            n += strings(&tc.table_words) + strings(&tc.table_phrases);
            for s in tc.row_words.iter().chain(&tc.col_words) {
                n += strings(s);
            }
            for s in tc.row_phrases.iter().chain(&tc.col_phrases) {
                n += strings(s);
            }
        }
        n += self.targets.len() * std::mem::size_of::<TableMention>();
        n += strings(self.targets.iter().map(|t| &t.raw));
        for a in &self.artifacts {
            n += a.candidates.len() * std::mem::size_of::<Candidate>() + 64;
        }
        n += self.alignments.len() * std::mem::size_of::<Alignment>();
        n += strings(self.alignments.iter().map(|a| &a.mention_raw));
        n += (self.diagnostics.items.len() + self.extract_diags.items.len()) * 128;
        n as u64
    }
}

/// Construction options for an [`AlignmentStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Directory for the durable backing (novelty log + snapshots +
    /// manifest). `None` (the default) keeps the store in-memory only.
    pub dir: Option<PathBuf>,
    /// Resident-memory budget in (estimated) bytes; entries beyond it
    /// are evicted least-recently-used. `0` means unbounded.
    pub max_bytes: u64,
    /// Novelty-log size that triggers a compacting snapshot. Only
    /// meaningful with `dir` set.
    pub compact_log_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            dir: None,
            max_bytes: 0,
            compact_log_bytes: 4 << 20,
        }
    }
}

/// Pure LRU eviction planner: given `(key, last_used, bytes)` per entry
/// and a byte budget, return the keys to evict — least-recently-used
/// first (key order breaks ties deterministically) until the survivors
/// fit. The most-recently-used entry is never evicted, so the entry a
/// lookup just produced cannot be dropped before it is ever served.
pub(crate) fn evict_plan(items: &[(u64, u64, u64)], max_bytes: u64) -> Vec<u64> {
    let total: u64 = items.iter().map(|&(_, _, b)| b).sum();
    if max_bytes == 0 || total <= max_bytes || items.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<&(u64, u64, u64)> = items.iter().collect();
    order.sort_by_key(|&&(key, used, _)| (used, key));
    let mut resident = total;
    let mut evict = Vec::new();
    // `order.len() - 1`: the last (most-recently-used) entry survives
    // even when it alone exceeds the budget.
    for &&(key, _, bytes) in order.iter().take(order.len() - 1) {
        if resident <= max_bytes {
            break;
        }
        resident -= bytes;
        evict.push(key);
    }
    evict
}

/// A versioned, thread-shared cache of per-document alignment artifacts.
///
/// The store is deliberately **not** part of [`Briq`]: the system stays
/// `Send + Sync + Clone` and batch/serve configs stay `Copy`; callers
/// that want incremental re-alignment pass a store (and a stable
/// per-document key) alongside the system. Interior mutability — one
/// mutex around the entry map plus atomic counters — makes one store
/// shareable across every batch worker and serve worker; output stays
/// input-order deterministic because cache state can only ever change
/// *which work is skipped*, never *what any document's output is*.
#[derive(Debug)]
pub struct AlignmentStore {
    model_fp: u64,
    entries: Mutex<HashMap<u64, DocEntry>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    invalidations: AtomicU64,
    mentions_realigned: AtomicU64,
    bytes: AtomicU64,
    bytes_peak: AtomicU64,
    /// Monotone LRU clock; bumped on every touch of an entry.
    tick: AtomicU64,
    max_bytes: u64,
    evictions: AtomicU64,
    evicted_bytes: AtomicU64,
    persist_errors: AtomicU64,
    recovered: u64,
    recover_s: f64,
    recover_truncated: bool,
    recover_rebuilt: bool,
    persist: Option<persist::Persistence>,
}

impl AlignmentStore {
    /// Create an empty in-memory store bound to `briq`'s identity. The
    /// model fingerprint is computed once here; aligning through the
    /// store with a *different* (retrained/reconfigured) system
    /// invalidates entries on contact rather than serving stale
    /// artifacts.
    pub fn for_system(briq: &Briq) -> AlignmentStore {
        // Infallible: `with_options` touches the filesystem only when a
        // persistence directory is set, and the defaults set none.
        match AlignmentStore::with_options(briq, &StoreOptions::default()) {
            Ok(store) => store,
            Err(_) => unreachable!("in-memory store construction cannot fail"),
        }
    }

    /// Create a store with explicit [`StoreOptions`]. With a `dir` set,
    /// opens (or creates) the durable backing and recovers every entry
    /// it holds — replaying the snapshot then the novelty log, last
    /// write per key winning — before the store serves its first
    /// lookup. Fails only on real I/O errors; corrupt or incompatible
    /// on-disk state recovers to a smaller (possibly empty) store
    /// instead of failing (see [`persist`]).
    pub fn with_options(briq: &Briq, opts: &StoreOptions) -> std::io::Result<AlignmentStore> {
        let model_fp = model_fingerprint(briq);
        let mut map = HashMap::new();
        let mut clock = 0u64;
        let mut resident = 0u64;
        let mut recovered = 0u64;
        let mut recover_s = 0.0;
        let mut recover_truncated = false;
        let mut recover_rebuilt = false;
        let mut backing = None;
        if let Some(dir) = &opts.dir {
            let t = Instant::now();
            let (p, rec) = persist::Persistence::open(dir, model_fp, opts.compact_log_bytes)?;
            recover_truncated = rec.truncated;
            recover_rebuilt = rec.rebuilt;
            for (key, mut entry) in rec.entries {
                clock += 1;
                entry.last_used = clock;
                resident += entry.approx_bytes;
                if let Some(old) = map.insert(key, entry) {
                    resident -= old.approx_bytes;
                }
            }
            // Apply the memory budget to the recovered set too: a
            // restart must not resurrect more than a live server would
            // have kept resident.
            if opts.max_bytes > 0 {
                let items: Vec<(u64, u64, u64)> = map
                    .iter()
                    .map(|(&k, e)| (k, e.last_used, e.approx_bytes))
                    .collect();
                for key in evict_plan(&items, opts.max_bytes) {
                    if let Some(old) = map.remove(&key) {
                        resident -= old.approx_bytes;
                    }
                }
            }
            recovered = map.len() as u64;
            recover_s = t.elapsed().as_secs_f64();
            backing = Some(p);
        }
        Ok(AlignmentStore {
            model_fp,
            entries: Mutex::new(map),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            mentions_realigned: AtomicU64::new(0),
            bytes: AtomicU64::new(resident),
            bytes_peak: AtomicU64::new(resident),
            tick: AtomicU64::new(clock),
            max_bytes: opts.max_bytes,
            evictions: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
            recovered,
            recover_s,
            recover_truncated,
            recover_rebuilt,
            persist: backing,
        })
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        lock(&self.entries).len()
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups (one per aligned document).
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Full-document hits served verbatim from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found an entry but could not serve it verbatim
    /// (some fingerprint changed) — the entry was invalidated and
    /// replaced by the incremental re-alignment's result.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Mentions that actually re-ran classify/filter (dirty + new + all
    /// mentions of cold documents).
    pub fn mentions_realigned(&self) -> u64 {
        self.mentions_realigned.load(Ordering::Relaxed)
    }

    /// High-water mark of the store's estimated resident bytes.
    pub fn bytes_peak(&self) -> u64 {
        self.bytes_peak.load(Ordering::Relaxed)
    }

    /// True when this store has a durable on-disk backing.
    pub fn persisted(&self) -> bool {
        self.persist.is_some()
    }

    /// Store directory of the durable backing, if any.
    pub fn store_dir(&self) -> Option<&std::path::Path> {
        self.persist.as_ref().map(|p| p.dir())
    }

    /// Entries recovered from disk when this store was opened.
    pub fn recovered_entries(&self) -> u64 {
        self.recovered
    }

    /// Wall-clock seconds spent recovering the on-disk state at open.
    pub fn recover_seconds(&self) -> f64 {
        self.recover_s
    }

    /// True if recovery truncated a torn tail record in the snapshot or
    /// log (a crash interrupted a write; the valid prefix was kept).
    pub fn recover_truncated(&self) -> bool {
        self.recover_truncated
    }

    /// True if recovery discarded incompatible or foreign on-disk state
    /// (format-version bump, model/config change, unmanifested files)
    /// and rebuilt the directory from scratch.
    pub fn recover_rebuilt(&self) -> bool {
        self.recover_rebuilt
    }

    /// Entries evicted to stay under the memory budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Estimated bytes released by eviction.
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes.load(Ordering::Relaxed)
    }

    /// Current novelty-log size in bytes (0 without persistence).
    pub fn log_bytes(&self) -> u64 {
        self.persist.as_ref().map_or(0, |p| p.log_bytes())
    }

    /// Current snapshot size in bytes (0 without persistence or before
    /// the first snapshot).
    pub fn snapshot_bytes(&self) -> u64 {
        self.persist.as_ref().map_or(0, |p| p.snapshot_bytes())
    }

    /// Compacting snapshots written by this process.
    pub fn compactions(&self) -> u64 {
        self.persist.as_ref().map_or(0, |p| p.compactions())
    }

    /// Persistence I/O failures. Append/snapshot errors degrade the
    /// store to best-effort (the in-memory cache and all outputs are
    /// unaffected); this counter is how operators notice.
    pub fn persist_errors(&self) -> u64 {
        self.persist_errors.load(Ordering::Relaxed)
    }

    /// Write a compacting snapshot of the current entries and reset the
    /// novelty log. No-op without persistence. Called on graceful drain
    /// and after warm-up passes; also triggered automatically when the
    /// log outgrows [`StoreOptions::compact_log_bytes`].
    pub fn snapshot(&self) -> std::io::Result<()> {
        let Some(p) = &self.persist else {
            return Ok(());
        };
        // Hold the entry lock across the write so the snapshot is a
        // consistent point-in-time view. write_snapshot takes the snap
        // and log locks *inside* this — the lock order entries → snap →
        // log is the only one used anywhere (appends take log alone).
        let map = lock(&self.entries);
        let mut payloads: Vec<(u64, Vec<u8>)> = map
            .iter()
            .map(|(&k, e)| (k, persist::encode_record(k, e)))
            .collect();
        payloads.sort_by_key(|&(k, _)| k);
        let payloads: Vec<Vec<u8>> = payloads.into_iter().map(|(_, p)| p).collect();
        p.write_snapshot(&payloads)
    }

    /// Fsync the novelty log. No-op without persistence.
    pub fn sync(&self) -> std::io::Result<()> {
        self.persist.as_ref().map_or(Ok(()), |p| p.sync())
    }

    /// Encoded record payloads of every resident entry, key-ordered.
    /// Test/diagnostic surface for the persistence layer.
    #[cfg(test)]
    pub(crate) fn encoded_entries(&self) -> Vec<Vec<u8>> {
        let map = lock(&self.entries);
        let mut payloads: Vec<(u64, Vec<u8>)> = map
            .iter()
            .map(|(&k, e)| (k, persist::encode_record(k, e)))
            .collect();
        payloads.sort_by_key(|&(k, _)| k);
        payloads.into_iter().map(|(_, p)| p).collect()
    }

    /// Evict least-recently-used entries until the resident estimate
    /// fits the budget. Eviction only removes cache entries — a later
    /// lookup for an evicted key recomputes (or recovers from disk on
    /// the next restart) and produces identical output.
    fn evict_to_budget(&self, rec: &Recorder) {
        if self.max_bytes == 0 || self.bytes.load(Ordering::Relaxed) <= self.max_bytes {
            return;
        }
        let mut map = lock(&self.entries);
        let items: Vec<(u64, u64, u64)> = map
            .iter()
            .map(|(&k, e)| (k, e.last_used, e.approx_bytes))
            .collect();
        for key in evict_plan(&items, self.max_bytes) {
            if let Some(old) = map.remove(&key) {
                self.bytes_sub(old.approx_bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.evicted_bytes
                    .fetch_add(old.approx_bytes, Ordering::Relaxed);
                rec.count(names::STORE_EVICTIONS, 1);
            }
        }
    }

    /// Fraction of lookups served verbatim from cache (0.0 when no
    /// lookups happened yet).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits() as f64 / lookups as f64
        }
    }

    /// Reset the hit/lookup/invalidation/realignment counters (entries
    /// and byte gauges stay). Lets callers measure one pass — e.g. one
    /// `--repeat` iteration — in isolation.
    pub fn reset_counters(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.mentions_realigned.store(0, Ordering::Relaxed);
    }

    fn bytes_add(&self, n: u64) {
        let now = self.bytes.fetch_add(n, Ordering::Relaxed) + n;
        self.bytes_peak.fetch_max(now, Ordering::Relaxed);
    }

    fn bytes_sub(&self, n: u64) {
        self.bytes
            .fetch_sub(n.min(self.bytes.load(Ordering::Relaxed)), Ordering::Relaxed);
    }

    /// Align `doc` through the store. Same output contract (and shape)
    /// as `Briq::align_budgeted_cancellable`: alignments, filter totals,
    /// kept candidates, diagnostics — bit-identical to the full
    /// recompute for every possible cache state. Cancelled runs return
    /// the no-partial-state shape and leave the cache untouched.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub(crate) fn align_cancellable(
        &self,
        briq: &Briq,
        key: u64,
        doc: &Document,
        budget: &Budget,
        timings: &mut StageTimings,
        rec: &Recorder,
        cancel: &CancelToken,
    ) -> (
        Vec<Alignment>,
        FilterStats,
        Vec<Vec<Candidate>>,
        Diagnostics,
    ) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if let Some(cause) = cancel.cause() {
            return cancelled_result(Stage::Extraction, cause, Diagnostics::default(), rec);
        }

        // Fingerprint the inputs. Charged to the extract stage: it is
        // the store's replacement for (most of) extraction.
        let t_extract = Instant::now();
        let mut cfp = Fingerprint::new();
        cfp.u64(self.model_fp);
        cfp.u64(budget_fingerprint(budget));
        let config_fp = cfp.finish();
        let text_fp = text_fingerprint(&doc.text);
        let table_fps: Vec<u64> = doc.tables.iter().map(table_fingerprint).collect();

        // Full hit: serve the cached outputs verbatim. Classify, filter,
        // and resolution are skipped entirely — `timings` shows zero for
        // all three stages.
        {
            let mut map = lock(&self.entries);
            if let Some(e) = map.get_mut(&key) {
                if e.config_fp == config_fp && e.text_fp == text_fp && e.table_fps == table_fps {
                    e.last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    rec.count(names::STORE_HITS, 1);
                    rec.count(names::MENTIONS, e.text_mentions.len() as u64);
                    rec.count(names::TARGETS, e.targets.len() as u64);
                    let out = (
                        e.alignments.clone(),
                        e.stats.clone(),
                        e.artifacts.iter().map(|a| a.candidates.clone()).collect(),
                        e.diagnostics.clone(),
                    );
                    drop(map);
                    timings.extract_s += t_extract.elapsed().as_secs_f64();
                    return out;
                }
            }
        }

        // Miss or stale: take the prior entry out (if any) and rebuild,
        // replaying every artifact whose fingerprints still match.
        let prior = {
            let mut map = lock(&self.entries);
            map.remove(&key)
        };
        if let Some(p) = &prior {
            self.bytes_sub(p.approx_bytes);
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            rec.count(names::STORE_INVALIDATIONS, 1);
        }
        // A config mismatch poisons everything; drop the entry outright.
        let prior = prior.filter(|p| p.config_fp == config_fp);

        // Text side: replay when the paragraph is unchanged.
        let (mentions, mut ctx) = match &prior {
            Some(p) if p.text_fp == text_fp => (p.text_mentions.clone(), p.text_ctx.clone()),
            _ => {
                let m = text_mentions(doc);
                let c = DocContext::build_with_tables(doc, &m, &briq.cfg.context, Vec::new());
                (m, c)
            }
        };
        // Table side: replay contexts, targets, and extraction
        // diagnostics when every table is unchanged.
        let tables_clean = prior.as_ref().is_some_and(|p| p.table_fps == table_fps);
        let (table_contexts, targets, extract_diags) = match &prior {
            Some(p) if tables_clean => (
                p.table_contexts.clone(),
                p.targets.clone(),
                p.extract_diags.clone(),
            ),
            _ => briq.extract_table_side(doc, budget),
        };
        ctx.tables = table_contexts;
        let mut diags = extract_diags.clone();
        timings.extract_s += t_extract.elapsed().as_secs_f64();
        rec.count(names::MENTIONS, mentions.len() as u64);
        rec.count(names::TARGETS, targets.len() as u64);

        // Classify/filter: replay clean mentions, re-run dirty/new ones.
        // A mention is clean only if its own fingerprint, the document's
        // text aggregates, every table, and the config are unchanged —
        // exactly its read set (module docs).
        let aggregate_fp = aggregate_fingerprint(&ctx);
        let mention_fps: Vec<u64> = mentions
            .iter()
            .zip(&ctx.mentions)
            .map(|(m, mc)| mention_fingerprint(m, mc))
            .collect();
        let mentions_clean = tables_clean
            && prior
                .as_ref()
                .is_some_and(|p| p.aggregate_fp == aggregate_fp);
        // k-th occurrence of a fingerprint matches the k-th cached
        // occurrence: duplicates (e.g. the same number twice in a
        // paragraph) stay unambiguous.
        let mut cached: HashMap<u64, Vec<usize>> = HashMap::new();
        if mentions_clean {
            if let Some(p) = &prior {
                for (i, a) in p.artifacts.iter().enumerate() {
                    cached.entry(a.fp).or_default().push(i);
                }
            }
        }
        let mut occurrence: HashMap<u64, usize> = HashMap::new();
        let mut pass: Option<ClassifyPass<'_>> = None;
        let mut stats = FilterStats::default();
        let mut artifacts = Vec::with_capacity(mentions.len());
        let mut candidates = Vec::with_capacity(mentions.len());
        let mut realigned = 0u64;
        for (mi, &fp) in mention_fps.iter().enumerate() {
            if let Some(cause) = cancel.cause() {
                return cancelled_result(Stage::Classification, cause, diags, rec);
            }
            let occ = occurrence.entry(fp).or_insert(0);
            let slot = cached.get(&fp).and_then(|v| v.get(*occ)).copied();
            *occ += 1;
            match (slot, &prior) {
                (Some(j), Some(p)) if mentions_clean => {
                    let a = p.artifacts[j].clone();
                    stats.merge(&a.stats);
                    candidates.push(a.candidates.clone());
                    artifacts.push(a);
                }
                _ => {
                    let pass = pass.get_or_insert_with(|| {
                        ClassifyPass::new(briq, doc, &mentions, &ctx, &targets, timings)
                    });
                    let (cands, delta) = pass.run_mention(mi, timings, rec);
                    realigned += 1;
                    stats.merge(&delta);
                    artifacts.push(MentionArtifact {
                        fp,
                        candidates: cands.clone(),
                        stats: delta,
                    });
                    candidates.push(cands);
                }
            }
        }
        if let Some(p) = pass {
            p.finish(timings, &stats, rec);
        }
        self.mentions_realigned
            .fetch_add(realigned, Ordering::Relaxed);
        rec.count(names::MENTIONS_REALIGNED, realigned);
        timings.pairs_scored += realigned * targets.len() as u64;
        rec.count(names::PAIRS_SCORED, realigned * targets.len() as u64);

        // Graph + resolution: always re-run for a changed document, via
        // the same shared stage as the stateless path.
        let alignments = match briq.graph_resolve_stage(
            &mentions,
            &ctx,
            &targets,
            &candidates,
            &mut diags,
            budget,
            timings,
            rec,
            cancel,
        ) {
            Ok(a) => a,
            Err((stage, cause)) => return cancelled_result(stage, cause, diags, rec),
        };
        rec.count(
            names::BUDGET_EXHAUSTIONS,
            diags
                .items
                .iter()
                .filter(|d| d.action == crate::error::DegradedAction::Truncated)
                .count() as u64,
        );

        // Cache the new version. `ctx.tables` moves out so the text side
        // is stored table-free and the two sides invalidate separately.
        let table_contexts = std::mem::take(&mut ctx.tables);
        let mut entry = DocEntry {
            config_fp,
            text_fp,
            aggregate_fp,
            table_fps,
            text_mentions: mentions,
            text_ctx: ctx,
            table_contexts,
            targets,
            extract_diags,
            artifacts,
            alignments: alignments.clone(),
            diagnostics: diags.clone(),
            stats: stats.clone(),
            approx_bytes: 0,
            last_used: self.tick.fetch_add(1, Ordering::Relaxed) + 1,
        };
        entry.approx_bytes = entry.estimate_bytes();
        // Encode for the novelty log before the entry moves into the
        // map; the append itself happens after the lock drops so disk
        // I/O never serializes other workers' lookups.
        let payload = self
            .persist
            .as_ref()
            .map(|_| persist::encode_record(key, &entry));
        self.bytes_add(entry.approx_bytes);
        {
            let mut map = lock(&self.entries);
            if let Some(old) = map.insert(key, entry) {
                self.bytes_sub(old.approx_bytes);
            }
        }
        if let (Some(p), Some(payload)) = (&self.persist, payload) {
            // Persistence is best-effort on the hot path: an append or
            // snapshot failure costs durability (counted), never
            // correctness — the in-memory entry is already cached.
            if p.append(&payload).is_err() {
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
            }
            if p.wants_compact() && self.snapshot().is_err() {
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
            }
            rec.observe(names::STORE_LOG_BYTES, p.log_bytes() as f64);
        }
        self.evict_to_budget(rec);
        rec.observe(names::STORE_BYTES_PEAK, self.bytes_peak() as f64);

        (alignments, stats, candidates, diags)
    }
}

/// Poison-tolerant lock, mirroring the batch engine: a panicked worker
/// (already isolated by `catch_unwind`) must not wedge the store for
/// every other worker.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BriqConfig;

    fn doc(text: &str, grid: Vec<Vec<String>>) -> Document {
        Document::new(0, text, vec![Table::from_grid("", grid)])
    }

    fn sample() -> Document {
        doc(
            "Overall, a total of 123 patients reported side effects. \
             Depression was reported by 38 patients.",
            vec![
                vec!["side effects".into(), "patients".into()],
                vec!["Rash".into(), "35".into()],
                vec!["Depression".into(), "38".into()],
            ],
        )
    }

    #[test]
    fn fingerprints_are_deterministic() {
        let d = sample();
        assert_eq!(text_fingerprint(&d.text), text_fingerprint(&d.text));
        assert_eq!(
            table_fingerprint(&d.tables[0]),
            table_fingerprint(&d.tables[0].clone())
        );
        let briq = Briq::untrained(BriqConfig::default());
        assert_eq!(model_fingerprint(&briq), model_fingerprint(&briq));
    }

    #[test]
    fn fingerprints_track_content() {
        let d = sample();
        let edited = doc(
            &d.text,
            vec![
                vec!["side effects".into(), "patients".into()],
                vec!["Rash".into(), "36".into()],
                vec!["Depression".into(), "38".into()],
            ],
        );
        assert_ne!(
            table_fingerprint(&d.tables[0]),
            table_fingerprint(&edited.tables[0])
        );
        assert_ne!(
            text_fingerprint(&d.text),
            text_fingerprint("Depression was reported by 39 patients.")
        );
    }

    #[test]
    fn full_hit_serves_verbatim_and_skips_stages() {
        let briq = Briq::untrained(BriqConfig::default());
        let store = AlignmentStore::for_system(&briq);
        let d = sample();
        let budget = Budget::default();
        let cold = briq.align_stored_detailed(&store, 7, &d, &budget);
        assert_eq!(store.hits(), 0);
        assert_eq!(store.lookups(), 1);
        let mut timings = StageTimings::default();
        let warm = store.align_cancellable(
            &briq,
            7,
            &d,
            &budget,
            &mut timings,
            &Recorder::disabled(),
            &CancelToken::none(),
        );
        assert_eq!(store.hits(), 1);
        assert_eq!(cold, warm);
        assert_eq!(timings.classify_s, 0.0);
        assert_eq!(timings.filter_s, 0.0);
        assert_eq!(timings.resolve_s, 0.0);
        assert_eq!(timings.pairs_scored, 0);
    }

    #[test]
    fn store_matches_full_recompute_after_cell_edit() {
        let briq = Briq::untrained(BriqConfig::default());
        let store = AlignmentStore::for_system(&briq);
        let budget = Budget::unlimited();
        let d = sample();
        briq.align_stored_detailed(&store, 1, &d, &budget);
        let edited = doc(
            &d.text,
            vec![
                vec!["side effects".into(), "patients".into()],
                vec!["Rash".into(), "41".into()],
                vec!["Depression".into(), "38".into()],
            ],
        );
        let incremental = briq.align_stored_detailed(&store, 1, &edited, &budget);
        let full = briq.align_detailed(&edited);
        assert_eq!(incremental.0, full.0);
        assert_eq!(incremental.1, full.1);
        assert_eq!(incremental.2, full.2);
        assert_eq!(store.invalidations(), 1);
    }

    /// Brute-force LRU oracle: evict globally-least-recently-used
    /// entries one at a time (key breaks ties) until the survivors fit,
    /// always sparing the most-recently-used entry.
    fn evict_oracle(items: &[(u64, u64, u64)], max_bytes: u64) -> Vec<u64> {
        let mut live: Vec<(u64, u64, u64)> = items.to_vec();
        let mut evicted = Vec::new();
        if max_bytes == 0 {
            return evicted;
        }
        while live.len() > 1 && live.iter().map(|&(_, _, b)| b).sum::<u64>() > max_bytes {
            let victim = live
                .iter()
                .enumerate()
                .min_by_key(|&(_, &(key, used, _))| (used, key))
                .map(|(i, _)| i)
                .expect("non-empty");
            evicted.push(live.remove(victim).0);
        }
        evicted
    }

    #[test]
    fn evict_plan_matches_brute_force_oracle() {
        // Deterministic pseudo-random item sets: keys, ages, and sizes
        // from a simple LCG, budgets sweeping empty → everything-fits.
        let mut state = 0x2019_0408_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for n in 0..24usize {
            let items: Vec<(u64, u64, u64)> = (0..n)
                .map(|_| (next(), next() % 7, next() % 512 + 1))
                .collect();
            let total: u64 = items.iter().map(|&(_, _, b)| b).sum();
            for max_bytes in [0, 1, 64, total / 2, total, total + 1] {
                assert_eq!(
                    evict_plan(&items, max_bytes),
                    evict_oracle(&items, max_bytes),
                    "items={items:?} max_bytes={max_bytes}"
                );
            }
        }
    }

    #[test]
    fn eviction_bounds_memory_and_keeps_output_identical() {
        let briq = Briq::untrained(BriqConfig::default());
        // A 1-byte budget: after every insert, everything but the
        // newest entry is evicted.
        let bounded = AlignmentStore::with_options(
            &briq,
            &StoreOptions {
                max_bytes: 1,
                ..StoreOptions::default()
            },
        )
        .expect("in-memory store");
        let oracle = AlignmentStore::for_system(&briq);
        let budget = Budget::default();
        let d1 = sample();
        let d2 = doc(
            "Revenue grew to $12.5 million in 2018.",
            vec![
                vec!["year".into(), "revenue".into()],
                vec!["2018".into(), "$12.5M".into()],
            ],
        );
        for _ in 0..2 {
            for (k, d) in [(1u64, &d1), (2u64, &d2)] {
                assert_eq!(
                    briq.align_stored_detailed(&bounded, k, d, &budget),
                    briq.align_stored_detailed(&oracle, k, d, &budget),
                );
            }
        }
        assert_eq!(bounded.len(), 1, "budget keeps only the newest entry");
        assert!(bounded.evictions() >= 3);
        assert!(bounded.evicted_bytes() > 0);
        // The unbounded oracle store served round 2 from cache; the
        // bounded store recomputed — outputs matched regardless.
        assert_eq!(oracle.hits(), 2);
        assert_eq!(bounded.hits(), 0);
    }
}
