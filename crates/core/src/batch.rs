//! Parallel batch-alignment engine: the production-path replacement for
//! the bench-only thread shim, standing in for the paper's 10-executor
//! Spark deployment (§VI, Table VIII) on a single machine.
//!
//! [`align_batch`] runs [`Briq::align_checked_with`] over a batch of
//! documents on a chunked, work-stealing pool of scoped threads
//! (std-only, no external runtime). The contract:
//!
//! * **Shared read-only system** — one [`Briq`] (classifier forests,
//!   tagger, lexicons, unit tables) is borrowed immutably by every
//!   worker; a compile-time assertion below keeps `Briq: Send + Sync`.
//! * **Per-document budget and fault isolation** — each document runs
//!   under its own [`Budget`] accounting, and a worker panic (should one
//!   ever escape the panic-free pipeline) is caught per document: the
//!   poisoned document degrades to an empty result with a
//!   [`Stage::Batch`] diagnostic, the rest of the batch completes.
//! * **Deterministic output** — results are reported in input order and
//!   are bit-identical for every worker count, because documents never
//!   share mutable state and the merge is index-addressed.
//! * **Observability** — the [`BatchReport`] carries per-stage wall-clock
//!   totals (extract / classify / filter / resolve), per-worker
//!   utilization, and per-document [`Diagnostics`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use briq_table::Document;

use crate::error::{BriqError, Budget, DegradedAction, Diagnostics, Stage};
use crate::mention::Alignment;
use crate::obs::{chrome_trace_json, names, DocTrace, MetricsRegistry, Recorder};
use crate::pipeline::Briq;
use crate::span;
use crate::store::AlignmentStore;

/// `Briq` is shared by reference across the worker pool; if a future
/// field (e.g. an interior-mutable cache) breaks that, this fails to
/// compile instead of failing at the first parallel run. The store is
/// the one deliberately interior-mutable participant — its map is
/// mutex-guarded and its counters are atomics, so sharing it is safe.
const fn assert_share_safe<T: Send + Sync>() {}
const _: () = {
    assert_share_safe::<Briq>();
    assert_share_safe::<Budget>();
    assert_share_safe::<Document>();
    assert_share_safe::<AlignmentStore>();
};

/// Wall-clock seconds spent in each pipeline stage (Fig. 2) while
/// aligning one document (or, summed, a whole batch).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Mention extraction, context building, and virtual-cell generation.
    pub extract_s: f64,
    /// Classifier scoring and aggregation tagging of every pair.
    pub classify_s: f64,
    /// Adaptive filtering (§V).
    pub filter_s: f64,
    /// Graph construction and entropy-ordered random-walk resolution (§VI).
    pub resolve_s: f64,
    /// Mention/target pairs scored during the classify stage. Together
    /// with `classify_s` this yields scored-pairs/sec, the classifier
    /// hot-path throughput metric.
    pub pairs_scored: u64,
    /// Pairs answered from the batched engine's unique-row dedup cache
    /// instead of a fresh forest/heuristic evaluation.
    pub rows_deduped: u64,
    /// Pairs whose forest traversal was abandoned by an exact score
    /// bound (see `crate::scoring`); their filtering outcome is decided
    /// without a computed score.
    pub pairs_pruned: u64,
    /// Candidate pairs surfaced by the retrieval index
    /// (`crate::retrieval`); zero on exhaustive (`BRIQ_NO_INDEX=1`) runs.
    pub candidates_retrieved: u64,
    /// Pairs the retrieval index proved non-viable and never
    /// featurized or scored; zero on exhaustive runs.
    pub pairs_skipped_retrieval: u64,
}

impl StageTimings {
    /// Total seconds across all four stages.
    pub fn total_s(&self) -> f64 {
        self.extract_s + self.classify_s + self.filter_s + self.resolve_s
    }

    /// Accumulate another measurement into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        self.extract_s += other.extract_s;
        self.classify_s += other.classify_s;
        self.filter_s += other.filter_s;
        self.resolve_s += other.resolve_s;
        self.pairs_scored += other.pairs_scored;
        self.rows_deduped += other.rows_deduped;
        self.pairs_pruned += other.pairs_pruned;
        self.candidates_retrieved += other.candidates_retrieved;
        self.pairs_skipped_retrieval += other.pairs_skipped_retrieval;
    }

    /// Classifier throughput in pairs per second of classify-stage time.
    /// Zero when nothing was scored or no time was observed.
    pub fn scored_pairs_per_sec(&self) -> f64 {
        if self.classify_s <= 0.0 || self.pairs_scored == 0 {
            return 0.0;
        }
        self.pairs_scored as f64 / self.classify_s
    }

    /// Pairs that actually cost a full evaluation — total minus
    /// retrieval skips, dedup hits, and pruned traversals — per second
    /// of classify-stage time. Comparing this with
    /// [`StageTimings::scored_pairs_per_sec`] shows how much work the
    /// retrieval index and batched engine avoided.
    pub fn effective_pairs_per_sec(&self) -> f64 {
        let effective = self
            .pairs_scored
            .saturating_sub(self.pairs_skipped_retrieval)
            .saturating_sub(self.rows_deduped)
            .saturating_sub(self.pairs_pruned);
        if self.classify_s <= 0.0 || effective == 0 {
            return 0.0;
        }
        effective as f64 / self.classify_s
    }
}

/// Configuration of one batch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Worker threads; `0` means one per available core.
    pub jobs: usize,
    /// Documents claimed per steal. Larger chunks amortize the atomic
    /// cursor, smaller chunks balance skewed documents better.
    pub chunk: usize,
    /// Budget applied to every document independently.
    pub budget: Budget,
    /// Record a per-document span trace and metrics (see [`crate::obs`]).
    /// Recording is worker-local and observation-only: alignments and
    /// diagnostics are byte-identical with tracing on or off.
    pub trace: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            jobs: 0,
            chunk: 4,
            budget: Budget::default(),
            trace: false,
        }
    }
}

impl BatchConfig {
    /// A config with an explicit worker count and default budget.
    pub fn with_jobs(jobs: usize) -> BatchConfig {
        BatchConfig {
            jobs,
            ..Default::default()
        }
    }

    /// The worker count actually used for `n_docs` documents: explicit
    /// `jobs`, else the core count; never more workers than documents,
    /// never fewer than one.
    pub fn effective_jobs(&self, n_docs: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.jobs
        };
        requested.min(n_docs.max(1)).max(1)
    }
}

/// The outcome of aligning one document of the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct DocReport {
    /// Position of the document in the input batch.
    pub index: usize,
    /// Alignments, bit-identical to a sequential `align_checked_with`
    /// run under the same budget.
    pub alignments: Vec<Alignment>,
    /// Everything that degraded while aligning this document.
    pub diagnostics: Diagnostics,
    /// Per-stage wall-clock for this document.
    pub timings: StageTimings,
    /// Span trace and metrics recorded for this document — present only
    /// when [`BatchConfig::trace`] was set (and the document's worker
    /// did not panic).
    pub trace: Option<DocTrace>,
}

/// Load and busy-time of one pool worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStats {
    /// Worker index in `0..jobs`.
    pub worker: usize,
    /// Documents this worker processed.
    pub documents: usize,
    /// Seconds spent aligning (excludes steal/idle time).
    pub busy_s: f64,
}

impl WorkerStats {
    /// Fraction of the batch wall-clock this worker spent aligning.
    pub fn utilization(&self, wall_s: f64) -> f64 {
        if wall_s <= 0.0 {
            return 0.0;
        }
        (self.busy_s / wall_s).clamp(0.0, 1.0)
    }
}

/// Everything [`align_batch`] observed: per-document results in input
/// order plus pool-level accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Workers actually used.
    pub jobs: usize,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// One report per input document, in input order.
    pub documents: Vec<DocReport>,
    /// Stage timings summed over all documents (CPU-seconds, so with
    /// `jobs > 1` this exceeds `wall_s`).
    pub stage_totals: StageTimings,
    /// Per-worker load, indexed by worker.
    pub workers: Vec<WorkerStats>,
}

impl BatchReport {
    /// Total alignments across the batch.
    pub fn alignment_count(&self) -> usize {
        self.documents.iter().map(|d| d.alignments.len()).sum()
    }

    /// Documents that degraded somewhere.
    pub fn degraded_documents(&self) -> usize {
        self.documents
            .iter()
            .filter(|d| !d.diagnostics.is_clean())
            .count()
    }

    /// Did every document go through without degradation?
    pub fn is_clean(&self) -> bool {
        self.documents.iter().all(|d| d.diagnostics.is_clean())
    }

    /// Documents per minute of wall-clock — the unit of Table VIII.
    pub fn docs_per_minute(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.documents.len() as f64 * 60.0 / self.wall_s
    }

    /// Classifier throughput over the whole batch: pairs scored per
    /// CPU-second of classify-stage time.
    pub fn scored_pairs_per_sec(&self) -> f64 {
        self.stage_totals.scored_pairs_per_sec()
    }

    /// Mean worker utilization over the batch wall-clock.
    pub fn mean_utilization(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        self.workers
            .iter()
            .map(|w| w.utilization(self.wall_s))
            .sum::<f64>()
            / self.workers.len() as f64
    }

    /// All diagnostics in input order, each scope prefixed with
    /// `doc <index>:` so the batch-level JSONL stream stays attributable.
    /// Contains no timings, so it is byte-identical across worker counts.
    pub fn combined_diagnostics(&self) -> Diagnostics {
        let mut out = Diagnostics::default();
        for d in &self.documents {
            for item in &d.diagnostics.items {
                let mut item = item.clone();
                item.scope = format!("doc {}: {}", d.index, item.scope);
                out.items.push(item);
            }
        }
        out
    }

    /// Per-document traces merged into one [`MetricsRegistry`], strictly
    /// in input order, plus the batch-level `documents` /
    /// `degraded_documents` counters. Counter values and histogram bucket
    /// counts are identical for every worker count (merging is
    /// commutative and the iteration order is the input order); only
    /// wall-clock-derived histogram *values* vary run to run. Documents
    /// without a trace (tracing off, or a panicked worker) contribute
    /// their coarse [`StageTimings`] instead, so the registry is useful
    /// even on an untraced run.
    pub fn merged_metrics(&self) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for d in &self.documents {
            match &d.trace {
                Some(t) => out.merge(&t.metrics),
                None => out.absorb_timings(&d.timings),
            }
        }
        out.count(names::DOCUMENTS, self.documents.len() as u64);
        out.count(names::DEGRADED_DOCUMENTS, self.degraded_documents() as u64);
        out
    }

    /// The batch's traces as one Chrome `trace_event` JSON file (see
    /// [`chrome_trace_json`]): one track per document, on the shared
    /// batch timeline. Empty-but-valid when nothing was traced.
    pub fn chrome_trace(&self) -> String {
        let traced: Vec<(usize, &DocTrace)> = self
            .documents
            .iter()
            .filter_map(|d| d.trace.as_ref().map(|t| (d.index, t)))
            .collect();
        chrome_trace_json(&traced)
    }
}

/// Align every document of `docs` with a shared `briq`, using
/// `cfg.effective_jobs(docs.len())` worker threads. See the module docs
/// for the determinism and isolation contract.
pub fn align_batch(briq: &Briq, docs: &[Document], cfg: &BatchConfig) -> BatchReport {
    align_batch_inner(briq, docs, cfg, None)
}

/// [`align_batch`] against a shared [`AlignmentStore`]: one store serves
/// every worker (its map is mutex-guarded; its counters are atomics),
/// and each document is keyed by `keys[i]` — or its batch index when
/// `keys` is `None`. Output stays input-order deterministic and
/// bit-identical to [`align_batch`] for every cache state: the store
/// only ever changes which work is *skipped*, never what a document's
/// output is (see [`crate::store`]). When the store is disabled
/// (`use_store: false` or `BRIQ_NO_STORE=1`) this *is* [`align_batch`].
pub fn align_batch_stored(
    briq: &Briq,
    docs: &[Document],
    cfg: &BatchConfig,
    store: &AlignmentStore,
    keys: Option<&[u64]>,
) -> BatchReport {
    debug_assert!(keys.is_none_or(|k| k.len() == docs.len()));
    if !briq.store_effective() {
        return align_batch_inner(briq, docs, cfg, None);
    }
    align_batch_inner(briq, docs, cfg, Some(StoreCtx { store, keys }))
}

/// The store context threaded through the worker pool when a batch runs
/// against an [`AlignmentStore`].
#[derive(Clone, Copy)]
struct StoreCtx<'a> {
    store: &'a AlignmentStore,
    keys: Option<&'a [u64]>,
}

impl StoreCtx<'_> {
    fn key(&self, index: usize) -> u64 {
        match self.keys {
            Some(keys) => keys.get(index).copied().unwrap_or(index as u64),
            None => index as u64,
        }
    }
}

fn align_batch_inner(
    briq: &Briq,
    docs: &[Document],
    cfg: &BatchConfig,
    store: Option<StoreCtx<'_>>,
) -> BatchReport {
    let start = Instant::now();
    let jobs = cfg.effective_jobs(docs.len());
    if docs.is_empty() {
        return BatchReport {
            jobs,
            wall_s: start.elapsed().as_secs_f64(),
            documents: Vec::new(),
            stage_totals: StageTimings::default(),
            workers: Vec::new(),
        };
    }
    let chunk = cfg.chunk.max(1);

    let worker_outputs: Vec<(WorkerStats, Vec<DocReport>)> = if jobs <= 1 {
        vec![run_worker(
            0,
            briq,
            docs,
            &AtomicUsize::new(0),
            chunk,
            cfg,
            start,
            store,
        )]
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    let next = &next;
                    scope.spawn(move || run_worker(w, briq, docs, next, chunk, cfg, start, store))
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| {
                    h.join().unwrap_or_else(|_| {
                        // The worker body is panic-isolated per document;
                        // reaching this means the pool loop itself died.
                        // Surviving workers' results are still merged and
                        // unclaimed documents are reported as panicked.
                        (
                            WorkerStats {
                                worker: w,
                                documents: 0,
                                busy_s: 0.0,
                            },
                            Vec::new(),
                        )
                    })
                })
                .collect()
        })
    };

    let mut slots: Vec<Option<DocReport>> = docs.iter().map(|_| None).collect();
    let mut workers = Vec::with_capacity(worker_outputs.len());
    for (stats, reports) in worker_outputs {
        workers.push(stats);
        for r in reports {
            let i = r.index;
            slots[i] = Some(r);
        }
    }
    let documents: Vec<DocReport> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panicked_report(i)))
        .collect();

    let mut stage_totals = StageTimings::default();
    for d in &documents {
        stage_totals.merge(&d.timings);
    }
    BatchReport {
        jobs,
        wall_s: start.elapsed().as_secs_f64(),
        documents,
        stage_totals,
        workers,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_worker(
    worker: usize,
    briq: &Briq,
    docs: &[Document],
    next: &AtomicUsize,
    chunk: usize,
    cfg: &BatchConfig,
    epoch: Instant,
    store: Option<StoreCtx<'_>>,
) -> (WorkerStats, Vec<DocReport>) {
    let mut out = Vec::new();
    let mut busy_s = 0.0f64;
    loop {
        let lo = next.fetch_add(chunk, Ordering::Relaxed);
        if lo >= docs.len() {
            break;
        }
        let hi = (lo + chunk).min(docs.len());
        for (i, doc) in docs[lo..hi].iter().enumerate() {
            let t0 = Instant::now();
            out.push(align_one(briq, lo + i, doc, cfg, epoch, store));
            busy_s += t0.elapsed().as_secs_f64();
        }
    }
    (
        WorkerStats {
            worker,
            documents: out.len(),
            busy_s,
        },
        out,
    )
}

fn align_one(
    briq: &Briq,
    index: usize,
    doc: &Document,
    cfg: &BatchConfig,
    epoch: Instant,
    store: Option<StoreCtx<'_>>,
) -> DocReport {
    // The recorder is worker-local (one per document, never shared), so
    // recording needs no locks; `epoch` is the batch start, putting every
    // document's spans on one shared trace timeline.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let rec = if cfg.trace {
            Recorder::enabled_at(epoch)
        } else {
            Recorder::disabled()
        };
        let (alignments, diagnostics, timings) = {
            let _g = span!(rec, names::SPAN_ALIGN, doc = index);
            match store {
                Some(ctx) => briq.align_stored(ctx.store, ctx.key(index), doc, &cfg.budget, &rec),
                None => briq.align_observed(doc, &cfg.budget, &rec),
            }
        };
        (alignments, diagnostics, timings, rec.finish())
    }));
    match result {
        Ok((alignments, diagnostics, timings, trace)) => DocReport {
            index,
            alignments,
            diagnostics,
            timings,
            trace,
        },
        Err(_) => panicked_report(index),
    }
}

/// The degraded stand-in for a document whose worker panicked: empty
/// alignments plus one `Stage::Batch` diagnostic.
fn panicked_report(index: usize) -> DocReport {
    let mut diagnostics = Diagnostics::default();
    diagnostics.record(
        Stage::Batch,
        format!("document {index}"),
        &BriqError::WorkerPanicked { doc: index },
        DegradedAction::Skipped,
    );
    DocReport {
        index,
        alignments: Vec::new(),
        diagnostics,
        timings: StageTimings::default(),
        trace: None,
    }
}

briq_json::json_struct!(StageTimings {
    extract_s,
    classify_s,
    filter_s,
    resolve_s,
    pairs_scored,
    rows_deduped,
    pairs_pruned,
    candidates_retrieved,
    pairs_skipped_retrieval
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BriqConfig;
    use briq_table::Table;

    fn doc(id: usize) -> Document {
        Document::new(
            id,
            "A total of 123 patients reported side effects; depression was \
             reported by 38 patients and eye disorders by 5 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec![
                        "effect".into(),
                        "male".into(),
                        "female".into(),
                        "total".into(),
                    ],
                    vec!["Rash".into(), "15".into(), "20".into(), "35".into()],
                    vec!["Depression".into(), "13".into(), "25".into(), "38".into()],
                    vec!["Eye Disorders".into(), "2".into(), "3".into(), "5".into()],
                ],
            )],
        )
    }

    /// A document whose virtual-cell fan-out exhausts a tight budget.
    fn hostile_doc(id: usize) -> Document {
        let mut grid = vec![(0..10).map(|c| format!("col {c}")).collect::<Vec<String>>()];
        for r in 0..10 {
            grid.push((0..10).map(|c| format!("{}", r * 10 + c)).collect());
        }
        Document::new(
            id,
            "values 7 and 23 and 55 appear in the table",
            vec![Table::from_grid("", grid)],
        )
    }

    #[test]
    fn empty_batch_is_a_clean_noop() {
        let briq = Briq::untrained(BriqConfig::default());
        let r = align_batch(&briq, &[], &BatchConfig::with_jobs(4));
        assert!(r.documents.is_empty());
        assert!(r.workers.is_empty());
        assert!(r.is_clean());
        assert_eq!(r.alignment_count(), 0);
        assert_eq!(r.docs_per_minute(), 0.0);
    }

    #[test]
    fn batch_smaller_than_worker_count() {
        let briq = Briq::untrained(BriqConfig::default());
        let docs = vec![doc(0), doc(1)];
        let r = align_batch(&briq, &docs, &BatchConfig::with_jobs(8));
        // Never more workers than documents.
        assert_eq!(r.jobs, 2);
        assert_eq!(r.documents.len(), 2);
        assert_eq!(r.workers.iter().map(|w| w.documents).sum::<usize>(), 2);
        for d in &r.documents {
            assert!(!d.alignments.is_empty());
        }
    }

    #[test]
    fn output_order_is_input_order_and_jobs_invariant() {
        let briq = Briq::untrained(BriqConfig::default());
        let docs: Vec<Document> = (0..13).map(doc).collect();
        let serial = align_batch(&briq, &docs, &BatchConfig::with_jobs(1));
        let parallel = align_batch(&briq, &docs, &BatchConfig::with_jobs(8));
        for (i, d) in serial.documents.iter().enumerate() {
            assert_eq!(d.index, i);
        }
        for (s, p) in serial.documents.iter().zip(&parallel.documents) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.alignments, p.alignments);
            assert_eq!(s.diagnostics, p.diagnostics);
        }
        assert_eq!(
            serial.combined_diagnostics().to_jsonl(),
            parallel.combined_diagnostics().to_jsonl()
        );
    }

    #[test]
    fn budget_exhaustion_is_isolated_per_document() {
        let briq = Briq::untrained(BriqConfig::default());
        let docs = vec![doc(0), hostile_doc(1), doc(2)];
        let budget = Budget {
            max_regex_steps: 1_000_000,
            max_virtual_cells_per_table: 5,
            max_graph_edges: 500_000,
            max_rwr_iterations: 200,
        };
        let cfg = BatchConfig {
            jobs: 3,
            chunk: 1,
            budget,
            trace: false,
        };
        let r = align_batch(&briq, &docs, &cfg);
        assert!(
            !r.documents[1].diagnostics.is_clean(),
            "{:?}",
            r.documents[1].diagnostics
        );
        // The healthy neighbours are untouched: same result as aligning
        // them alone under the same budget.
        for i in [0usize, 2] {
            let (solo, solo_diags) = briq.align_checked_with(&docs[i], &budget);
            assert_eq!(r.documents[i].alignments, solo);
            assert_eq!(r.documents[i].diagnostics, solo_diags);
        }
    }

    #[test]
    fn batch_matches_sequential_align_checked() {
        let briq = Briq::untrained(BriqConfig::default());
        let docs: Vec<Document> = (0..6).map(doc).collect();
        let cfg = BatchConfig {
            jobs: 4,
            chunk: 2,
            budget: Budget::default(),
            trace: false,
        };
        let r = align_batch(&briq, &docs, &cfg);
        for (i, d) in r.documents.iter().enumerate() {
            let (solo, _) = briq.align_checked(&docs[i]);
            assert_eq!(d.alignments, solo);
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let briq = Briq::untrained(BriqConfig::default());
        let docs: Vec<Document> = (0..5).map(doc).collect();
        let r = align_batch(&briq, &docs, &BatchConfig::with_jobs(2));
        assert_eq!(r.jobs, 2);
        assert_eq!(r.workers.len(), 2);
        assert_eq!(
            r.workers.iter().map(|w| w.documents).sum::<usize>(),
            docs.len()
        );
        assert!(r.wall_s > 0.0);
        assert!(r.stage_totals.total_s() > 0.0);
        for d in &r.documents {
            assert!(d.timings.total_s() >= 0.0);
        }
        for w in &r.workers {
            let u = w.utilization(r.wall_s);
            assert!((0.0..=1.0).contains(&u), "utilization {u}");
        }
        assert!(r.mean_utilization() > 0.0);
        assert!(r.docs_per_minute() > 0.0);
    }

    #[test]
    fn stage_timings_merge_and_serialize() {
        let mut a = StageTimings {
            extract_s: 1.0,
            classify_s: 2.0,
            filter_s: 3.0,
            resolve_s: 4.0,
            pairs_scored: 10,
            rows_deduped: 2,
            pairs_pruned: 1,
            candidates_retrieved: 8,
            pairs_skipped_retrieval: 2,
        };
        let b = StageTimings {
            extract_s: 0.5,
            classify_s: 0.5,
            filter_s: 0.5,
            resolve_s: 0.5,
            pairs_scored: 5,
            rows_deduped: 1,
            pairs_pruned: 1,
            candidates_retrieved: 2,
            pairs_skipped_retrieval: 3,
        };
        a.merge(&b);
        assert_eq!(a.total_s(), 12.0);
        assert_eq!(a.pairs_scored, 15);
        assert_eq!(a.rows_deduped, 3);
        assert_eq!(a.pairs_pruned, 2);
        assert_eq!(a.candidates_retrieved, 10);
        assert_eq!(a.pairs_skipped_retrieval, 5);
        assert_eq!(a.scored_pairs_per_sec(), 6.0);
        // 15 total - 5 skipped - 3 deduped - 2 pruned = 5 effective over 2.5 s.
        assert_eq!(a.effective_pairs_per_sec(), 2.0);
        let s = briq_json::to_string(&a);
        let back: StageTimings = briq_json::from_str(&s).expect("round-trips");
        assert_eq!(a, back);
    }

    #[test]
    fn traced_batch_output_is_identical_and_trace_merge_is_input_order_deterministic() {
        let briq = Briq::untrained(BriqConfig::default());
        let docs: Vec<Document> = (0..9).map(doc).collect();
        let untraced = align_batch(&briq, &docs, &BatchConfig::with_jobs(2));

        let mut runs = Vec::new();
        for jobs in [1usize, 3, 8] {
            let cfg = BatchConfig {
                jobs,
                chunk: 1,
                budget: Budget::default(),
                trace: true,
            };
            let r = align_batch(&briq, &docs, &cfg);
            // Tracing only observes: alignments and diagnostics match the
            // untraced run bit for bit.
            for (t, u) in r.documents.iter().zip(&untraced.documents) {
                assert_eq!(t.alignments, u.alignments);
                assert_eq!(t.diagnostics, u.diagnostics);
            }
            runs.push(r);
        }

        // The merged trace is input-order deterministic: per-document span
        // structure, all counters, and histogram observation counts agree
        // across jobs 1/3/8 (only wall-clock values may differ).
        let baseline = &runs[0];
        for r in &runs[1..] {
            assert_eq!(r.documents.len(), baseline.documents.len());
            for (a, b) in r.documents.iter().zip(&baseline.documents) {
                let (ta, tb) = match (&a.trace, &b.trace) {
                    (Some(ta), Some(tb)) => (ta, tb),
                    other => panic!("missing trace: {other:?}"),
                };
                assert_eq!(ta.structure(), tb.structure(), "doc {}", a.index);
                let counters_a: Vec<_> = ta.metrics.counters().collect();
                let counters_b: Vec<_> = tb.metrics.counters().collect();
                assert_eq!(counters_a, counters_b, "doc {}", a.index);
            }
            let ma = r.merged_metrics();
            let mb = baseline.merged_metrics();
            assert_eq!(
                ma.counters().collect::<Vec<_>>(),
                mb.counters().collect::<Vec<_>>()
            );
            for ((na, ha), (nb, hb)) in ma.histograms().zip(mb.histograms()) {
                assert_eq!(na, nb);
                assert_eq!(ha.count(), hb.count(), "histogram {na}");
            }
        }

        // The trace covers the pipeline stages and hot-path counters the
        // acceptance criteria name.
        let m = baseline.merged_metrics();
        for name in [
            names::PAIRS_SCORED,
            names::RETRIEVAL_CANDIDATES,
            names::MENTIONS,
        ] {
            assert!(m.counter(name) > 0, "counter {name} empty");
        }
        for span in [
            names::SPAN_ALIGN,
            names::SPAN_EXTRACT,
            names::SPAN_CLASSIFY,
            names::SPAN_FILTER,
            names::SPAN_RESOLVE,
        ] {
            assert!(
                m.histogram(&names::span_histogram(span)).is_some(),
                "span {span} missing from metrics"
            );
        }
        let trace_json = baseline.chrome_trace();
        let v = briq_json::parse(&trace_json).expect("chrome trace parses");
        let events = v
            .get("traceEvents")
            .and_then(briq_json::Value::as_array)
            .expect("traceEvents");
        assert!(events.len() > docs.len(), "{} events", events.len());
    }

    #[test]
    fn untraced_reports_still_yield_metrics_from_timings() {
        let briq = Briq::untrained(BriqConfig::default());
        let docs = vec![doc(0), doc(1)];
        let r = align_batch(&briq, &docs, &BatchConfig::with_jobs(1));
        assert!(r.documents.iter().all(|d| d.trace.is_none()));
        let m = r.merged_metrics();
        assert_eq!(m.counter(names::DOCUMENTS), 2);
        assert!(m.counter(names::PAIRS_SCORED) > 0);
        // Coarse per-stage latencies come from StageTimings absorption.
        assert!(m
            .histogram(&names::span_histogram(names::SPAN_CLASSIFY))
            .is_some());
    }

    #[test]
    fn panicked_report_shape() {
        let r = panicked_report(7);
        assert_eq!(r.index, 7);
        assert!(r.alignments.is_empty());
        assert_eq!(r.diagnostics.items.len(), 1);
        assert_eq!(r.diagnostics.items[0].stage, Stage::Batch);
        assert_eq!(r.diagnostics.items[0].action, DegradedAction::Skipped);
        assert!(r.diagnostics.items[0].error.contains("document 7"));
    }
}
