//! The text-mention tagger (§V-A).
//!
//! Tags each text mention with one of: difference, sum, change ratio,
//! percentage, or single cell — from local features only. Implemented as
//! one-vs-rest Random Forests over the feature set the paper lists:
//! approximation indicator, per-aggregation cue counts at immediate /
//! local / global scope, scale, precision, unit category, and the count of
//! exact matches in the document's tables. Tuned for high precision: an
//! aggregation tag is only emitted above a confidence threshold, otherwise
//! the mention is tagged single-cell (mis-tagging a single-cell mention as
//! an aggregate would prune away its true candidates — §V-A accepts lower
//! recall instead).

use briq_ml::{Dataset, FlatForest, RandomForest, RandomForestConfig};
use briq_table::Document;
use briq_text::cues::{count_aggregation_cues, AggregationKind, ApproxIndicator};
use briq_text::units::tagger_unit_category;

use crate::context::DocContext;
use crate::mention::TextMention;

/// Number of tagger features.
pub const TAGGER_FEATURE_COUNT: usize = 1 + 3 * 4 + 4;

/// A trained text-mention tagger.
#[derive(Debug, Clone)]
pub struct MentionTagger {
    /// One binary forest per evaluated aggregation kind, in
    /// [`AggregationKind::EVALUATED`] order.
    forests: Vec<RandomForest>,
    /// Minimum confidence to emit an aggregation tag.
    pub threshold: f64,
    /// Flattened copies of `forests` for allocation-free scoring
    /// (derived state, rebuilt on deserialization).
    flats: Vec<FlatForest>,
}

/// Compute the tagger feature vector for a text mention.
pub fn tagger_features(x: &TextMention, ctx: &DocContext, doc: &Document) -> Vec<f64> {
    let m = &ctx.mentions[x.id];
    let mut v = Vec::with_capacity(TAGGER_FEATURE_COUNT);

    // Approximation indicator (categorical).
    v.push(match x.quantity.approx {
        ApproxIndicator::None => 0.0,
        ApproxIndicator::Approximate => 1.0,
        ApproxIndicator::Exact => 2.0,
        ApproxIndicator::UpperBound => 3.0,
        ApproxIndicator::LowerBound => 4.0,
    });

    // Cue counts per aggregation kind × scope.
    let imm: Vec<&str> = m.immediate_words.iter().map(|s| s.as_str()).collect();
    let loc: Vec<&str> = m.sentence_words.iter().map(|s| s.as_str()).collect();
    let glob: Vec<&str> = ctx.paragraph_word_list.iter().map(|s| s.as_str()).collect();
    for kind in AggregationKind::EVALUATED {
        v.push(count_aggregation_cues(kind, &imm) as f64);
        v.push(count_aggregation_cues(kind, &loc) as f64);
        v.push(count_aggregation_cues(kind, &glob) as f64);
    }

    // Scale, precision, unit category.
    v.push(x.quantity.scale() as f64);
    v.push(x.quantity.precision as f64);
    v.push(tagger_unit_category(x.quantity.unit) as f64);

    // Exact matches in tables (summed over all tables).
    let exact = doc
        .tables
        .iter()
        .flat_map(|t| t.quantities().map(|(_, q)| q))
        .filter(|q| q.value == x.quantity.value || q.unnormalized == x.quantity.unnormalized)
        .count();
    v.push(exact as f64);

    debug_assert_eq!(v.len(), TAGGER_FEATURE_COUNT);
    v
}

/// Lexical detection of the *extended* aggregation kinds (average, min,
/// max) from the immediate context. The paper keeps these in the
/// framework but outside the evaluated four (§II-A); they are only
/// consulted when extended virtual cells are enabled.
pub fn extended_lexical_tags(immediate_words: &[String]) -> Vec<AggregationKind> {
    use briq_text::cues::count_aggregation_cues;
    let refs: Vec<&str> = immediate_words.iter().map(|s| s.as_str()).collect();
    [
        AggregationKind::Average,
        AggregationKind::Max,
        AggregationKind::Min,
    ]
    .into_iter()
    .filter(|&k| count_aggregation_cues(k, &refs) > 0)
    .collect()
}

/// One tagger training instance.
#[derive(Debug, Clone)]
pub struct TaggerExample {
    /// Feature vector from [`tagger_features`].
    pub features: Vec<f64>,
    /// Gold tag (None = single cell).
    pub label: Option<AggregationKind>,
}

impl MentionTagger {
    /// Train one-vs-rest forests on labeled examples.
    pub fn train(examples: &[TaggerExample], rf: RandomForestConfig, threshold: f64) -> Self {
        let forests = AggregationKind::EVALUATED
            .iter()
            .map(|&kind| {
                let mut d = Dataset::new();
                for e in examples {
                    d.push(e.features.clone(), e.label == Some(kind));
                }
                d.apply_class_weights();
                RandomForest::fit(&d, rf)
            })
            .collect();
        Self::from_parts(forests, threshold)
    }

    /// A purely lexical fallback tagger (used before training data is
    /// available): emits the cue-inferred aggregation.
    pub fn lexical(threshold: f64) -> Self {
        Self::from_parts(Vec::new(), threshold)
    }

    /// Assemble a tagger, building the flattened scoring layout.
    fn from_parts(forests: Vec<RandomForest>, threshold: f64) -> Self {
        let flats = forests.iter().map(FlatForest::from_forest).collect();
        MentionTagger {
            forests,
            threshold,
            flats,
        }
    }

    /// Lexical per-kind confidences from the immediate-scope cue counts.
    fn lexical_confidences(features: &[f64]) -> Vec<f64> {
        AggregationKind::EVALUATED
            .iter()
            .enumerate()
            .map(|(k, _)| {
                let imm = features[1 + 3 * k];
                if imm > 0.0 {
                    (0.5 + 0.25 * imm).min(1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Per-kind confidences, in [`AggregationKind::EVALUATED`] order.
    ///
    /// Trained forests are blended with the lexical cue signal by taking
    /// the maximum: a miss on a true aggregate prunes its gold candidates
    /// (unrecoverable), while over-tagging merely keeps extra virtual
    /// cells alongside the never-pruned single cells (§V-A: "we can prune
    /// mention-pairs conservatively").
    pub fn confidences(&self, features: &[f64]) -> Vec<f64> {
        let lexical = Self::lexical_confidences(features);
        if self.flats.is_empty() {
            return lexical;
        }
        self.flats
            .iter()
            .zip(lexical)
            .map(|(f, lex)| f.predict_proba_slice(features).max(lex))
            .collect()
    }

    /// Tag a mention: an aggregation kind, or `None` for single-cell.
    /// When several kinds tie (cue vocabularies overlap: "up … compared
    /// with" supports both difference and change ratio), the first in
    /// [`AggregationKind::EVALUATED`] order wins; use [`MentionTagger::tags`]
    /// to get every kind above threshold.
    pub fn tag(&self, features: &[f64]) -> Option<AggregationKind> {
        let conf = self.confidences(features);
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in conf.iter().enumerate() {
            if best.is_none_or(|(_, b)| c > b) {
                best = Some((i, c));
            }
        }
        match best {
            Some((i, score)) if score >= self.threshold => Some(AggregationKind::EVALUATED[i]),
            _ => None,
        }
    }

    /// Every aggregation kind whose confidence reaches the threshold
    /// (empty = single cell). Adaptive filtering uses this set: keeping
    /// two plausible aggregate families is cheap, losing the right one is
    /// unrecoverable.
    pub fn tags(&self, features: &[f64]) -> Vec<AggregationKind> {
        self.confidences(features)
            .iter()
            .zip(AggregationKind::EVALUATED)
            .filter(|&(&c, _)| c >= self.threshold)
            .map(|(_, k)| k)
            .collect()
    }
}

// The serialized form stays `{forests, threshold}` exactly as
// `json_struct!` produced before the flat layout existed — the flat
// arrays are derived state, rebuilt on deserialization.
impl briq_json::ToJson for MentionTagger {
    fn to_json(&self) -> briq_json::Value {
        briq_json::Value::Object(vec![
            ("forests".to_string(), self.forests.to_json()),
            ("threshold".to_string(), self.threshold.to_json()),
        ])
    }
}

impl briq_json::FromJson for MentionTagger {
    fn from_json(v: &briq_json::Value) -> briq_json::Result<Self> {
        let obj = v
            .as_object()
            .ok_or_else(|| briq_json::JsonError::new("expected MentionTagger object"))?;
        let forests: Vec<RandomForest> = briq_json::field(obj, "forests")?;
        let threshold: f64 = briq_json::field(obj, "threshold")?;
        Ok(Self::from_parts(forests, threshold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextConfig;
    use crate::mention::text_mentions;
    use briq_table::Table;

    fn doc(text: &str) -> (Document, Vec<TextMention>, DocContext) {
        let d = Document::new(
            0,
            text,
            vec![Table::from_grid(
                "",
                vec![
                    vec!["effect".into(), "patients".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            )],
        );
        let ms = text_mentions(&d);
        let ctx = DocContext::build(&d, &ms, &ContextConfig::default());
        (d, ms, ctx)
    }

    #[test]
    fn feature_vector_shape() {
        let (d, ms, ctx) = doc("a total of 73 patients were treated");
        let v = tagger_features(&ms[0], &ctx, &d);
        assert_eq!(v.len(), TAGGER_FEATURE_COUNT);
    }

    #[test]
    fn sum_cues_counted_in_immediate_scope() {
        let (d, ms, ctx) = doc("a total of 73 patients were treated");
        let v = tagger_features(&ms[0], &ctx, &d);
        // index 1 = sum/immediate
        assert!(v[1] >= 1.0, "{v:?}");
    }

    #[test]
    fn exact_match_count() {
        let (d, ms, ctx) = doc("exactly 38 patients and 99 others");
        let v38 = tagger_features(&ms[0], &ctx, &d);
        let v99 = tagger_features(&ms[1], &ctx, &d);
        assert_eq!(v38[TAGGER_FEATURE_COUNT - 1], 1.0);
        assert_eq!(v99[TAGGER_FEATURE_COUNT - 1], 0.0);
    }

    #[test]
    fn lexical_tagger_tags_sum() {
        let (d, ms, ctx) = doc("a total of 73 patients were treated");
        let tagger = MentionTagger::lexical(0.5);
        let v = tagger_features(&ms[0], &ctx, &d);
        assert_eq!(tagger.tag(&v), Some(AggregationKind::Sum));
    }

    #[test]
    fn lexical_tagger_defaults_to_single_cell() {
        let (d, ms, ctx) = doc("depression was reported by 38 patients");
        let tagger = MentionTagger::lexical(0.5);
        let v = tagger_features(&ms[0], &ctx, &d);
        assert_eq!(tagger.tag(&v), None);
    }

    #[test]
    fn trained_tagger_learns_cue_signal() {
        // Synthesize examples: sum label iff sum/immediate count > 0.
        let mut examples = Vec::new();
        for i in 0..200 {
            let mut v = vec![0.0; TAGGER_FEATURE_COUNT];
            let is_sum = i % 3 == 0;
            v[1] = if is_sum { 1.0 + (i % 2) as f64 } else { 0.0 };
            examples.push(TaggerExample {
                features: v,
                label: if is_sum {
                    Some(AggregationKind::Sum)
                } else {
                    None
                },
            });
        }
        let tagger = MentionTagger::train(&examples, RandomForestConfig::default(), 0.6);
        let mut probe = vec![0.0; TAGGER_FEATURE_COUNT];
        probe[1] = 2.0;
        assert_eq!(tagger.tag(&probe), Some(AggregationKind::Sum));
        let none = vec![0.0; TAGGER_FEATURE_COUNT];
        assert_eq!(tagger.tag(&none), None);
    }

    #[test]
    fn threshold_controls_precision() {
        let (d, ms, ctx) = doc("a total of 73 patients were treated");
        let v = tagger_features(&ms[0], &ctx, &d);
        let strict = MentionTagger::lexical(0.99);
        assert_eq!(strict.tag(&v), None); // lexical conf 0.75 < 0.99
    }
}
