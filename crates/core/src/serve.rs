//! Persistent alignment service: admission control, deadlines, and
//! graceful degradation over a TCP/JSONL wire.
//!
//! `briq-serve` (the binary in `briq-bench`) warm-loads one immutable
//! [`Briq`] and keeps it resident; this module is the server behind it.
//! The design goal is *robustness under load*, not throughput tricks —
//! every overload path has an explicit, structured answer:
//!
//! * **Bounded admission queue.** Align requests pass through an
//!   admission queue with a hard depth cap. A full queue sheds the
//!   request immediately with a `{"status":"shed","retry_after_ms":N}`
//!   response instead of buffering without bound — memory stays bounded
//!   by construction and the client learns to back off.
//! * **Deadlines.** Every request carries a wall-clock deadline (the
//!   server default, or a per-request `deadline_ms` override) enforced
//!   by a cooperative [`CancelToken`] polled inside the align stages. A
//!   request that exceeds its deadline — including time spent queued —
//!   returns a structured `Cancelled` diagnostic, never a hung socket.
//! * **Fault isolation.** Each document aligns under `catch_unwind`
//!   exactly like the batch engine: a panicking document degrades to the
//!   same `WorkerPanicked` diagnostic the batch path emits and the
//!   worker pool keeps serving.
//! * **Graceful drain.** Raising the shutdown flag (SIGTERM in the
//!   binary, or the `shutdown` op) stops the accept loop, sheds new
//!   work, lets queued and in-flight requests finish within a grace
//!   window, then force-cancels stragglers through the same token; every
//!   admitted request still gets a response.
//! * **Observability.** Counters and histograms (queue depth, shed
//!   count, deadline misses, per-stage latency) accumulate in a shared
//!   [`MetricsRegistry`], exposed live via the `metrics` op and returned
//!   in the final [`ServeReport`].
//!
//! ## Wire protocol
//!
//! One JSON object per line in both directions (JSONL). Requests:
//!
//! ```text
//! {"op":"align","html":"<page html>"}            // + optional "id", "deadline_ms"
//! {"op":"health"}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! An `align` response carries one entry per segmented document of the
//! page, in order, with the document's alignments serialized by the same
//! `ToJson` impl the `briq-align` CLI uses — for clean inputs the
//! alignment payload is **byte-identical** to the batch path (CI's
//! `serve` stage re-serializes and byte-compares to enforce it), and the
//! diagnostics use the same `doc <i>: <scope>` prefix as
//! [`BatchReport::combined_diagnostics`](crate::batch::BatchReport::combined_diagnostics).
//! Malformed lines get `{"status":"error",...}` and the connection
//! stays usable; oversized lines get an error and a close. See
//! OPERATIONS.md §9 for the operator walkthrough and DESIGN.md §12 for
//! the admission-control rationale.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use briq_json::{ToJson, Value};
use briq_table::html::parse_page;
use briq_table::segment::{segment_page, SegmentConfig};

use crate::batch::StageTimings;
use crate::error::{
    BriqError, Budget, CancelCause, CancelToken, DegradedAction, Diagnostics, Stage,
};
use crate::obs::{names, MetricsRegistry, Recorder};
use crate::pipeline::Briq;
use crate::store::{AlignmentStore, Fingerprint};

/// Lock a mutex, tolerating poisoning: a panicked holder (impossible on
/// these lock scopes, which contain no user code — but cheap to survive)
/// must not wedge the whole server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Tuning knobs for one server instance. The defaults are sized for the
/// synthetic-corpus workload CI drives; OPERATIONS.md §9 discusses how
/// to retune them for real traffic.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:4870`; port `0` picks a free port
    /// (the bound address is available from [`Server::local_addr`]).
    pub addr: String,
    /// Alignment worker threads (≥ 1).
    pub workers: usize,
    /// Admission-queue depth cap (≥ 1); request N+1 is shed.
    pub queue_depth: usize,
    /// Concurrent connection cap; excess connections get one shed line
    /// and are closed without ever reaching the queue.
    pub max_connections: usize,
    /// Hard cap on one request line's length in bytes; longer lines get
    /// an error response and the connection is closed.
    pub max_request_bytes: usize,
    /// Default wall-clock deadline per align request, in ms (`0` = no
    /// deadline). A request's `deadline_ms` field overrides it.
    pub default_deadline_ms: u64,
    /// `retry_after_ms` value in shed responses — the back-off hint.
    pub retry_after_ms: u64,
    /// How long a drain waits for queued + in-flight work before
    /// force-cancelling it.
    pub drain_grace_ms: u64,
    /// Poll interval for the accept loop, socket reads, and worker
    /// queue waits — the latency floor for noticing a drain.
    pub poll_interval_ms: u64,
    /// Per-request resource budget (identical role to the batch path).
    pub budget: Budget,
    /// Durable alignment-store directory. `None` keeps the store
    /// in-memory: warm state dies with the process. With a directory
    /// set, the server recovers the store on boot and persists it on
    /// graceful drain (DESIGN.md §16, OPERATIONS.md §13).
    pub store_dir: Option<String>,
    /// Resident-memory budget for the alignment store in bytes; `0`
    /// means unbounded. Entries beyond it are evicted LRU-first.
    pub store_max_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 32,
            max_connections: 64,
            max_request_bytes: 1 << 20,
            default_deadline_ms: 10_000,
            retry_after_ms: 50,
            drain_grace_ms: 2_000,
            poll_interval_ms: 10,
            budget: Budget::default(),
            store_dir: None,
            store_max_bytes: 0,
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Align the segmented documents of one HTML page.
    Align {
        /// Opaque client correlation id, echoed back verbatim.
        id: Option<Value>,
        /// The page HTML (same input `briq-align` takes from a file).
        html: String,
        /// Per-request deadline override in ms (`0` = no deadline).
        deadline_ms: Option<u64>,
    },
    /// Liveness/readiness probe.
    Health,
    /// Live metrics snapshot.
    Metrics,
    /// Begin a graceful drain, then exit.
    Shutdown,
}

/// Parse one JSONL request line. Errors are client-facing strings —
/// they go straight into an `error` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = briq_json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("missing string field \"op\"")?;
    match op {
        "align" => {
            let html = v
                .get("html")
                .and_then(Value::as_str)
                .ok_or("align needs a string field \"html\"")?
                .to_string();
            let deadline_ms = match v.get("deadline_ms") {
                None => None,
                Some(d) => Some(
                    d.as_f64()
                        .filter(|x| *x >= 0.0 && x.fract() == 0.0)
                        .ok_or("\"deadline_ms\" must be a non-negative integer")?
                        as u64,
                ),
            };
            Ok(Request::Align {
                id: v.get("id").cloned(),
                html,
                deadline_ms,
            })
        }
        "health" => Ok(Request::Health),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn push_id(fields: &mut Vec<(&str, Value)>, id: Option<&Value>) {
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
}

/// The load-shedding response: the queue (or connection table) is full.
/// Deterministic for a given config — CI asserts the exact bytes.
pub fn shed_response(id: Option<&Value>, retry_after_ms: u64) -> Value {
    let mut fields = vec![("status", Value::Str("shed".into()))];
    push_id(&mut fields, id);
    fields.push(("retry_after_ms", Value::Num(retry_after_ms as f64)));
    obj(fields)
}

/// A request-level error response (malformed line, oversized line,
/// unknown op). The connection survives unless the transport itself is
/// compromised.
pub fn error_response(id: Option<&Value>, error: &str) -> Value {
    let mut fields = vec![("status", Value::Str("error".into()))];
    push_id(&mut fields, id);
    fields.push(("error", Value::Str(error.into())));
    obj(fields)
}

/// Everything the worker learned while serving one align request —
/// feeds the metrics registry.
#[derive(Debug, Default, Clone)]
pub struct AlignOutcome {
    /// Number of segmented documents served.
    pub documents: usize,
    /// Any diagnostic anywhere in the request?
    pub degraded: bool,
    /// Documents whose alignment panicked (isolated, not fatal).
    pub panics: u64,
    /// Documents cancelled by a deadline.
    pub deadline_cancelled: u64,
    /// Documents cancelled by a shutdown drain.
    pub shutdown_cancelled: u64,
    /// Summed per-stage wall clock across the request's documents.
    pub timings: StageTimings,
}

/// Serve one align request: parse + segment the page, align every
/// document under `budget` and `cancel`, and build the response value.
///
/// Pure with respect to the server — callable from unit tests without a
/// socket. The per-document treatment mirrors [`crate::batch`] exactly
/// (same `align_cancellable` path, same `catch_unwind` isolation, same
/// panicked-document diagnostic, same `doc <i>: <scope>` prefixes), so
/// clean responses are byte-compatible with `briq-align` output.
///
/// With `store: Some(..)` each segmented document runs through the
/// warm [`AlignmentStore`] instead, keyed by the request identity (the
/// client `id` when present, else the page HTML) mixed with the
/// segment index — so a client re-submitting a page under a stable id
/// is served incrementally. Responses stay bit-identical either way
/// (the store contract, DESIGN.md §15).
pub fn serve_align(
    briq: &Briq,
    id: Option<&Value>,
    html: &str,
    budget: &Budget,
    cancel: &CancelToken,
    store: Option<&AlignmentStore>,
) -> (Value, AlignOutcome) {
    let page = parse_page(html);
    let docs = segment_page(&page, &SegmentConfig::default(), 0);
    let request_fp = {
        let mut f = Fingerprint::new();
        match id {
            Some(v) => f.str(&v.to_string_compact()),
            None => f.str(html),
        }
        f.finish()
    };
    let mut outcome = AlignOutcome {
        documents: docs.len(),
        ..AlignOutcome::default()
    };
    let mut doc_values = Vec::with_capacity(docs.len());
    for (i, doc) in docs.iter().enumerate() {
        let result = catch_unwind(AssertUnwindSafe(|| match store {
            Some(st) => {
                let mut f = Fingerprint::new();
                f.u64(request_fp);
                f.usize(i);
                briq.align_stored_cancellable(
                    st,
                    f.finish(),
                    doc,
                    budget,
                    &Recorder::disabled(),
                    cancel,
                )
            }
            None => briq.align_cancellable(doc, budget, &Recorder::disabled(), cancel),
        }));
        let (alignments, diagnostics) = match result {
            Ok((alignments, diagnostics, timings)) => {
                outcome.timings.merge(&timings);
                (alignments, diagnostics)
            }
            Err(_) => {
                outcome.panics += 1;
                let mut diagnostics = Diagnostics::default();
                diagnostics.record(
                    Stage::Batch,
                    format!("document {i}"),
                    &BriqError::WorkerPanicked { doc: i },
                    DegradedAction::Skipped,
                );
                (Vec::new(), diagnostics)
            }
        };
        for d in &diagnostics.items {
            if d.action == DegradedAction::Cancelled {
                match cancel.cause() {
                    Some(CancelCause::Shutdown) => outcome.shutdown_cancelled += 1,
                    _ => outcome.deadline_cancelled += 1,
                }
            }
        }
        outcome.degraded |= !diagnostics.is_clean();
        let diag_values: Vec<Value> = diagnostics
            .items
            .iter()
            .map(|item| {
                let mut item = item.clone();
                item.scope = format!("doc {i}: {}", item.scope);
                item.to_json()
            })
            .collect();
        doc_values.push(obj(vec![
            ("doc", Value::Num(i as f64)),
            ("alignments", alignments.to_json()),
            ("diagnostics", Value::Array(diag_values)),
        ]));
    }
    let mut fields = vec![("status", Value::Str("ok".into()))];
    push_id(&mut fields, id);
    fields.push(("degraded", Value::Bool(outcome.degraded)));
    fields.push(("documents", Value::Array(doc_values)));
    (obj(fields), outcome)
}

/// A point-in-time JSON rendering of the registry: every counter, plus
/// count/mean/quantiles for every histogram.
pub fn metrics_snapshot(reg: &MetricsRegistry) -> Value {
    let counters: Vec<(String, Value)> = reg
        .counters()
        .map(|(k, v)| (k.to_string(), Value::Num(v as f64)))
        .collect();
    let histograms: Vec<(String, Value)> = reg
        .histograms()
        .map(|(k, h)| {
            (
                k.to_string(),
                obj(vec![
                    ("count", Value::Num(h.count() as f64)),
                    ("mean", Value::Num(h.mean())),
                    ("p50", Value::Num(h.quantile(0.5))),
                    ("p99", Value::Num(h.quantile(0.99))),
                    ("max", Value::Num(h.max())),
                ]),
            )
        })
        .collect();
    obj(vec![
        ("counters", Value::Object(counters)),
        ("histograms", Value::Object(histograms)),
    ])
}

/// One queued align request.
struct Job {
    id: Option<Value>,
    html: String,
    cancel: CancelToken,
    enqueued: Instant,
    slot: Arc<ResultSlot>,
}

/// Hand-off cell between the worker that computes a response and the
/// connection thread that writes it.
struct ResultSlot {
    value: Mutex<Option<Value>>,
    cond: Condvar,
}

impl ResultSlot {
    fn new() -> Arc<ResultSlot> {
        Arc::new(ResultSlot {
            value: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn put(&self, v: Value) {
        *lock(&self.value) = Some(v);
        self.cond.notify_all();
    }

    /// Block until the worker fills the slot. Workers always fill every
    /// admitted job's slot — even cancelled or panicked ones — so this
    /// terminates; the poll interval only bounds wakeup latency.
    fn take(&self, poll: Duration) -> Value {
        let mut guard = lock(&self.value);
        loop {
            if let Some(v) = guard.take() {
                return v;
            }
            guard = match self.cond.wait_timeout(guard, poll) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// The bounded admission queue: `try_push` never blocks and never grows
/// the queue past `cap` — a full queue is the *caller's* problem (shed),
/// which is what keeps server memory bounded under floods.
pub(crate) struct AdmissionQueue {
    cap: usize,
    inner: Mutex<VecDeque<Job>>,
    cond: Condvar,
}

impl AdmissionQueue {
    fn new(cap: usize) -> AdmissionQueue {
        AdmissionQueue {
            cap: cap.max(1),
            inner: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
        }
    }

    fn depth(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Admit `job`, returning the depth after the push; `Err(job)` means
    /// the queue is at capacity and the job must be shed.
    fn try_push(&self, job: Job) -> Result<usize, Job> {
        let mut q = lock(&self.inner);
        if q.len() >= self.cap {
            return Err(job);
        }
        q.push_back(job);
        let depth = q.len();
        drop(q);
        self.cond.notify_one();
        Ok(depth)
    }

    fn pop(&self, timeout: Duration) -> Option<Job> {
        let mut q = lock(&self.inner);
        if let Some(job) = q.pop_front() {
            return Some(job);
        }
        let (mut q, _) = match self.cond.wait_timeout(q, timeout) {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        q.pop_front()
    }
}

/// Shared state of one running server.
struct Shared<'a> {
    briq: &'a Briq,
    cfg: &'a ServeConfig,
    queue: AdmissionQueue,
    metrics: Mutex<MetricsRegistry>,
    /// Drain requested (SIGTERM watcher, `shutdown` op, or test hook).
    shutdown: Arc<AtomicBool>,
    /// Raised after the drain grace expires; it is the flag inside every
    /// admitted request's [`CancelToken`], so raising it cancels all
    /// in-flight and still-queued work cooperatively.
    force_cancel: Arc<AtomicBool>,
    inflight: AtomicUsize,
    connections: AtomicUsize,
    /// Warm alignment store shared across requests and workers — `None`
    /// when disabled (`use_store: false` or `BRIQ_NO_STORE=1`), in
    /// which case every request takes the plain full-recompute path.
    store: Option<AlignmentStore>,
}

impl Shared<'_> {
    fn poll(&self) -> Duration {
        Duration::from_millis(self.cfg.poll_interval_ms.max(1))
    }

    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn count(&self, name: &str, n: u64) {
        if n > 0 {
            lock(&self.metrics).count(name, n);
        }
    }
}

/// Final tallies of one server lifetime, for logs and tests.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Align requests admitted or shed (not health/metrics probes).
    pub requests: u64,
    /// Requests shed by the admission queue or connection cap.
    pub shed: u64,
    /// Documents cancelled because their deadline passed.
    pub deadline_misses: u64,
    /// Documents whose alignment panicked (isolated).
    pub panics: u64,
    /// The full metrics registry at shutdown.
    pub metrics: MetricsRegistry,
}

/// A bound-but-not-yet-running server. Binding is separate from running
/// so callers can learn the (possibly OS-assigned) port and keep a
/// handle on the shutdown flag before the blocking accept loop starts.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind `cfg.addr`. The listener is nonblocking — the accept loop
    /// polls it so it can notice a drain between connections.
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually-bound address (resolves port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The drain flag: store `true` (from a signal watcher or another
    /// thread) and the server sheds new work, finishes what it admitted,
    /// and [`Server::run`] returns.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until drained. Blocks; spawns `cfg.workers` alignment
    /// workers plus one thread per live connection on a scoped pool.
    pub fn run(self, briq: &Briq) -> ServeReport {
        let sh = Shared {
            briq,
            cfg: &self.cfg,
            queue: AdmissionQueue::new(self.cfg.queue_depth),
            metrics: Mutex::new(MetricsRegistry::new()),
            shutdown: Arc::clone(&self.shutdown),
            force_cancel: Arc::new(AtomicBool::new(false)),
            inflight: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            store: briq.store_effective().then(|| {
                let opts = crate::store::StoreOptions {
                    dir: self.cfg.store_dir.as_ref().map(Into::into),
                    max_bytes: self.cfg.store_max_bytes,
                    ..crate::store::StoreOptions::default()
                };
                match AlignmentStore::with_options(briq, &opts) {
                    Ok(st) => {
                        if st.persisted() {
                            eprintln!(
                                "store: recovered {} entr{} from {} in {:.3}s{}{}",
                                st.recovered_entries(),
                                if st.recovered_entries() == 1 {
                                    "y"
                                } else {
                                    "ies"
                                },
                                self.cfg.store_dir.as_deref().unwrap_or("?"),
                                st.recover_seconds(),
                                if st.recover_truncated() {
                                    " (torn tail truncated)"
                                } else {
                                    ""
                                },
                                if st.recover_rebuilt() {
                                    " (incompatible state rebuilt)"
                                } else {
                                    ""
                                },
                            );
                        }
                        st
                    }
                    Err(e) => {
                        // Persistence failing to open costs durability,
                        // never availability: fall back to in-memory.
                        eprintln!(
                            "store: cannot open {}: {e}; continuing in-memory",
                            self.cfg.store_dir.as_deref().unwrap_or("?")
                        );
                        AlignmentStore::for_system(briq)
                    }
                }
            }),
        };
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers.max(1) {
                s.spawn(|| run_worker(&sh));
            }
            while !sh.draining() {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if sh.connections.load(Ordering::SeqCst) >= self.cfg.max_connections {
                            sh.count(names::SERVE_CONNECTIONS_REFUSED, 1);
                            refuse_connection(&sh, stream);
                            continue;
                        }
                        sh.connections.fetch_add(1, Ordering::SeqCst);
                        sh.count(names::SERVE_CONNECTIONS, 1);
                        let shr = &sh;
                        s.spawn(move || {
                            run_connection(shr, stream);
                            shr.connections.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(sh.poll());
                    }
                    Err(_) => std::thread::sleep(sh.poll()),
                }
            }
            // Drain: give queued + in-flight work the grace window, then
            // force-cancel the rest through the shared token flag. The
            // workers keep popping until the queue is empty, so every
            // admitted job's slot gets filled either way.
            let t0 = Instant::now();
            let grace = Duration::from_millis(self.cfg.drain_grace_ms);
            while (sh.queue.depth() > 0 || sh.inflight.load(Ordering::SeqCst) > 0)
                && t0.elapsed() < grace
            {
                std::thread::sleep(sh.poll());
            }
            sh.force_cancel.store(true, Ordering::SeqCst);
        });
        // Persist on drain: compact everything resident into a snapshot
        // so the next boot recovers from one file. Failure is logged,
        // not fatal — the novelty log already holds every entry.
        if let Some(st) = sh.store.as_ref().filter(|st| st.persisted()) {
            match st.snapshot() {
                Ok(()) => eprintln!(
                    "store: persisted {} entr{} ({} snapshot bytes)",
                    st.len(),
                    if st.len() == 1 { "y" } else { "ies" },
                    st.snapshot_bytes(),
                ),
                Err(e) => eprintln!("store: persist on drain failed: {e}"),
            }
        }
        let metrics = lock(&sh.metrics).clone();
        ServeReport {
            requests: metrics.counter(names::SERVE_REQUESTS),
            shed: metrics.counter(names::SERVE_SHED),
            deadline_misses: metrics.counter(names::SERVE_DEADLINE_MISSES),
            panics: metrics.counter(names::SERVE_PANICS),
            metrics,
        }
    }
}

/// Alignment worker: pop, align, fill the slot, repeat. Exits when a
/// drain has been requested *and* the queue is empty — queued jobs are
/// always served (their tokens may cancel them instantly, but their
/// clients still get a structured response).
fn run_worker(sh: &Shared<'_>) {
    loop {
        match sh.queue.pop(sh.poll()) {
            Some(job) => {
                sh.inflight.fetch_add(1, Ordering::SeqCst);
                let wait_s = job.enqueued.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let (resp, outcome) = serve_align(
                    sh.briq,
                    job.id.as_ref(),
                    &job.html,
                    &sh.cfg.budget,
                    &job.cancel,
                    sh.store.as_ref(),
                );
                {
                    let mut m = lock(&sh.metrics);
                    m.observe(names::SERVE_QUEUE_WAIT_S, wait_s);
                    m.observe(names::SERVE_REQUEST_S, t0.elapsed().as_secs_f64());
                    m.absorb_timings(&outcome.timings);
                    if outcome.degraded {
                        m.count(names::SERVE_DEGRADED, 1);
                    }
                    m.count(names::SERVE_PANICS, outcome.panics);
                    m.count(names::SERVE_DEADLINE_MISSES, outcome.deadline_cancelled);
                    m.count(
                        names::CANCELLATIONS,
                        outcome.deadline_cancelled + outcome.shutdown_cancelled,
                    );
                }
                job.slot.put(resp);
                sh.inflight.fetch_sub(1, Ordering::SeqCst);
            }
            None => {
                if sh.draining() && sh.queue.depth() == 0 {
                    return;
                }
            }
        }
    }
}

/// Write one JSONL response line. Returns false on transport failure
/// (half-closed peer, write timeout) — the caller drops the connection.
fn write_line(sh: &Shared<'_>, stream: &mut TcpStream, v: &Value) -> bool {
    let mut line = v.to_string_compact();
    line.push('\n');
    match stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.flush())
    {
        Ok(()) => true,
        Err(_) => {
            sh.count(names::SERVE_WRITE_ERRORS, 1);
            false
        }
    }
}

/// Over the connection cap: one shed line, then close.
fn refuse_connection(sh: &Shared<'_>, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    write_line(sh, &mut stream, &shed_response(None, sh.cfg.retry_after_ms));
}

/// What a handled request line asks the connection loop to do next.
enum After {
    Continue,
    Close,
}

/// One connection: read JSONL lines, answer each. Requests on a single
/// connection are served strictly in order; concurrency comes from
/// multiple connections feeding the shared queue.
fn run_connection(sh: &Shared<'_>, mut stream: TcpStream) {
    // Accepted sockets may inherit the listener's nonblocking mode on
    // some platforms; force blocking + a read timeout so the loop can
    // poll the drain flag while idle.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(sh.poll()));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2_000)));
    let _ = stream.set_nodelay(true);

    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 8192];
    loop {
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = pending.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line_bytes[..nl]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            match handle_line(sh, &mut stream, &line) {
                After::Continue => {}
                After::Close => return,
            }
        }
        if sh.draining() {
            return;
        }
        if pending.len() > sh.cfg.max_request_bytes {
            sh.count(names::SERVE_OVERSIZED, 1);
            write_line(
                sh,
                &mut stream,
                &error_response(
                    None,
                    &format!(
                        "request line exceeds {} bytes; closing connection",
                        sh.cfg.max_request_bytes
                    ),
                ),
            );
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // EOF / half-closed peer
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Dispatch one request line and write its response.
fn handle_line(sh: &Shared<'_>, stream: &mut TcpStream, line: &str) -> After {
    let req = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            sh.count(names::SERVE_MALFORMED, 1);
            return if write_line(sh, stream, &error_response(None, &e)) {
                After::Continue
            } else {
                After::Close
            };
        }
    };
    match req {
        Request::Health => {
            let resp = obj(vec![
                ("status", Value::Str("ok".into())),
                ("op", Value::Str("health".into())),
                ("ready", Value::Bool(!sh.draining())),
                ("draining", Value::Bool(sh.draining())),
                ("queue_depth", Value::Num(sh.queue.depth() as f64)),
                (
                    "inflight",
                    Value::Num(sh.inflight.load(Ordering::SeqCst) as f64),
                ),
                (
                    "connections",
                    Value::Num(sh.connections.load(Ordering::SeqCst) as f64),
                ),
                ("workers", Value::Num(sh.cfg.workers as f64)),
                // Effective retrieval-index state for this process:
                // config knob AND the BRIQ_NO_INDEX escape hatch.
                (
                    "index_enabled",
                    Value::Bool(
                        sh.briq.cfg.use_index
                            && std::env::var_os("BRIQ_NO_INDEX").is_none_or(|v| v != "1"),
                    ),
                ),
                // Effective alignment-store state (config knob AND the
                // BRIQ_NO_STORE escape hatch) plus its lifetime hit
                // rate — the fraction of lookups served fully warm.
                ("store_enabled", Value::Bool(sh.store.is_some())),
                (
                    "store_hit_rate",
                    Value::Num(sh.store.as_ref().map_or(0.0, |s| s.hit_rate())),
                ),
                // Durable-store state: whether a --store-dir backs this
                // server, and how many entries the boot recovered from
                // it (0 on a cold first boot).
                (
                    "store_persisted",
                    Value::Bool(sh.store.as_ref().is_some_and(|s| s.persisted())),
                ),
                (
                    "store_recovered_entries",
                    Value::Num(sh.store.as_ref().map_or(0, |s| s.recovered_entries()) as f64),
                ),
            ]);
            ok_or_close(write_line(sh, stream, &resp))
        }
        Request::Metrics => {
            // Store counters live on the store itself (atomics), not the
            // registry — inject them into a snapshot copy so the metrics
            // endpoint reports one merged view.
            let mut reg = lock(&sh.metrics).clone();
            if let Some(st) = &sh.store {
                reg.count(names::STORE_HITS, st.hits());
                reg.count(names::STORE_INVALIDATIONS, st.invalidations());
                reg.count(names::MENTIONS_REALIGNED, st.mentions_realigned());
                reg.observe(names::STORE_BYTES_PEAK, st.bytes_peak() as f64);
                reg.count(names::STORE_EVICTIONS, st.evictions());
                if st.persisted() {
                    reg.count(names::STORE_RECOVERED_ENTRIES, st.recovered_entries());
                    reg.count(names::STORE_COMPACTIONS, st.compactions());
                    reg.observe(names::STORE_LOG_BYTES, st.log_bytes() as f64);
                    reg.observe(names::STORE_SNAPSHOT_BYTES, st.snapshot_bytes() as f64);
                }
            }
            let snapshot = metrics_snapshot(&reg);
            let resp = obj(vec![
                ("status", Value::Str("ok".into())),
                ("op", Value::Str("metrics".into())),
                ("queue_depth", Value::Num(sh.queue.depth() as f64)),
                ("metrics", snapshot),
            ]);
            ok_or_close(write_line(sh, stream, &resp))
        }
        Request::Shutdown => {
            sh.shutdown.store(true, Ordering::SeqCst);
            let resp = obj(vec![
                ("status", Value::Str("ok".into())),
                ("op", Value::Str("shutdown".into())),
                ("draining", Value::Bool(true)),
            ]);
            write_line(sh, stream, &resp);
            After::Close
        }
        Request::Align {
            id,
            html,
            deadline_ms,
        } => {
            sh.count(names::SERVE_REQUESTS, 1);
            if sh.draining() {
                sh.count(names::SERVE_SHED, 1);
                write_line(
                    sh,
                    stream,
                    &shed_response(id.as_ref(), sh.cfg.retry_after_ms),
                );
                return After::Close;
            }
            // Deadline runs from admission, so time spent queued counts
            // against the request — a deadline is a promise about total
            // latency, not just compute.
            let deadline_ms = deadline_ms.unwrap_or(sh.cfg.default_deadline_ms);
            let mut cancel = CancelToken::with_flag(Arc::clone(&sh.force_cancel));
            if deadline_ms > 0 {
                cancel = cancel.and_deadline(Instant::now() + Duration::from_millis(deadline_ms));
            }
            let slot = ResultSlot::new();
            let job = Job {
                id: id.clone(),
                html,
                cancel,
                enqueued: Instant::now(),
                slot: Arc::clone(&slot),
            };
            match sh.queue.try_push(job) {
                Err(_) => {
                    sh.count(names::SERVE_SHED, 1);
                    ok_or_close(write_line(
                        sh,
                        stream,
                        &shed_response(id.as_ref(), sh.cfg.retry_after_ms),
                    ))
                }
                Ok(depth) => {
                    lock(&sh.metrics).observe(names::SERVE_QUEUE_DEPTH, depth as f64);
                    let resp = slot.take(sh.poll());
                    ok_or_close(write_line(sh, stream, &resp))
                }
            }
        }
    }
}

fn ok_or_close(wrote: bool) -> After {
    if wrote {
        After::Continue
    } else {
        After::Close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchConfig;
    use crate::pipeline::{Briq, BriqConfig};

    fn test_page() -> String {
        "<html><body>\
         <p>A total of 123 patients reported side effects; depression was \
         the most common, reported by 38 patients, and eye disorders the \
         least common, reported by 5 patients.</p>\
         <table><tr><th>side effects</th><th>male</th><th>female</th>\
         <th>total</th></tr>\
         <tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>\
         <tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>\
         <tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>\
         <tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>\
         <tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>\
         </table></body></html>"
            .to_string()
    }

    fn briq() -> Briq {
        Briq::untrained(BriqConfig::default())
    }

    #[test]
    fn parse_request_align_with_id_and_deadline() {
        let r = parse_request(r#"{"op":"align","id":7,"html":"<p>x</p>","deadline_ms":250}"#);
        assert_eq!(
            r,
            Ok(Request::Align {
                id: Some(Value::Num(7.0)),
                html: "<p>x</p>".into(),
                deadline_ms: Some(250),
            })
        );
    }

    #[test]
    fn parse_request_rejects_malformed_inputs() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{}").is_err());
        assert!(parse_request(r#"{"op":"align"}"#).is_err());
        assert!(parse_request(r#"{"op":"align","html":"x","deadline_ms":-1}"#).is_err());
        assert!(parse_request(r#"{"op":"frobnicate"}"#).is_err());
        assert_eq!(parse_request(r#"{"op":"health"}"#), Ok(Request::Health));
        assert_eq!(parse_request(r#"{"op":"metrics"}"#), Ok(Request::Metrics));
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
    }

    #[test]
    fn shed_and_error_responses_are_deterministic_bytes() {
        assert_eq!(
            shed_response(Some(&Value::Num(3.0)), 50).to_string_compact(),
            r#"{"status":"shed","id":3,"retry_after_ms":50}"#
        );
        assert_eq!(
            error_response(None, "bad").to_string_compact(),
            r#"{"status":"error","error":"bad"}"#
        );
    }

    #[test]
    fn serve_align_matches_batch_path_bit_for_bit() {
        let briq = briq();
        let html = test_page();
        let store = AlignmentStore::for_system(&briq);
        let (resp, outcome) = serve_align(
            &briq,
            None,
            &html,
            &Budget::default(),
            &CancelToken::none(),
            Some(&store),
        );
        assert!(!outcome.degraded);
        assert_eq!(outcome.panics, 0);

        let page = parse_page(&html);
        let docs = segment_page(&page, &SegmentConfig::default(), 0);
        assert_eq!(outcome.documents, docs.len());
        let report = briq.align_batch(&docs, &BatchConfig::with_jobs(1));

        let served = resp.get("documents").and_then(Value::as_array).unwrap();
        assert_eq!(served.len(), report.documents.len());
        for (sv, dr) in served.iter().zip(&report.documents) {
            // The wire alignments round-trip to the exact bytes the CLI
            // prints for the same page.
            let wire: Vec<crate::mention::Alignment> =
                briq_json::FromJson::from_json(sv.get("alignments").unwrap()).unwrap();
            assert_eq!(
                briq_json::to_string_pretty(&wire),
                briq_json::to_string_pretty(&dr.alignments)
            );
        }
    }

    #[test]
    fn serve_align_with_fired_token_returns_cancelled_not_partial() {
        let briq = briq();
        let flag = Arc::new(AtomicBool::new(true));
        let (resp, outcome) = serve_align(
            &briq,
            None,
            &test_page(),
            &Budget::default(),
            &CancelToken::with_flag(flag),
            None,
        );
        assert!(outcome.degraded);
        assert!(outcome.shutdown_cancelled > 0);
        let served = resp.get("documents").and_then(Value::as_array).unwrap();
        for sv in served {
            assert_eq!(
                sv.get("alignments")
                    .and_then(Value::as_array)
                    .unwrap()
                    .len(),
                0
            );
            let diags = sv.get("diagnostics").and_then(Value::as_array).unwrap();
            assert_eq!(diags.len(), 1);
        }
    }

    #[test]
    fn admission_queue_sheds_exactly_past_capacity() {
        let q = AdmissionQueue::new(2);
        let mk = || Job {
            id: None,
            html: String::new(),
            cancel: CancelToken::none(),
            enqueued: Instant::now(),
            slot: ResultSlot::new(),
        };
        assert_eq!(q.try_push(mk()).ok(), Some(1));
        assert_eq!(q.try_push(mk()).ok(), Some(2));
        assert!(q.try_push(mk()).is_err());
        assert!(q.pop(Duration::from_millis(1)).is_some());
        assert_eq!(q.try_push(mk()).ok(), Some(2));
    }

    #[test]
    fn metrics_snapshot_lists_counters_and_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.count(names::SERVE_SHED, 3);
        reg.observe(names::SERVE_REQUEST_S, 0.25);
        let snap = metrics_snapshot(&reg);
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get(names::SERVE_SHED))
                .and_then(Value::as_f64),
            Some(3.0)
        );
        let h = snap
            .get("histograms")
            .and_then(|h| h.get(names::SERVE_REQUEST_S))
            .unwrap();
        assert_eq!(h.get("count").and_then(Value::as_f64), Some(1.0));
    }

    /// Helper: a loopback client for the end-to-end tests.
    struct Client {
        stream: TcpStream,
        buf: Vec<u8>,
    }

    impl Client {
        fn connect(addr: SocketAddr) -> Client {
            let stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            Client {
                stream,
                buf: Vec::new(),
            }
        }

        fn send(&mut self, line: &str) {
            self.stream.write_all(line.as_bytes()).unwrap();
            self.stream.write_all(b"\n").unwrap();
        }

        fn recv(&mut self) -> Value {
            let mut chunk = [0u8; 4096];
            loop {
                if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = self.buf.drain(..=nl).collect();
                    let s = String::from_utf8(line[..nl].to_vec()).unwrap();
                    return briq_json::parse(&s).unwrap();
                }
                let n = self.stream.read(&mut chunk).unwrap();
                assert!(n > 0, "server closed before a full response line");
                self.buf.extend_from_slice(&chunk[..n]);
            }
        }
    }

    #[test]
    fn end_to_end_align_health_metrics_shutdown() {
        let briq = briq();
        let server = Server::bind(ServeConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&briq));

            let mut c = Client::connect(addr);
            let req = obj(vec![
                ("op", Value::Str("align".into())),
                ("id", Value::Num(1.0)),
                ("html", Value::Str(test_page())),
            ]);
            c.send(&req.to_string_compact());
            let resp = c.recv();
            assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));
            assert_eq!(resp.get("id").and_then(Value::as_f64), Some(1.0));
            assert_eq!(resp.get("degraded").and_then(Value::as_bool), Some(false));
            assert!(!resp
                .get("documents")
                .and_then(Value::as_array)
                .unwrap()
                .is_empty());

            c.send(r#"{"op":"health"}"#);
            let health = c.recv();
            assert_eq!(health.get("ready").and_then(Value::as_bool), Some(true));

            c.send("this is not json");
            let err = c.recv();
            assert_eq!(err.get("status").and_then(Value::as_str), Some("error"));

            // The connection survives a malformed line.
            c.send(r#"{"op":"metrics"}"#);
            let metrics = c.recv();
            assert_eq!(metrics.get("op").and_then(Value::as_str), Some("metrics"));

            c.send(r#"{"op":"shutdown"}"#);
            let bye = c.recv();
            assert_eq!(bye.get("op").and_then(Value::as_str), Some("shutdown"));

            let report = handle.join().unwrap();
            assert_eq!(report.requests, 1);
            assert_eq!(report.panics, 0);
            assert_eq!(report.metrics.counter(names::SERVE_MALFORMED), 1);
        });
    }

    #[test]
    fn drain_cancels_stuck_requests_and_still_answers_them() {
        let briq = briq();
        let server = Server::bind(ServeConfig {
            workers: 1,
            drain_grace_ms: 50,
            default_deadline_ms: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = server.local_addr().unwrap();
        let flag = server.shutdown_flag();
        std::thread::scope(|s| {
            let handle = s.spawn(|| server.run(&briq));
            let mut c = Client::connect(addr);
            let req = obj(vec![
                ("op", Value::Str("align".into())),
                ("html", Value::Str(test_page())),
            ]);
            c.send(&req.to_string_compact());
            let resp = c.recv();
            assert_eq!(resp.get("status").and_then(Value::as_str), Some("ok"));

            // Now drain externally (as the SIGTERM watcher would).
            flag.store(true, Ordering::SeqCst);
            let report = handle.join().unwrap();
            assert_eq!(report.requests, 1);
        });
    }
}
