//! Sublinear candidate retrieval: a per-document inverted index that
//! hands the [`crate::scoring::ScoringEngine`] a bounded candidate set
//! per mention instead of the full mention × cell cross product
//! (DESIGN.md §13).
//!
//! [`CandidateIndex`] is built once per document over three keys:
//!
//! * **aggregation-kind slots** — single cells plus one slot per
//!   [`AggregationKind`], so a mention's tagger prediction selects whole
//!   kind classes without scanning their members;
//! * **unit classes** — within a slot, targets group by their exact
//!   [`Unit`], so unit-incompatible pairs (feature `f8 == 3.0`,
//!   the `StrongMismatch` that filtering can never keep) are skipped
//!   wholesale;
//! * **log-scale value-magnitude buckets** — within a unit group,
//!   targets sort by their value's biased f64 exponent, so the near/far
//!   split against `value_diff_threshold` needs an exact
//!   [`relative_difference`] evaluation only for targets within a proven
//!   exponent window; everything outside the window is *provably* far.
//!
//! The index can also carry **surface/header token postings**
//! ([`CandidateIndex::token_candidates`]): target ids keyed by the
//! tokens of their surface form and their row/column header words. The
//! exact in-document path cannot use them to drop pairs (token evidence
//! alone never proves a pair unkeepable — every unit-compatible pair
//! clears the score floor under the untrained prior, and a trained
//! forest's scores are not token-separable), so they are not consulted
//! by [`CandidateIndex::retrieve`] and not built by
//! [`CandidateIndex::build`] — the alignment hot path must not pay
//! their `String` allocations. [`CandidateIndex::build_with_tokens`] /
//! [`CandidateIndex::build_with_context`] opt in; they exist for the
//! corpus-scale retrieval direction in ROADMAP.md (cross-document
//! quantity search), where recall is a ranking concern rather than an
//! exactness contract.
//!
//! # Recall contract
//!
//! [`CandidateIndex::retrieve`] returns **exactly** the mention's
//! *viable* pairs — the pairs adaptive filtering
//! ([`crate::filtering::filter_mention_pruned`]) could keep at any
//! score, and exactly the pairs its mention-type vote polls:
//!
//! * single-cell targets whose unit does not strongly mismatch;
//! * aggregate targets whose kind is tagged and whose unit does not
//!   strongly mismatch.
//!
//! Every returned pair is additionally classified *near* or *far* with
//! bit-exact agreement to the filter's `row[5] > value_diff_threshold`
//! test (same [`relative_difference`] function, same f64 inputs). Recall
//! against the exhaustive oracle is therefore exactly 1.0 by
//! construction, and alignments are byte-identical with the index on or
//! off — CI's determinism stage and the equivalence suites enforce both.

use briq_table::{TableMention, TableMentionKind};
use briq_text::cues::AggregationKind;
use briq_text::units::Unit;
use std::collections::BTreeMap;

use crate::context::DocContext;
use crate::features::{relative_difference, table_surface};
use crate::filtering::FilterStats;

/// Kind slots: single cells plus one per aggregation kind.
pub const KIND_SLOTS: usize = 8;

/// The aggregate kind behind each slot `1..KIND_SLOTS` (slot 0 is
/// single-cell).
const SLOT_KINDS: [AggregationKind; KIND_SLOTS - 1] = [
    AggregationKind::Sum,
    AggregationKind::Difference,
    AggregationKind::Percentage,
    AggregationKind::ChangeRatio,
    AggregationKind::Average,
    AggregationKind::Max,
    AggregationKind::Min,
];

/// Slot index of a target kind (the hardened-crate panic-free policy
/// rules out a positional lookup that would need `expect`).
fn kind_slot(kind: TableMentionKind) -> usize {
    match kind {
        TableMentionKind::SingleCell => 0,
        TableMentionKind::Aggregate(AggregationKind::Sum) => 1,
        TableMentionKind::Aggregate(AggregationKind::Difference) => 2,
        TableMentionKind::Aggregate(AggregationKind::Percentage) => 3,
        TableMentionKind::Aggregate(AggregationKind::ChangeRatio) => 4,
        TableMentionKind::Aggregate(AggregationKind::Average) => 5,
        TableMentionKind::Aggregate(AggregationKind::Max) => 6,
        TableMentionKind::Aggregate(AggregationKind::Min) => 7,
    }
}

/// Stable kind name of a slot (matches [`TableMentionKind::name`]).
fn slot_name(slot: usize) -> &'static str {
    if slot == 0 {
        "single-cell"
    } else {
        SLOT_KINDS[slot - 1].name()
    }
}

/// Sign-aware magnitude-bucket key: the biased f64 exponent, negated for
/// negative values so opposite signs can never share a bucket window.
/// `None` marks the oddballs — zeros, subnormals, infinities, NaN — that
/// skip the bucket proof and always get the exact near/far check.
fn bucket_key(v: f64) -> Option<i32> {
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    if exp == 0 || exp == 0x7ff {
        return None;
    }
    Some(if bits >> 63 == 1 { -exp } else { exp })
}

/// Largest exponent distance that still *requires* an exact
/// [`relative_difference`] check against threshold `theta`: two normal
/// same-sign values whose biased exponents differ by **more** than the
/// returned delta satisfy `relative_difference > theta` provably (for
/// exponent gap Δ the ratio of magnitudes is `< 2^(1-Δ)`, so the
/// relative difference exceeds `1 - 2^(1-Δ)`; the `+1` adds one bucket
/// of margin, and over-checking is always sound — in-window targets get
/// the exact test). `None` when no finite window proves anything
/// (`theta >= 1` or NaN): every member is exact-checked.
fn exponent_delta(theta: f64) -> Option<i32> {
    // NaN θ must land here too, so the comparison is deliberately on the
    // "proves nothing" side: only θ strictly below 1 yields a window.
    if theta >= 1.0 || theta.is_nan() {
        return None;
    }
    let d = (1.0 - (1.0 - theta).log2()).floor() as i32 + 1;
    Some(d.max(1))
}

/// One unit class within a kind slot: members sorted by
/// `(bucket key, target index)` for the windowed scan, oddballs kept
/// aside for the always-exact check.
struct UnitGroup {
    unit: Unit,
    /// Bucket key per member, ascending (ties by target index).
    keys: Vec<i32>,
    /// Target index per member, parallel to `keys`.
    tis: Vec<usize>,
    /// Target value per member, parallel to `keys`.
    vals: Vec<f64>,
    /// Zero/subnormal/non-finite members: `(target index, value)`.
    oddballs: Vec<(usize, f64)>,
}

/// Pair-level unit viability — identical to filtering's `unit_ok` and to
/// the feature row's `f8 != 3.0` (`StrongMismatch`): only two
/// *specified, non-matching* units kill a pair.
fn unit_compatible(m: Unit, g: Unit) -> bool {
    !(m.is_specified() && g.is_specified() && !m.matches(g))
}

/// Caller-owned retrieval buffers, reused across mentions so a warm
/// retrieve allocates nothing.
#[derive(Debug, Default)]
pub struct RetrievalScratch {
    /// Retrieved targets whose value is near the mention's
    /// (`relative_difference <= value_diff_threshold`).
    pub near: Vec<usize>,
    /// Retrieved targets with a far value (still viable: filtering keeps
    /// them at a high enough score, and they vote).
    pub far: Vec<usize>,
    /// Retrieved-per-slot counts of the last retrieve.
    pub per_slot: [usize; KIND_SLOTS],
}

impl RetrievalScratch {
    /// Total candidates retrieved for the last mention.
    pub fn retrieved(&self) -> usize {
        self.near.len() + self.far.len()
    }
}

/// Per-document inverted candidate index. Build once per document
/// ([`CandidateIndex::build`] or, with header-token postings,
/// [`CandidateIndex::build_with_context`]), then call
/// [`CandidateIndex::retrieve`] once per mention.
pub struct CandidateIndex {
    slots: [Vec<UnitGroup>; KIND_SLOTS],
    kind_counts: [usize; KIND_SLOTS],
    n_targets: usize,
    theta: f64,
    delta: Option<i32>,
    tokens: BTreeMap<String, Vec<usize>>,
}

impl CandidateIndex {
    /// Index `targets` for retrieval against value-difference threshold
    /// `theta` (the filter's `value_diff_threshold`). No token postings
    /// are built: [`CandidateIndex::retrieve`] never consults them, so
    /// the alignment hot path must not pay their `String` allocations —
    /// on corpus-scale documents the posting build costs more than
    /// retrieval saves. Use [`CandidateIndex::build_with_tokens`] /
    /// [`CandidateIndex::build_with_context`] when the postings are the
    /// point.
    pub fn build(targets: &[TableMention], theta: f64) -> CandidateIndex {
        Self::build_inner(targets, theta, false, None)
    }

    /// [`CandidateIndex::build`] plus surface-form token postings
    /// ([`CandidateIndex::token_candidates`]).
    pub fn build_with_tokens(targets: &[TableMention], theta: f64) -> CandidateIndex {
        Self::build_inner(targets, theta, true, None)
    }

    /// [`CandidateIndex::build_with_tokens`] plus header-word token
    /// postings from the document context (each target's row/column
    /// header words, as computed by
    /// [`crate::context::TableContext::local_words`]).
    pub fn build_with_context(
        targets: &[TableMention],
        theta: f64,
        ctx: &DocContext,
    ) -> CandidateIndex {
        Self::build_inner(targets, theta, true, Some(ctx))
    }

    fn build_inner(
        targets: &[TableMention],
        theta: f64,
        with_tokens: bool,
        ctx: Option<&DocContext>,
    ) -> CandidateIndex {
        let mut slots: [Vec<UnitGroup>; KIND_SLOTS] = Default::default();
        let mut kind_counts = [0usize; KIND_SLOTS];
        let mut tokens: BTreeMap<String, Vec<usize>> = BTreeMap::new();

        for (ti, t) in targets.iter().enumerate() {
            let slot = kind_slot(t.kind);
            kind_counts[slot] += 1;
            let groups = &mut slots[slot];
            let gi = match groups.iter().position(|g| g.unit == t.unit) {
                Some(gi) => gi,
                None => {
                    groups.push(UnitGroup {
                        unit: t.unit,
                        keys: Vec::new(),
                        tis: Vec::new(),
                        vals: Vec::new(),
                        oddballs: Vec::new(),
                    });
                    groups.len() - 1
                }
            };
            match bucket_key(t.value) {
                Some(key) => {
                    groups[gi].keys.push(key);
                    groups[gi].tis.push(ti);
                    groups[gi].vals.push(t.value);
                }
                None => groups[gi].oddballs.push((ti, t.value)),
            }

            if with_tokens {
                for tok in table_surface(t)
                    .to_lowercase()
                    .split(|c: char| !c.is_alphanumeric())
                {
                    if !tok.is_empty() {
                        tokens.entry(tok.to_string()).or_default().push(ti);
                    }
                }
                if let Some(ctx) = ctx {
                    if let Some(tc) = ctx.tables.get(t.table) {
                        for w in tc.local_words(t) {
                            tokens.entry(w).or_default().push(ti);
                        }
                    }
                }
            }
        }

        // Sort each group's members by (bucket key, target index) so the
        // window scan is two binary searches, and keep posting lists
        // sorted and deduplicated.
        for groups in &mut slots {
            for g in groups {
                let mut order: Vec<usize> = (0..g.keys.len()).collect();
                order.sort_by_key(|&i| (g.keys[i], g.tis[i]));
                g.keys = order.iter().map(|&i| g.keys[i]).collect();
                let tis = std::mem::take(&mut g.tis);
                let vals = std::mem::take(&mut g.vals);
                g.tis = order.iter().map(|&i| tis[i]).collect();
                g.vals = order.iter().map(|&i| vals[i]).collect();
                g.oddballs.sort_unstable_by_key(|&(ti, _)| ti);
            }
        }
        for list in tokens.values_mut() {
            list.sort_unstable();
            list.dedup();
        }

        CandidateIndex {
            slots,
            kind_counts,
            n_targets: targets.len(),
            theta,
            delta: exponent_delta(theta),
            tokens,
        }
    }

    /// Number of indexed targets.
    pub fn n_targets(&self) -> usize {
        self.n_targets
    }

    /// Indexed targets of one kind slot (0 = single-cell).
    pub fn kind_count(&self, slot: usize) -> usize {
        self.kind_counts[slot]
    }

    /// Retrieve the viable candidate set for one mention into `out`:
    /// every tag- and unit-compatible target, split into `near` and
    /// `far` by the exact `value_diff_threshold` test (see the
    /// module-level recall contract). Allocation-free once `out` is
    /// warm.
    pub fn retrieve(
        &self,
        value: f64,
        unit: Unit,
        tags: &[AggregationKind],
        out: &mut RetrievalScratch,
    ) {
        out.near.clear();
        out.far.clear();
        out.per_slot = [0; KIND_SLOTS];
        let mkey = bucket_key(value);
        for (slot, groups) in self.slots.iter().enumerate() {
            if slot != 0 && !tags.contains(&SLOT_KINDS[slot - 1]) {
                continue;
            }
            let before = out.retrieved();
            for g in groups {
                if !unit_compatible(unit, g.unit) {
                    continue;
                }
                match (self.delta, mkey) {
                    (Some(d), Some(mk)) => {
                        // Members outside the exponent window (or of the
                        // opposite sign, which the sign-aware key pushes
                        // out of any window) are provably far; only the
                        // window gets the exact check.
                        let lo = g.keys.partition_point(|&k| k < mk - d);
                        let hi = g.keys.partition_point(|&k| k <= mk + d);
                        out.far.extend_from_slice(&g.tis[..lo]);
                        for i in lo..hi {
                            self.push_exact(value, g.tis[i], g.vals[i], out);
                        }
                        out.far.extend_from_slice(&g.tis[hi..]);
                    }
                    // No provable window (θ ≥ 1, NaN θ, or an oddball
                    // mention value): exact-check every member.
                    _ => {
                        for i in 0..g.tis.len() {
                            self.push_exact(value, g.tis[i], g.vals[i], out);
                        }
                    }
                }
                for &(ti, v) in &g.oddballs {
                    self.push_exact(value, ti, v, out);
                }
            }
            out.per_slot[slot] = out.retrieved() - before;
        }
    }

    #[inline]
    fn push_exact(&self, value: f64, ti: usize, tv: f64, out: &mut RetrievalScratch) {
        if relative_difference(value, tv) > self.theta {
            out.far.push(ti);
        } else {
            out.near.push(ti);
        }
    }

    /// Record the pairs retrieval never surfaced into the filter
    /// statistics, so per-kind totals stay identical to the exhaustive
    /// oracle's (which records every pair): per slot, the indexed
    /// targets minus the retrieved ones, all counted as seen-and-dropped.
    pub fn record_dropped(&self, out: &RetrievalScratch, stats: &mut FilterStats) {
        for slot in 0..KIND_SLOTS {
            let dropped = self.kind_counts[slot] - out.per_slot[slot];
            if dropped > 0 {
                stats.record_dropped(slot_name(slot), dropped);
            }
        }
    }

    /// Posting list of a surface/header token: the indexed targets whose
    /// surface form or header words contain `token` (lowercase), in
    /// ascending target order. Empty unless the index was built with
    /// [`CandidateIndex::build_with_tokens`] /
    /// [`CandidateIndex::build_with_context`]: postings are not
    /// consulted by the exact in-document path — see the module docs
    /// for why — but are the substrate for corpus-scale retrieval.
    pub fn token_candidates(&self, token: &str) -> &[usize] {
        self.tokens.get(token).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct tokens with postings.
    pub fn n_tokens(&self) -> usize {
        self.tokens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_text::units::Currency;

    fn target(value: f64, kind: TableMentionKind, unit: Unit) -> TableMention {
        TableMention {
            table: 0,
            kind,
            cells: vec![(1, 1)],
            value,
            unnormalized: value,
            raw: crate::features::format_value(value),
            unit,
            precision: 0,
            orientation: None,
        }
    }

    /// Brute-force viable set + near/far split, straight from the
    /// filter's own predicates.
    fn oracle(
        targets: &[TableMention],
        value: f64,
        unit: Unit,
        tags: &[AggregationKind],
        theta: f64,
    ) -> (Vec<usize>, Vec<usize>) {
        let mut near = Vec::new();
        let mut far = Vec::new();
        for (ti, t) in targets.iter().enumerate() {
            let viable = unit_compatible(unit, t.unit)
                && match t.kind {
                    TableMentionKind::SingleCell => true,
                    TableMentionKind::Aggregate(k) => tags.contains(&k),
                };
            if viable {
                if relative_difference(value, t.value) > theta {
                    far.push(ti);
                } else {
                    near.push(ti);
                }
            }
        }
        (near, far)
    }

    fn check_exact(
        targets: &[TableMention],
        value: f64,
        unit: Unit,
        tags: &[AggregationKind],
        theta: f64,
    ) {
        let idx = CandidateIndex::build(targets, theta);
        let mut out = RetrievalScratch::default();
        idx.retrieve(value, unit, tags, &mut out);
        let (mut near, mut far) = (out.near.clone(), out.far.clone());
        near.sort_unstable();
        far.sort_unstable();
        let (onear, ofar) = oracle(targets, value, unit, tags, theta);
        assert_eq!(near, onear, "near mismatch for value {value:e} θ {theta}");
        assert_eq!(far, ofar, "far mismatch for value {value:e} θ {theta}");
    }

    /// Value grid covering every bucket-math edge: signs, zeros,
    /// subnormals, infinities, NaN, boundary ratios around θ.
    fn adversarial_values() -> Vec<f64> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.35,
            0.65,
            1.0 - 0.35,
            1.0 + 0.35,
            123.0,
            123.4,
            1e-300,
            -1e-300,
            1e300,
            -1e300,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            2.0,
            4.0,
            8.0,
            1.999_999_999,
            2.000_000_001,
            1e9,
            1e9 + 1.0,
            -1e9,
        ]
    }

    #[test]
    fn bucket_key_edges() {
        assert_eq!(bucket_key(0.0), None);
        assert_eq!(bucket_key(-0.0), None);
        assert_eq!(bucket_key(f64::NAN), None);
        assert_eq!(bucket_key(f64::INFINITY), None);
        assert_eq!(bucket_key(f64::MIN_POSITIVE / 2.0), None, "subnormal");
        let k1 = bucket_key(1.5).unwrap();
        let k2 = bucket_key(3.0).unwrap();
        assert_eq!(k2 - k1, 1, "doubling advances one bucket");
        assert_eq!(bucket_key(-1.5).unwrap(), -k1, "sign-aware key");
    }

    #[test]
    fn exponent_delta_bounds() {
        assert_eq!(exponent_delta(1.0), None);
        assert_eq!(exponent_delta(f64::NAN), None);
        assert_eq!(exponent_delta(2.0), None);
        // θ = 0.35 (the default): values more than Δ buckets apart must
        // really be far.
        let d = exponent_delta(0.35).unwrap();
        assert!(d >= 2);
        for gap in (d + 1)..(d + 6) {
            let far = (2.0f64).powi(gap);
            assert!(relative_difference(1.5, 1.5 * far) > 0.35);
        }
    }

    #[test]
    fn retrieval_matches_oracle_over_adversarial_values() {
        let vals = adversarial_values();
        let mut targets = Vec::new();
        for (i, &v) in vals.iter().enumerate() {
            let kind = match i % 3 {
                0 => TableMentionKind::SingleCell,
                1 => TableMentionKind::Aggregate(AggregationKind::Sum),
                _ => TableMentionKind::Aggregate(AggregationKind::Average),
            };
            let unit = match i % 4 {
                0 => Unit::None,
                1 => Unit::Currency(Currency::Usd),
                2 => Unit::Percent,
                _ => Unit::Currency(Currency::Other),
            };
            targets.push(target(v, kind, unit));
        }
        let tag_sets: [&[AggregationKind]; 3] = [
            &[],
            &[AggregationKind::Sum],
            &[AggregationKind::Sum, AggregationKind::Average],
        ];
        for &value in &vals {
            for unit in [Unit::None, Unit::Currency(Currency::Eur), Unit::Percent] {
                for tags in tag_sets {
                    for theta in [0.0, 0.35, 0.95, 1.0, f64::NAN, -0.5] {
                        check_exact(&targets, value, unit, tags, theta);
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let targets = vec![
            target(10.0, TableMentionKind::SingleCell, Unit::None),
            target(1e9, TableMentionKind::SingleCell, Unit::None),
        ];
        let idx = CandidateIndex::build(&targets, 0.35);
        let mut out = RetrievalScratch::default();
        idx.retrieve(10.0, Unit::None, &[], &mut out);
        assert_eq!(out.near, vec![0]);
        assert_eq!(out.far, vec![1]);
        assert_eq!(out.per_slot[0], 2);
        idx.retrieve(f64::NAN, Unit::None, &[], &mut out);
        assert_eq!(
            out.near.len() + out.far.len(),
            2,
            "NaN mention still viable"
        );
        idx.retrieve(10.0, Unit::Percent, &[], &mut out);
        assert_eq!(
            out.retrieved(),
            2,
            "unspecified target unit stays compatible"
        );
    }

    #[test]
    fn unit_groups_prune_strong_mismatch_only() {
        let targets = vec![
            target(
                5.0,
                TableMentionKind::SingleCell,
                Unit::Currency(Currency::Usd),
            ),
            target(
                5.0,
                TableMentionKind::SingleCell,
                Unit::Currency(Currency::Eur),
            ),
            target(5.0, TableMentionKind::SingleCell, Unit::None),
            target(
                5.0,
                TableMentionKind::SingleCell,
                Unit::Currency(Currency::Other),
            ),
        ];
        let idx = CandidateIndex::build(&targets, 0.35);
        let mut out = RetrievalScratch::default();
        idx.retrieve(5.0, Unit::Currency(Currency::Usd), &[], &mut out);
        let mut got = out.near.clone();
        got.sort_unstable();
        // EUR strongly mismatches; unspecified and Other-currency stay.
        assert_eq!(got, vec![0, 2, 3]);
    }

    #[test]
    fn record_dropped_restores_oracle_totals() {
        let targets = vec![
            target(5.0, TableMentionKind::SingleCell, Unit::None),
            target(
                5.0,
                TableMentionKind::Aggregate(AggregationKind::Sum),
                Unit::None,
            ),
            target(
                5.0,
                TableMentionKind::Aggregate(AggregationKind::Difference),
                Unit::None,
            ),
        ];
        let idx = CandidateIndex::build(&targets, 0.35);
        let mut out = RetrievalScratch::default();
        idx.retrieve(5.0, Unit::None, &[AggregationKind::Sum], &mut out);
        assert_eq!(out.retrieved(), 2);
        let mut stats = FilterStats::default();
        idx.record_dropped(&out, &mut stats);
        assert_eq!(stats.total.get("diff"), Some(&1));
        assert_eq!(
            stats.total.get("single-cell"),
            None,
            "nothing dropped there"
        );
    }

    #[test]
    fn token_postings_cover_surface_and_lookup_is_sorted() {
        let mut t0 = target(38.0, TableMentionKind::SingleCell, Unit::None);
        t0.raw = "38 patients".to_string();
        let t1 = target(38.5, TableMentionKind::SingleCell, Unit::None);
        let idx = CandidateIndex::build_with_tokens(&[t0.clone(), t1.clone()], 0.35);
        assert_eq!(idx.token_candidates("patients"), &[0]);
        // "38.5" splits on the dot: both targets carry a "38" token.
        assert_eq!(idx.token_candidates("38"), &[0, 1]);
        assert_eq!(idx.token_candidates("5"), &[1]);
        assert_eq!(idx.token_candidates("absent"), &[0usize; 0]);
        assert!(idx.n_tokens() >= 2);
        // The hot-path build skips postings entirely.
        let bare = CandidateIndex::build(&[t0, t1], 0.35);
        assert_eq!(bare.n_tokens(), 0);
        assert_eq!(bare.token_candidates("38"), &[0usize; 0]);
    }
}
