//! The two published baselines (§VII-D).
//!
//! * **Classifier-only (RF)** — "for each text mention, the cell of the
//!   classifier's top-ranked mention-pair is chosen as output". No
//!   filtering, no joint inference.
//! * **Random-walk-only (RWR)** — the graph algorithm without trained
//!   priors: text-table edges combine the features with uniform weights;
//!   no pruning of mention pairs ("making this baseline fairly expensive").

use briq_table::Document;

use crate::filtering::Candidate;
use crate::graph_builder::build_graph;
use crate::mention::Alignment;
use crate::pipeline::{Briq, ScoredDocument};
use crate::resolution::{resolve, ResolutionConfig};

/// Classifier-only baseline: argmax classifier score per mention.
pub fn rf_only(briq: &Briq, doc: &Document) -> Vec<Alignment> {
    let sd = briq.score_document(doc);
    rf_only_scored(&sd)
}

/// Classifier-only baseline over an already-scored document.
pub fn rf_only_scored(sd: &ScoredDocument) -> Vec<Alignment> {
    let mut out = Vec::new();
    for (x, scored) in sd.mentions.iter().zip(&sd.scored) {
        let best = scored
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        if let Some(&(ti, score)) = best {
            out.push(Alignment {
                mention_start: x.quantity.start,
                mention_end: x.quantity.end,
                mention_raw: x.quantity.raw.clone(),
                target: sd.targets[ti].clone(),
                score,
            });
        }
    }
    out
}

/// Random-walk-only baseline: all pairs enter the graph with
/// uniform-weight feature scores; alignment by walk probability alone.
pub fn rwr_only(briq: &Briq, doc: &Document) -> Vec<Alignment> {
    let sd = briq.score_document(doc);
    rwr_only_scored(briq, &sd)
}

/// Random-walk-only baseline over an already-scored document.
///
/// The classifier scores in `sd` are ignored; edge weights come from the
/// uniform feature combination, recomputed here.
pub fn rwr_only_scored(briq: &Briq, sd: &ScoredDocument) -> Vec<Alignment> {
    use crate::features::{PairFeaturizer, FEATURE_COUNT};
    use crate::pipeline::heuristic_prior_masked;

    // All pairs are candidates (no pruning), scored uniformly. Rows are
    // filled through the precomputed featurizer and masked inside the
    // prior, so no per-pair vector is built.
    let mut featurizer = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
    let mut rows: Vec<f64> = Vec::new();
    let candidates: Vec<Vec<Candidate>> = (0..sd.mentions.len())
        .map(|mi| {
            featurizer.fill_mention_rows(mi, &mut rows);
            rows.chunks_exact(FEATURE_COUNT)
                .enumerate()
                .map(|(ti, row)| {
                    // Sharpen the uniform combination before normalizing
                    // to traversal probabilities: with no pruning the walk
                    // spreads over hundreds of candidates, and a convex
                    // transform keeps plausible matches from being washed
                    // out (the "normalized to graph-traversal
                    // probabilities" step of §VII-D).
                    Candidate {
                        target: ti,
                        score: heuristic_prior_masked(row, &briq.cfg.mask).powi(4),
                    }
                })
                .collect()
        })
        .collect();

    let positions: Vec<usize> = sd.ctx.mentions.iter().map(|m| m.token_index).collect();
    let ag = build_graph(
        &sd.mentions,
        &positions,
        sd.ctx.tokens.len(),
        &sd.targets,
        &candidates,
        &briq.cfg.graph,
    );
    // π only: α = 1, β = 0. With no pruning, π mass spreads over hundreds
    // of candidates, so no absolute acceptance threshold is meaningful —
    // the baseline ranks and always answers (ε = 0).
    let cfg = ResolutionConfig {
        alpha: 1.0,
        beta: 0.0,
        epsilon: 0.0,
        sigma_min: 0.0,
        ..briq.cfg.resolution
    };
    let resolved = resolve(ag, &candidates, &cfg);
    resolved
        .into_iter()
        .map(|r| {
            let x = &sd.mentions[r.mention];
            Alignment {
                mention_start: x.quantity.start,
                mention_end: x.quantity.end,
                mention_raw: x.quantity.raw.clone(),
                target: sd.targets[r.target].clone(),
                score: r.score,
            }
        })
        .collect()
}

/// QKB baseline (§VII-D): canonicalize both sides through a small quantity
/// knowledge base and align on *exact* entry matches. The paper did not
/// pursue it because coverage is tiny and approximate mentions never match
/// exactly; this implementation exists to demonstrate that quantitatively
/// (see `briq-eval qkb`).
pub fn qkb_only(briq: &Briq, doc: &Document) -> Vec<Alignment> {
    use briq_text::qkb::{canonicalize, same_entry};

    let sd = briq.score_document(doc);
    let mut out = Vec::new();
    for x in &sd.mentions {
        let Some(cx) = canonicalize(&x.quantity) else {
            continue;
        };
        // Exact-match candidates among explicit single cells.
        let matches: Vec<usize> = sd
            .targets
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_aggregate())
            .filter_map(|(ti, t)| {
                let table = &doc.tables[t.table];
                let (r, c) = t.cells[0];
                let q = table.quantity(r, c)?;
                let ct = canonicalize(q)?;
                same_entry(&cx, &ct).then_some(ti)
            })
            .collect();
        // The QKB has no disambiguation machinery: only an unambiguous
        // exact match produces an alignment.
        if let [ti] = matches[..] {
            out.push(Alignment {
                mention_start: x.quantity.start,
                mention_end: x.quantity.end,
                mention_raw: x.quantity.raw.clone(),
                target: sd.targets[ti].clone(),
                score: 1.0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::BriqConfig;
    use briq_table::Table;

    fn doc() -> Document {
        Document::new(
            0,
            "Depression was reported by 38 patients and rash by 35 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["side effects".into(), "patients".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            )],
        )
    }

    #[test]
    fn rf_only_outputs_one_alignment_per_mention() {
        let briq = Briq::untrained(BriqConfig::default());
        let out = rf_only(&briq, &doc());
        assert_eq!(out.len(), 2);
        let a38 = out
            .iter()
            .find(|a| a.mention_raw.starts_with("38"))
            .unwrap();
        assert_eq!(a38.target.cells, vec![(2, 1)]);
    }

    #[test]
    fn rwr_only_aligns_unambiguous_values() {
        let briq = Briq::untrained(BriqConfig::default());
        let out = rwr_only(&briq, &doc());
        let a35 = out.iter().find(|a| a.mention_raw.starts_with("35"));
        assert!(
            a35.is_some_and(|a| a.target.cells == vec![(1, 1)]),
            "{out:?}"
        );
    }

    #[test]
    fn empty_doc_yields_nothing() {
        let briq = Briq::untrained(BriqConfig::default());
        let d = Document::new(0, "text without digits", vec![]);
        assert!(rf_only(&briq, &d).is_empty());
        assert!(rwr_only(&briq, &d).is_empty());
        assert!(qkb_only(&briq, &d).is_empty());
    }

    #[test]
    fn qkb_aligns_only_exact_registered_matches() {
        let briq = Briq::untrained(BriqConfig::default());
        let d = Document::new(
            0,
            "The fee is $15 while shipping costs about $5.20 and 37K EUR elsewhere.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["item".into(), "price".into()],
                    vec!["Fee".into(), "$15".into()],
                    vec!["Shipping".into(), "$5".into()],
                    vec!["Import".into(), "36900 EUR".into()],
                ],
            )],
        );
        let out = qkb_only(&briq, &d);
        // "$15" matches exactly; "$5.20" vs "$5" and "37K" vs 36900 do not.
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].target.cells, vec![(1, 1)]);
    }

    #[test]
    fn qkb_skips_ambiguous_exact_matches() {
        let briq = Briq::untrained(BriqConfig::default());
        let d = Document::new(
            0,
            "A late fee of $50 applies.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["item".into(), "price".into()],
                    vec!["Wholesale".into(), "$50".into()],
                    vec!["Retail fee".into(), "$50".into()],
                ],
            )],
        );
        assert!(qkb_only(&briq, &d).is_empty());
    }
}
