//! Exact joint resolution by branch-and-bound — the ILP alternative the
//! paper evaluated and abandoned (§VI: "We also considered an alternative
//! algorithm based on constraint reasoning with Integer Linear Programming
//! (ILP) and experimented with it, but that approach did not scale
//! sufficiently well").
//!
//! The program assigns to each text mention at most one candidate,
//! maximizing
//!
//! ```text
//!   Σ σ(x, t(x))                        (local priors)
//! + λ_tbl · Σ_{x≠y} [table(t(x)) = table(t(y))]   (table coherence)
//! + λ_line · Σ_{x≠y} [t(x), t(y) share a row/col] (line coherence)
//! ```
//!
//! subject to: distinct mentions may not claim the same single cell.
//! Branch-and-bound explores mention assignments in candidate order with
//! an admissible upper bound; it is exact, and exponential in the worst
//! case — the benchmark `bench_ablation`/`briq-eval ilp` demonstrates the
//! scaling gap against the random-walk resolution.

use briq_table::{TableMention, TableMentionKind};

use crate::filtering::Candidate;

/// ILP-resolution parameters.
#[derive(Debug, Clone, Copy)]
pub struct IlpConfig {
    /// Bonus for two assigned targets in the same table.
    pub table_coherence: f64,
    /// Bonus for two assigned targets sharing a row or column.
    pub line_coherence: f64,
    /// Minimum prior for the "leave unaligned" decision to lose; mirrors
    /// the ε of Algorithm 1.
    pub epsilon: f64,
    /// Hard cap on explored nodes (returns the best-so-far when hit).
    pub node_budget: usize,
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            table_coherence: 0.05,
            line_coherence: 0.08,
            epsilon: 0.12,
            node_budget: 2_000_000,
        }
    }
}

/// Result of an exact resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Per mention: chosen table-mention index (None = unaligned).
    pub assignment: Vec<Option<usize>>,
    /// Objective value of the best assignment.
    pub objective: f64,
    /// Nodes explored by branch-and-bound.
    pub nodes: usize,
    /// True when the node budget was exhausted (solution may be
    /// sub-optimal).
    pub budget_exhausted: bool,
}

struct Solver<'a> {
    candidates: &'a [Vec<Candidate>],
    targets: &'a [TableMention],
    cfg: &'a IlpConfig,
    order: Vec<usize>,
    best: f64,
    best_assignment: Vec<Option<usize>>,
    current: Vec<Option<usize>>,
    nodes: usize,
    exhausted: bool,
    /// Upper bound on the pair bonus any single assignment can add.
    pair_bound: f64,
    /// Per-mention maximum candidate prior (for the admissible bound).
    max_prior: Vec<f64>,
}

/// Solve the joint assignment exactly (within the node budget).
pub fn resolve_ilp(
    candidates: &[Vec<Candidate>],
    targets: &[TableMention],
    cfg: &IlpConfig,
) -> IlpSolution {
    let m = candidates.len();
    // Process mentions with fewer candidates first (stronger propagation).
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&i| candidates[i].len());

    let max_prior: Vec<f64> = candidates
        .iter()
        .map(|cs| cs.iter().map(|c| c.score).fold(0.0, f64::max))
        .collect();
    let pair_bound = (m.saturating_sub(1)) as f64 * (cfg.table_coherence + cfg.line_coherence);

    let mut solver = Solver {
        candidates,
        targets,
        cfg,
        order,
        best: f64::NEG_INFINITY,
        best_assignment: vec![None; m],
        current: vec![None; m],
        nodes: 0,
        exhausted: false,
        pair_bound,
        max_prior,
    };
    solver.search(0, 0.0);
    IlpSolution {
        assignment: solver.best_assignment,
        objective: solver.best.max(0.0),
        nodes: solver.nodes,
        budget_exhausted: solver.exhausted,
    }
}

impl<'a> Solver<'a> {
    fn search(&mut self, depth: usize, score: f64) {
        self.nodes += 1;
        if self.nodes >= self.cfg.node_budget {
            self.exhausted = true;
            return;
        }
        if depth == self.order.len() {
            if score > self.best {
                self.best = score;
                self.best_assignment = self.current.clone();
            }
            return;
        }
        // Admissible bound: remaining mentions contribute at most their
        // best prior plus the maximal pair bonus each.
        let remaining: f64 = self.order[depth..]
            .iter()
            .map(|&x| self.max_prior[x] + self.pair_bound)
            .sum();
        if score + remaining <= self.best {
            return;
        }

        let x = self.order[depth];
        // Try candidates in descending prior order (already sorted by the
        // filter), then the "unaligned" branch.
        for ci in 0..self.candidates[x].len() {
            let cand = self.candidates[x][ci];
            if cand.score < self.cfg.epsilon {
                continue;
            }
            if self.conflicts(x, cand.target) {
                continue;
            }
            let gain = cand.score + self.coupling_gain(x, cand.target);
            self.current[x] = Some(cand.target);
            self.search(depth + 1, score + gain);
            self.current[x] = None;
            if self.exhausted {
                return;
            }
        }
        // unaligned branch
        self.search(depth + 1, score);
    }

    /// Another already-assigned mention claims the same single cell.
    fn conflicts(&self, x: usize, target: usize) -> bool {
        let t = &self.targets[target];
        if t.kind != TableMentionKind::SingleCell {
            return false;
        }
        self.current.iter().enumerate().any(|(y, assigned)| {
            y != x
                && assigned.is_some_and(|a| {
                    let u = &self.targets[a];
                    u.kind == TableMentionKind::SingleCell
                        && u.table == t.table
                        && u.cells == t.cells
                })
        })
    }

    /// Coherence bonus of assigning `target` to mention `x` given the
    /// current partial assignment.
    fn coupling_gain(&self, x: usize, target: usize) -> f64 {
        let t = &self.targets[target];
        let mut gain = 0.0;
        for (y, assigned) in self.current.iter().enumerate() {
            if y == x {
                continue;
            }
            let Some(a) = assigned else { continue };
            let u = &self.targets[*a];
            if u.table == t.table {
                gain += self.cfg.table_coherence;
                let share_line = t
                    .cells
                    .iter()
                    .any(|&(r1, c1)| u.cells.iter().any(|&(r2, c2)| r1 == r2 || c1 == c2));
                if share_line {
                    gain += self.cfg.line_coherence;
                }
            }
        }
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_text::units::Unit;

    fn cell(table: usize, r: usize, c: usize, value: f64) -> TableMention {
        TableMention {
            table,
            kind: TableMentionKind::SingleCell,
            cells: vec![(r, c)],
            value,
            unnormalized: value,
            raw: format!("{value}"),
            unit: Unit::None,
            precision: 0,
            orientation: None,
        }
    }

    #[test]
    fn picks_best_priors_without_conflicts() {
        let targets = vec![cell(0, 1, 1, 5.0), cell(0, 2, 1, 7.0)];
        let candidates = vec![
            vec![
                Candidate {
                    target: 0,
                    score: 0.9,
                },
                Candidate {
                    target: 1,
                    score: 0.3,
                },
            ],
            vec![
                Candidate {
                    target: 1,
                    score: 0.8,
                },
                Candidate {
                    target: 0,
                    score: 0.4,
                },
            ],
        ];
        let sol = resolve_ilp(&candidates, &targets, &IlpConfig::default());
        assert_eq!(sol.assignment, vec![Some(0), Some(1)]);
        assert!(!sol.budget_exhausted);
    }

    #[test]
    fn cell_conflicts_are_respected() {
        // Both mentions prefer the same cell; the second-best split wins
        // when coherent.
        let targets = vec![cell(0, 1, 1, 5.0), cell(0, 2, 1, 5.0)];
        let candidates = vec![
            vec![
                Candidate {
                    target: 0,
                    score: 0.9,
                },
                Candidate {
                    target: 1,
                    score: 0.85,
                },
            ],
            vec![
                Candidate {
                    target: 0,
                    score: 0.9,
                },
                Candidate {
                    target: 1,
                    score: 0.2,
                },
            ],
        ];
        let sol = resolve_ilp(&candidates, &targets, &IlpConfig::default());
        let a = sol.assignment;
        assert_ne!(
            a[0], a[1],
            "same single cell must not be claimed twice: {a:?}"
        );
    }

    #[test]
    fn table_coherence_breaks_ties() {
        // Mention 0 is tied between tables; mention 1 is firmly in table 0.
        let targets = vec![cell(0, 1, 1, 5.0), cell(1, 1, 1, 5.0), cell(0, 2, 2, 9.0)];
        let candidates = vec![
            vec![
                Candidate {
                    target: 0,
                    score: 0.5,
                },
                Candidate {
                    target: 1,
                    score: 0.5,
                },
            ],
            vec![Candidate {
                target: 2,
                score: 0.9,
            }],
        ];
        let sol = resolve_ilp(&candidates, &targets, &IlpConfig::default());
        assert_eq!(sol.assignment[0], Some(0), "{sol:?}");
    }

    #[test]
    fn epsilon_leaves_weak_mentions_unaligned() {
        let targets = vec![cell(0, 1, 1, 5.0)];
        let candidates = vec![vec![Candidate {
            target: 0,
            score: 0.05,
        }]];
        let sol = resolve_ilp(&candidates, &targets, &IlpConfig::default());
        assert_eq!(sol.assignment, vec![None]);
    }

    #[test]
    fn node_budget_terminates_search() {
        // 8 mentions × 8 candidates each with conflicts → large tree.
        let targets: Vec<TableMention> = (0..8).map(|i| cell(0, 1, i, i as f64)).collect();
        let candidates: Vec<Vec<Candidate>> = (0..8)
            .map(|_| {
                (0..8)
                    .map(|t| Candidate {
                        target: t,
                        score: 0.5 + (t as f64) * 0.01,
                    })
                    .collect()
            })
            .collect();
        let cfg = IlpConfig {
            node_budget: 500,
            ..Default::default()
        };
        let sol = resolve_ilp(&candidates, &targets, &cfg);
        assert!(sol.budget_exhausted);
        assert!(sol.nodes <= 501);
    }

    #[test]
    fn empty_input() {
        let sol = resolve_ilp(&[], &[], &IlpConfig::default());
        assert!(sol.assignment.is_empty());
        assert_eq!(sol.objective, 0.0);
    }
}

briq_json::json_struct!(IlpConfig {
    table_coherence,
    line_coherence,
    epsilon,
    node_budget,
});
