//! Training-set construction for the mention-pair classifier (§VII-B).
//!
//! For each ground-truth mention pair (a positive sample) we generate 5
//! negative samples "by picking the table cells with the highest
//! similarity to the positive sample (i.e., approximately the same values
//! and similar context). These included many virtual cells for aggregate
//! values, making the task very challenging."

use briq_ml::Dataset;
use briq_table::virtual_cells::{all_table_mentions, VirtualCellConfig};
use briq_table::{Document, TableMention, TableMentionKind};
use briq_text::cues::AggregationKind;
use std::collections::BTreeMap;

use crate::context::{ContextConfig, DocContext};
use crate::features::feature_vector;
use crate::mention::{text_mentions, GoldAlignment, TextMention};

/// One document together with its gold alignments.
#[derive(Debug, Clone)]
pub struct LabeledDocument {
    /// The document (paragraph + tables).
    pub document: Document,
    /// Gold alignments for the document's text mentions.
    pub gold: Vec<GoldAlignment>,
}

/// A labeled training example (metadata kept for breakdowns).
#[derive(Debug, Clone)]
pub struct TrainingExample {
    /// The 12-feature vector.
    pub features: Vec<f64>,
    /// Related or not.
    pub label: bool,
    /// Kind of the table mention in the pair.
    pub kind: TableMentionKind,
}

/// Counts of positive/negative examples per mention type (Table I).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainingBreakdown {
    /// `(positives, negatives)` per type name.
    pub by_type: BTreeMap<String, (usize, usize)>,
}

impl TrainingBreakdown {
    fn add(&mut self, kind: TableMentionKind, label: bool) {
        let e = self
            .by_type
            .entry(kind.name().to_string())
            .or_insert((0, 0));
        if label {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// Totals across all types.
    pub fn totals(&self) -> (usize, usize) {
        self.by_type
            .values()
            .fold((0, 0), |(p, n), &(a, b)| (p + a, n + b))
    }
}

/// How many negatives to pair with each positive (§VII-B uses 5).
pub const NEGATIVES_PER_POSITIVE: usize = 5;

/// Build training examples from labeled documents.
///
/// Returns the examples plus the per-type breakdown. Use
/// [`examples_to_dataset`] to get a class-weighted [`Dataset`].
pub fn build_training_examples(
    docs: &[LabeledDocument],
    vc_cfg: &VirtualCellConfig,
    ctx_cfg: &ContextConfig,
) -> (Vec<TrainingExample>, TrainingBreakdown) {
    let mut examples = Vec::new();
    let mut breakdown = TrainingBreakdown::default();

    for ld in docs {
        let mentions = text_mentions(&ld.document);
        if mentions.is_empty() {
            continue;
        }
        let ctx = DocContext::build(&ld.document, &mentions, ctx_cfg);
        let targets = all_table_mentions(&ld.document.tables, vc_cfg);

        for x in &mentions {
            // Gold targets for this mention.
            let gold: Vec<&GoldAlignment> = ld
                .gold
                .iter()
                .filter(|g| x.quantity.start < g.mention_end && g.mention_start < x.quantity.end)
                .collect();
            if gold.is_empty() {
                continue;
            }
            let mut positives: Vec<&TableMention> = Vec::new();
            let mut negatives: Vec<(&TableMention, f64)> = Vec::new();
            for t in &targets {
                if gold.iter().any(|g| matches_target(g, t)) {
                    positives.push(t);
                } else {
                    negatives.push((t, hardness(x, t)));
                }
            }
            if positives.is_empty() {
                continue; // the gold target was not generated (rare)
            }
            // hardest negatives first
            negatives.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

            for t in &positives {
                let v = feature_vector(x, t, &ctx);
                breakdown.add(t.kind, true);
                examples.push(TrainingExample {
                    features: v,
                    label: true,
                    kind: t.kind,
                });
            }
            // Mostly hard negatives (approximately the same values and
            // similar context, §VII-B), plus a deterministic spread of
            // easier ones across the hardness range — without the spread
            // the forest never sees a far-off value and cannot learn the
            // value-distance features at all.
            let n_neg = NEGATIVES_PER_POSITIVE * positives.len();
            let n_hard = (n_neg * 3) / 5;
            let mut chosen: Vec<usize> = (0..n_hard.min(negatives.len())).collect();
            let n_spread = n_neg - chosen.len();
            if negatives.len() > n_hard && n_spread > 0 {
                let tail = negatives.len() - n_hard;
                for j in 0..n_spread {
                    let idx = n_hard + (j * tail) / n_spread.max(1) + tail / (2 * n_spread);
                    chosen.push(idx.min(negatives.len() - 1));
                }
                chosen.dedup();
            }
            for &i in &chosen {
                let (t, _) = negatives[i];
                let v = feature_vector(x, t, &ctx);
                breakdown.add(t.kind, false);
                examples.push(TrainingExample {
                    features: v,
                    label: false,
                    kind: t.kind,
                });
            }
        }
    }
    (examples, breakdown)
}

/// Does gold alignment `g` designate table mention `t`?
pub fn matches_target(g: &GoldAlignment, t: &TableMention) -> bool {
    if g.table != t.table || g.kind != t.kind {
        return false;
    }
    let mut a = g.cells.clone();
    let mut b = t.cells.clone();
    a.sort_unstable();
    a.dedup();
    b.sort_unstable();
    b.dedup();
    a == b
}

/// Negative-sample hardness: high when values are close and the surface
/// forms are similar — "approximately the same values and similar
/// context" (§VII-B).
fn hardness(x: &TextMention, t: &TableMention) -> f64 {
    let vd = crate::features::relative_difference(x.quantity.value, t.value);
    let surface = crate::jaro::jaro_winkler(
        &x.quantity.raw.to_lowercase(),
        &crate::features::table_surface(t),
    );
    (1.0 - vd / 2.0) + surface
}

/// Convert examples to a class-weighted dataset.
///
/// Two levels of weighting: (1) positive vs negative mass is balanced
/// (§VII-B); (2) positive mass is spread across mention types, so the
/// rare aggregate positives (sum/diff/percent/ratio are ~13% of positives,
/// Table I) are not drowned out by single-cell examples. Without (2) the
/// forest learns almost nothing about virtual cells and global resolution
/// cannot recover (the bias effect §VIII-A reports for percent/ratio).
pub fn examples_to_dataset(examples: &[TrainingExample]) -> Dataset {
    let mut d = Dataset::new();
    for e in examples {
        d.push(e.features.clone(), e.label);
    }
    d.apply_class_weights();

    // Per-type balancing of the positive mass.
    let mut pos_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for e in examples.iter().filter(|e| e.label) {
        *pos_counts.entry(e.kind.name()).or_insert(0) += 1;
    }
    if pos_counts.len() > 1 {
        let total_pos: usize = pos_counts.values().sum();
        let n_types = pos_counts.len();
        for (i, e) in examples.iter().enumerate() {
            if e.label {
                let count = pos_counts[e.kind.name()].max(1);
                let factor = (total_pos as f64 / (n_types as f64 * count as f64)).clamp(0.25, 4.0);
                d.weights[i] *= factor;
            }
        }
    }
    d
}

/// The label space of the text-mention tagger: the four evaluated
/// aggregations plus single-cell.
pub fn tagger_label(kind: TableMentionKind) -> Option<AggregationKind> {
    match kind {
        TableMentionKind::SingleCell => None,
        TableMentionKind::Aggregate(k) => Some(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_table::Table;

    fn labeled_doc() -> LabeledDocument {
        let doc = Document::new(
            0,
            "A total of 73 patients; depression was reported by 38 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["effect".into(), "patients".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            )],
        );
        let total_start = doc.text.find("73").unwrap();
        let n38_start = doc.text.find("38").unwrap();
        let gold = vec![
            GoldAlignment {
                mention_start: total_start,
                mention_end: total_start + 2,
                table: 0,
                kind: TableMentionKind::Aggregate(AggregationKind::Sum),
                cells: vec![(1, 1), (2, 1)],
            },
            GoldAlignment {
                mention_start: n38_start,
                mention_end: n38_start + 2,
                table: 0,
                kind: TableMentionKind::SingleCell,
                cells: vec![(2, 1)],
            },
        ];
        LabeledDocument {
            document: doc,
            gold,
        }
    }

    #[test]
    fn positives_and_negatives_built() {
        let (ex, bd) = build_training_examples(
            &[labeled_doc()],
            &VirtualCellConfig::default(),
            &ContextConfig::default(),
        );
        let (pos, neg) = bd.totals();
        assert_eq!(pos, 2, "{bd:?}");
        assert!(neg > 0 && neg <= 2 * NEGATIVES_PER_POSITIVE);
        assert_eq!(ex.len(), pos + neg);
        assert!(bd.by_type.contains_key("sum"));
        assert!(bd.by_type.contains_key("single-cell"));
    }

    #[test]
    fn negatives_are_hard() {
        let (ex, _) = build_training_examples(
            &[labeled_doc()],
            &VirtualCellConfig::default(),
            &ContextConfig::default(),
        );
        // Negatives should include at least one value-close candidate
        // (f6 < 0.5 for some negative).
        assert!(ex.iter().any(|e| !e.label && e.features[5] < 0.5));
    }

    #[test]
    fn dataset_class_weighted() {
        let (ex, _) = build_training_examples(
            &[labeled_doc()],
            &VirtualCellConfig::default(),
            &ContextConfig::default(),
        );
        let d = examples_to_dataset(&ex);
        assert_eq!(d.len(), ex.len());
        let pos_mass: f64 = d
            .weights
            .iter()
            .zip(&d.labels)
            .filter(|(_, &l)| l)
            .map(|(w, _)| w)
            .sum();
        let neg_mass: f64 = d
            .weights
            .iter()
            .zip(&d.labels)
            .filter(|(_, &l)| !l)
            .map(|(w, _)| w)
            .sum();
        assert!((pos_mass - neg_mass).abs() < 1e-9);
    }

    #[test]
    fn mention_without_gold_skipped() {
        let mut ld = labeled_doc();
        ld.gold.clear();
        let (ex, bd) = build_training_examples(
            &[ld],
            &VirtualCellConfig::default(),
            &ContextConfig::default(),
        );
        assert!(ex.is_empty());
        assert_eq!(bd.totals(), (0, 0));
    }
}

briq_json::json_struct!(LabeledDocument { document, gold });
briq_json::json_struct!(TrainingBreakdown { by_type });
