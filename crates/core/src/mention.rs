//! Mention-level data types: extracted text mentions, predicted
//! alignments, and gold-standard alignments for evaluation.

use briq_table::{Document, TableMention, TableMentionKind};
use briq_text::quantity::{extract_quantities, QuantityMention};

/// A text mention within a document (its quantity plus its index).
#[derive(Debug, Clone, PartialEq)]
pub struct TextMention {
    /// Index among the document's text mentions.
    pub id: usize,
    /// The extracted quantity.
    pub quantity: QuantityMention,
}

/// Extract the text mentions of a document, in document order.
pub fn text_mentions(doc: &Document) -> Vec<TextMention> {
    extract_quantities(&doc.text)
        .into_iter()
        .enumerate()
        .map(|(id, quantity)| TextMention { id, quantity })
        .collect()
}

/// A predicted alignment: text mention → table mention, with its score.
#[derive(Debug, Clone, PartialEq)]
pub struct Alignment {
    /// Byte span of the text mention in the document text.
    pub mention_start: usize,
    /// End byte offset (exclusive).
    pub mention_end: usize,
    /// Surface form of the text mention.
    pub mention_raw: String,
    /// The aligned table mention (single cell or virtual cell).
    pub target: TableMention,
    /// Final score (classifier prior for baselines, `OverallScore` for
    /// BriQ).
    pub score: f64,
}

/// A gold-standard alignment from annotation (or corpus synthesis).
#[derive(Debug, Clone, PartialEq)]
pub struct GoldAlignment {
    /// Byte span of the gold text mention.
    pub mention_start: usize,
    /// End byte offset (exclusive).
    pub mention_end: usize,
    /// Table index within the document.
    pub table: usize,
    /// Kind of the target (single cell or a specific aggregation).
    pub kind: TableMentionKind,
    /// Member cells `(row, col)` of the target (one for single cells).
    pub cells: Vec<(usize, usize)>,
}

impl GoldAlignment {
    /// Does the predicted alignment `a` realize this gold alignment?
    ///
    /// Spans must overlap (extraction may include unit suffixes the
    /// annotation did not, or vice versa), tables and kinds must agree,
    /// and the member-cell *sets* must be identical (pair aggregates are
    /// direction-insensitive).
    pub fn matches(&self, a: &Alignment) -> bool {
        let span_overlap = a.mention_start < self.mention_end && self.mention_start < a.mention_end;
        if !span_overlap || a.target.table != self.table || a.target.kind != self.kind {
            return false;
        }
        let mut gold = self.cells.clone();
        let mut pred = a.target.cells.clone();
        gold.sort_unstable();
        gold.dedup();
        pred.sort_unstable();
        pred.dedup();
        gold == pred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_table::Table;

    fn doc() -> Document {
        Document::new(
            0,
            "A total of 123 patients; 69 were female and 54 male.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["effect".into(), "n".into()],
                    vec!["Rash".into(), "69".into()],
                    vec!["Other".into(), "54".into()],
                ],
            )],
        )
    }

    #[test]
    fn text_mentions_extracted_in_order() {
        let ms = text_mentions(&doc());
        let vals: Vec<f64> = ms.iter().map(|m| m.quantity.value).collect();
        assert_eq!(vals, vec![123.0, 69.0, 54.0]);
        assert_eq!(ms[0].id, 0);
        assert_eq!(ms[2].id, 2);
    }

    fn alignment(start: usize, end: usize, cells: Vec<(usize, usize)>) -> Alignment {
        Alignment {
            mention_start: start,
            mention_end: end,
            mention_raw: String::new(),
            target: TableMention {
                table: 0,
                kind: TableMentionKind::SingleCell,
                cells,
                value: 69.0,
                unnormalized: 69.0,
                raw: "69".into(),
                unit: briq_text::Unit::None,
                precision: 0,
                orientation: None,
            },
            score: 0.9,
        }
    }

    #[test]
    fn gold_matching_requires_overlap_and_cells() {
        let gold = GoldAlignment {
            mention_start: 25,
            mention_end: 27,
            table: 0,
            kind: TableMentionKind::SingleCell,
            cells: vec![(1, 1)],
        };
        assert!(gold.matches(&alignment(25, 27, vec![(1, 1)])));
        // overlapping but not identical span still matches
        assert!(gold.matches(&alignment(24, 28, vec![(1, 1)])));
        // disjoint span
        assert!(!gold.matches(&alignment(30, 32, vec![(1, 1)])));
        // wrong cell
        assert!(!gold.matches(&alignment(25, 27, vec![(2, 1)])));
    }

    #[test]
    fn pair_cells_match_as_sets() {
        let gold = GoldAlignment {
            mention_start: 0,
            mention_end: 3,
            table: 0,
            kind: TableMentionKind::SingleCell,
            cells: vec![(1, 1), (2, 1)],
        };
        assert!(gold.matches(&alignment(0, 3, vec![(2, 1), (1, 1)])));
    }
}

briq_json::json_struct!(Alignment {
    mention_start,
    mention_end,
    mention_raw,
    target,
    score,
});
briq_json::json_struct!(GoldAlignment {
    mention_start,
    mention_end,
    table,
    kind,
    cells,
});
