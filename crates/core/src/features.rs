//! The 12 mention-pair features of §IV-B.
//!
//! | # | feature | group |
//! |---|---------|-------|
//! | f1 | surface-form Jaro-Winkler similarity | surface |
//! | f2 | local context word overlap (position-weighted) | context |
//! | f3 | global context word overlap | context |
//! | f4 | local context noun-phrase overlap | context |
//! | f5 | global context noun-phrase overlap | context |
//! | f6 | relative difference of normalized values | quantity |
//! | f7 | relative difference of unnormalized values | quantity |
//! | f8 | unit match (4-valued categorical) | quantity |
//! | f9 | scale (order-of-magnitude) difference | quantity |
//! | f10 | precision difference | quantity |
//! | f11 | approximation indicator (categorical) | context |
//! | f12 | aggregate-function match (4-valued categorical) | context |
//!
//! The ablation grouping (surface / context / quantity) follows §VIII-B.

use briq_table::TableMention;
use briq_text::cues::{AggregationKind, ApproxIndicator};
use briq_text::units::Unit;
use std::collections::HashMap;

use crate::context::{overlap, weighted_overlap, DocContext, TableContext};
use crate::jaro::{jaro_winkler, JaroScratch};
use crate::mention::TextMention;

/// Number of features per mention pair.
pub const FEATURE_COUNT: usize = 12;

/// Four-valued match degree shared by f8 and f12 (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchDegree {
    /// Both sides specified and equal.
    StrongMatch,
    /// Neither side specified.
    WeakMatch,
    /// Exactly one side specified.
    WeakMismatch,
    /// Both sides specified and different.
    StrongMismatch,
}

impl MatchDegree {
    /// Encode as a small ordinal for tree features.
    pub fn encode(self) -> f64 {
        match self {
            Self::StrongMatch => 0.0,
            Self::WeakMatch => 1.0,
            Self::WeakMismatch => 2.0,
            Self::StrongMismatch => 3.0,
        }
    }
}

/// Degree to which two units match (feature f8).
pub fn unit_match(x: Unit, t: Unit) -> MatchDegree {
    match (x.is_specified(), t.is_specified()) {
        (true, true) => {
            if x.matches(t) {
                MatchDegree::StrongMatch
            } else {
                MatchDegree::StrongMismatch
            }
        }
        (false, false) => MatchDegree::WeakMatch,
        _ => MatchDegree::WeakMismatch,
    }
}

fn encode_approx(a: ApproxIndicator) -> f64 {
    match a {
        ApproxIndicator::None => 0.0,
        ApproxIndicator::Approximate => 1.0,
        ApproxIndicator::Exact => 2.0,
        ApproxIndicator::UpperBound => 3.0,
        ApproxIndicator::LowerBound => 4.0,
    }
}

/// Relative difference `|x − t| / max(|x|, |t|)`, 0 when both are 0,
/// capped at 2 (opposite signs can exceed 1).
pub fn relative_difference(x: f64, t: f64) -> f64 {
    let denom = x.abs().max(t.abs());
    if denom == 0.0 {
        return 0.0;
    }
    ((x - t).abs() / denom).min(2.0)
}

/// Canonical surface form of a table mention for f1: the cell text for
/// single cells, the formatted value for virtual cells (which have no
/// natural surface form).
pub fn table_surface(t: &TableMention) -> String {
    if t.is_aggregate() {
        format_value(t.value)
    } else {
        t.raw.clone()
    }
}

/// Format a numeric value the way a writer would (trim float noise).
pub fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Compute the 12-feature vector for text mention `x` against table
/// mention `t` within a prepared document context.
pub fn feature_vector(x: &TextMention, t: &TableMention, ctx: &DocContext) -> Vec<f64> {
    let mctx = &ctx.mentions[x.id];
    let tctx = &ctx.tables[t.table];
    let q = &x.quantity;

    let f1 = jaro_winkler(&q.raw.to_lowercase(), &table_surface(t).to_lowercase());

    let t_local_words = tctx.local_words(t);
    let f2 = weighted_overlap(&mctx.local_weights, &t_local_words);
    let f3 = overlap(&ctx.paragraph_words, &tctx.table_words);
    let f4 = overlap(&mctx.sentence_phrases, &tctx.local_phrases(t));
    let f5 = overlap(&ctx.paragraph_phrases, &tctx.table_phrases);

    let f6 = relative_difference(q.value, t.value);
    let f7 = relative_difference(q.unnormalized, t.unnormalized);
    let f8 = unit_match(q.unit, t.unit).encode();
    let f9 = (q.scale() - t.scale()).abs() as f64;
    let f10 = (q.precision as i32 - t.precision as i32).abs() as f64;
    let f11 = encode_approx(q.approx);

    let f12 = {
        let x_agg = mctx.inferred_aggregation;
        let t_agg = t.aggregation();
        match (x_agg, t_agg) {
            (Some(a), Some(b)) if a == b => MatchDegree::StrongMatch,
            (Some(_), Some(_)) => MatchDegree::StrongMismatch,
            (None, None) => MatchDegree::WeakMatch,
            _ => MatchDegree::WeakMismatch,
        }
        .encode()
    };

    vec![f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11, f12]
}

/// Per-mention invariants of the pair features, computed once per mention
/// instead of once per pair.
#[derive(Debug, Clone)]
struct MentionInvariants {
    /// Lowercased surface form as chars (f1 operand).
    raw_chars: Vec<char>,
    /// Sum of the local-window word weights, accumulated in the same
    /// (sorted) order as `weighted_overlap`'s `weights.values().sum()`.
    text_mass: f64,
    value: f64,
    unnormalized: f64,
    unit: Unit,
    scale: i32,
    precision: u8,
    /// Encoded approximation indicator (f11).
    approx_code: f64,
    aggregation: Option<AggregationKind>,
}

/// Per-target invariants, computed once per target instead of once per
/// pair: the surface form and the row/column context unions dominate the
/// naive per-pair cost.
#[derive(Debug, Clone)]
struct TargetInvariants {
    /// Lowercased canonical surface as chars (f1 operand).
    surface_chars: Vec<char>,
    /// Index of the owning table (selects the [`TableIndex`]).
    table: usize,
    /// Offset of this target's member-row/member-col bitmasks in the
    /// shared `member_bits` arena (`row_blocks` then `col_blocks` words).
    bits_off: usize,
    /// `min(|local word union|, cap)` where the cap is at least every
    /// mention's `text_mass` — exactly enough for f2's denominator.
    union_words: f64,
    /// `min(|local phrase union|, cap)` where the cap is at least every
    /// mention's sentence-phrase count — exactly enough for f4.
    union_phrases: u32,
    value: f64,
    unnormalized: f64,
    unit: Unit,
    scale: i32,
    precision: u8,
    aggregation: Option<AggregationKind>,
    /// Global word overlap — constant per (document, table) pair (f3).
    f3: f64,
    /// Global phrase overlap — constant per (document, table) pair (f5).
    f5: f64,
}

/// Interned per-table context: every stemmed word and noun phrase of the
/// table's rows/columns gets a dense id plus bitmasks of the rows and
/// columns containing it. Membership of a word in a target's row/column
/// union then becomes two mask intersections instead of a `BTreeSet`
/// lookup, and the unions themselves are never materialized.
struct TableIndex<'c> {
    n_rows: usize,
    n_cols: usize,
    /// `u64` words per row bitmask (`n_rows.div_ceil(64)`).
    row_blocks: usize,
    /// `u64` words per column bitmask.
    col_blocks: usize,
    word_ids: HashMap<&'c str, u32>,
    /// Row bitmask per word id (`row_blocks` words each).
    word_row_bits: Vec<u64>,
    /// Column bitmask per word id.
    word_col_bits: Vec<u64>,
    /// Word ids per row (each row's set, any order, no duplicates).
    row_word_ids: Vec<Vec<u32>>,
    col_word_ids: Vec<Vec<u32>>,
    phrase_ids: HashMap<&'c str, u32>,
    phrase_row_bits: Vec<u64>,
    phrase_col_bits: Vec<u64>,
    row_phrase_ids: Vec<Vec<u32>>,
    col_phrase_ids: Vec<Vec<u32>>,
}

impl<'c> TableIndex<'c> {
    fn build(tctx: &'c TableContext) -> TableIndex<'c> {
        let n_rows = tctx.row_words.len();
        let n_cols = tctx.col_words.len();
        let row_blocks = n_rows.div_ceil(64);
        let col_blocks = n_cols.div_ceil(64);
        let (word_ids, word_row_bits, word_col_bits, row_word_ids, col_word_ids) =
            Self::index_sets(&tctx.row_words, &tctx.col_words, row_blocks, col_blocks);
        let (phrase_ids, phrase_row_bits, phrase_col_bits, row_phrase_ids, col_phrase_ids) =
            Self::index_sets(&tctx.row_phrases, &tctx.col_phrases, row_blocks, col_blocks);
        TableIndex {
            n_rows,
            n_cols,
            row_blocks,
            col_blocks,
            word_ids,
            word_row_bits,
            word_col_bits,
            row_word_ids,
            col_word_ids,
            phrase_ids,
            phrase_row_bits,
            phrase_col_bits,
            row_phrase_ids,
            col_phrase_ids,
        }
    }

    /// Intern the strings of per-row and per-column sets and record, for
    /// each id, the bitmask of rows and columns containing it.
    #[allow(clippy::type_complexity)]
    fn index_sets(
        rows: &'c [std::collections::BTreeSet<String>],
        cols: &'c [std::collections::BTreeSet<String>],
        row_blocks: usize,
        col_blocks: usize,
    ) -> (
        HashMap<&'c str, u32>,
        Vec<u64>,
        Vec<u64>,
        Vec<Vec<u32>>,
        Vec<Vec<u32>>,
    ) {
        let mut ids: HashMap<&'c str, u32> = HashMap::new();
        let mut row_bits: Vec<u64> = Vec::new();
        let mut col_bits: Vec<u64> = Vec::new();
        let mut next_id = 0u32;
        let mut intern = |s: &'c str, row_bits: &mut Vec<u64>, col_bits: &mut Vec<u64>| -> u32 {
            *ids.entry(s).or_insert_with(|| {
                row_bits.resize(row_bits.len() + row_blocks, 0);
                col_bits.resize(col_bits.len() + col_blocks, 0);
                let id = next_id;
                next_id += 1;
                id
            })
        };
        let mut per_row: Vec<Vec<u32>> = Vec::with_capacity(rows.len());
        for (r, set) in rows.iter().enumerate() {
            let mut ids_here = Vec::with_capacity(set.len());
            for s in set {
                let id = intern(s, &mut row_bits, &mut col_bits);
                row_bits[id as usize * row_blocks + r / 64] |= 1 << (r % 64);
                ids_here.push(id);
            }
            per_row.push(ids_here);
        }
        let mut per_col: Vec<Vec<u32>> = Vec::with_capacity(cols.len());
        for (c, set) in cols.iter().enumerate() {
            let mut ids_here = Vec::with_capacity(set.len());
            for s in set {
                let id = intern(s, &mut row_bits, &mut col_bits);
                col_bits[id as usize * col_blocks + c / 64] |= 1 << (c % 64);
                ids_here.push(id);
            }
            per_col.push(ids_here);
        }
        (ids, row_bits, col_bits, per_row, per_col)
    }
}

/// Whether interned item `id` occurs in a member row or member column —
/// exactly `union.contains(item)` without materializing the union.
#[inline]
fn mask_hit(
    row_bits: &[u64],
    col_bits: &[u64],
    id: u32,
    row_blocks: usize,
    col_blocks: usize,
    member_rows: &[u64],
    member_cols: &[u64],
) -> bool {
    let r_off = id as usize * row_blocks;
    let c_off = id as usize * col_blocks;
    row_bits[r_off..r_off + row_blocks]
        .iter()
        .zip(member_rows)
        .any(|(&a, &b)| a & b != 0)
        || col_bits[c_off..c_off + col_blocks]
            .iter()
            .zip(member_cols)
            .any(|(&a, &b)| a & b != 0)
}

/// Count the distinct items of the member rows'/columns' sets, stopping
/// at `cap`. Returns `min(|union|, cap)`; `seen` entries equal to `epoch`
/// mark already-counted ids (epoch-stamped so it is never cleared).
fn count_union_capped(
    member_rows: &[u64],
    member_cols: &[u64],
    per_row: &[Vec<u32>],
    per_col: &[Vec<u32>],
    seen: &mut [u32],
    epoch: u32,
    cap: usize,
) -> usize {
    let mut count = 0usize;
    if count >= cap {
        return count;
    }
    for (per_line, member) in [(per_row, member_rows), (per_col, member_cols)] {
        for (b, &block) in member.iter().enumerate() {
            let mut m = block;
            while m != 0 {
                let line = b * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                for &id in &per_line[line] {
                    let s = &mut seen[id as usize];
                    if *s != epoch {
                        *s = epoch;
                        count += 1;
                        if count >= cap {
                            return count;
                        }
                    }
                }
            }
        }
    }
    count
}

/// Local-window words of one mention that occur anywhere in one table:
/// `(weight, word id)` in the sorted order of the mention's weight map,
/// so f2's intersection sum visits the same values in the same order as
/// `weighted_overlap`. Words absent from the table can never be in a
/// target's union and are dropped up front.
struct MentionTableHits {
    words: Vec<(f64, u32)>,
    /// Sentence-phrase ids present in the table (f4 numerator operands).
    phrases: Vec<u32>,
}

/// Allocation-free pair featurizer: precomputes every per-mention and
/// per-target invariant once, then fills caller-provided rows.
///
/// [`PairFeaturizer::fill`] is bit-identical to [`feature_vector`] — same
/// expressions, same evaluation order — but performs no heap allocation
/// per pair: strings are pre-lowercased into char buffers, the per-table
/// global overlaps (f3/f5) are folded to constants, the Jaro-Winkler
/// match buffers live in a reused [`JaroScratch`], and the per-target
/// row/column unions of f2/f4 are replaced by interned-id bitmask
/// intersections (the private `TableIndex`) — the unions are never
/// materialized at all. The f2/f4 denominators only ever need a union
/// size up to the largest mention-side mass, so union cardinalities are
/// counted with a cap (the private `TargetInvariants::union_words`),
/// which keeps per-target setup O(cap) instead of O(union).
pub struct PairFeaturizer<'c> {
    ctx: &'c DocContext,
    mentions: Vec<MentionInvariants>,
    targets: Vec<TargetInvariants>,
    tables: Vec<TableIndex<'c>>,
    /// `mention_tables[mi * tables.len() + table]`.
    mention_tables: Vec<MentionTableHits>,
    /// Member-row/member-col bitmask arena, indexed by
    /// [`TargetInvariants::bits_off`].
    member_bits: Vec<u64>,
    jaro: JaroScratch,
}

impl<'c> PairFeaturizer<'c> {
    /// Precompute invariants for every mention and target of a document.
    pub fn new(
        mentions: &[TextMention],
        targets: &[TableMention],
        ctx: &'c DocContext,
    ) -> PairFeaturizer<'c> {
        let mention_inv: Vec<MentionInvariants> = mentions
            .iter()
            .enumerate()
            .map(|(mi, x)| {
                let q = &x.quantity;
                MentionInvariants {
                    raw_chars: q.raw.to_lowercase().chars().collect(),
                    text_mass: ctx.mentions[mi].local_weights.values().sum(),
                    value: q.value,
                    unnormalized: q.unnormalized,
                    unit: q.unit,
                    scale: q.scale(),
                    precision: q.precision,
                    approx_code: encode_approx(q.approx),
                    aggregation: ctx.mentions[x.id].inferred_aggregation,
                }
            })
            .collect();

        // f3/f5 depend only on the table, not the target within it.
        let per_table: Vec<(f64, f64)> = ctx
            .tables
            .iter()
            .map(|tctx| {
                (
                    overlap(&ctx.paragraph_words, &tctx.table_words),
                    overlap(&ctx.paragraph_phrases, &tctx.table_phrases),
                )
            })
            .collect();

        let tables: Vec<TableIndex<'c>> = ctx.tables.iter().map(TableIndex::build).collect();

        // Union-size caps: f2 needs `min(text_mass, |union|)` and f4 needs
        // `min(|sentence phrases|, |union|)`, so counting a union past the
        // largest mention-side operand can never change a feature value.
        let cap_words = mention_inv
            .iter()
            .map(|m| m.text_mass.ceil() as usize)
            .max()
            .unwrap_or(0);
        let cap_phrases = (0..mentions.len())
            .map(|mi| ctx.mentions[mi].sentence_phrases.len())
            .max()
            .unwrap_or(0);

        let mut mention_tables = Vec::with_capacity(mentions.len() * tables.len());
        for mi in 0..mentions.len() {
            let mctx = &ctx.mentions[mi];
            for idx in &tables {
                let words = mctx
                    .local_weights
                    .iter()
                    .filter_map(|(w, &weight)| idx.word_ids.get(w.as_str()).map(|&id| (weight, id)))
                    .collect();
                let phrases = mctx
                    .sentence_phrases
                    .iter()
                    .filter_map(|p| idx.phrase_ids.get(p.as_str()).copied())
                    .collect();
                mention_tables.push(MentionTableHits { words, phrases });
            }
        }

        let mut member_bits: Vec<u64> = Vec::new();
        let mut seen_words: Vec<Vec<u32>> =
            tables.iter().map(|i| vec![0; i.word_ids.len()]).collect();
        let mut seen_phrases: Vec<Vec<u32>> =
            tables.iter().map(|i| vec![0; i.phrase_ids.len()]).collect();
        let mut epochs = vec![0u32; tables.len()];
        let target_inv = targets
            .iter()
            .map(|t| {
                let idx = &tables[t.table];
                let (f3, f5) = per_table[t.table];
                let bits_off = member_bits.len();
                member_bits.resize(bits_off + idx.row_blocks + idx.col_blocks, 0);
                for &(r, c) in &t.cells {
                    // Same bounds-check-skip semantics as the
                    // `row_words.get(r)` lookups in `local_words`.
                    if r < idx.n_rows {
                        member_bits[bits_off + r / 64] |= 1 << (r % 64);
                    }
                    if c < idx.n_cols {
                        member_bits[bits_off + idx.row_blocks + c / 64] |= 1 << (c % 64);
                    }
                }
                epochs[t.table] += 1;
                let (mrows, mcols) = member_bits[bits_off..].split_at(idx.row_blocks);
                let union_words = count_union_capped(
                    mrows,
                    mcols,
                    &idx.row_word_ids,
                    &idx.col_word_ids,
                    &mut seen_words[t.table],
                    epochs[t.table],
                    cap_words,
                );
                let union_phrases = count_union_capped(
                    mrows,
                    mcols,
                    &idx.row_phrase_ids,
                    &idx.col_phrase_ids,
                    &mut seen_phrases[t.table],
                    epochs[t.table],
                    cap_phrases,
                );
                TargetInvariants {
                    surface_chars: table_surface(t).to_lowercase().chars().collect(),
                    table: t.table,
                    bits_off,
                    union_words: union_words as f64,
                    union_phrases: union_phrases as u32,
                    value: t.value,
                    unnormalized: t.unnormalized,
                    unit: t.unit,
                    scale: t.scale(),
                    precision: t.precision,
                    aggregation: t.aggregation(),
                    f3,
                    f5,
                }
            })
            .collect();

        PairFeaturizer {
            ctx,
            mentions: mention_inv,
            targets: target_inv,
            tables,
            mention_tables,
            member_bits,
            jaro: JaroScratch::new(),
        }
    }

    /// Number of mentions the featurizer was built over.
    pub fn n_mentions(&self) -> usize {
        self.mentions.len()
    }

    /// Number of targets the featurizer was built over.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// Fill `out` with the 12 features of pair `(mi, ti)` — bit-identical
    /// to `feature_vector(&mentions[mi], &targets[ti], ctx)`, with zero
    /// heap allocation once the scratch buffers are warm.
    pub fn fill(&mut self, mi: usize, ti: usize, out: &mut [f64; FEATURE_COUNT]) {
        self.fill_row(mi, ti, out);
    }

    /// Fill one flat row matrix with every target's features for mention
    /// `mi` (`rows[ti * FEATURE_COUNT..][..FEATURE_COUNT]` is pair
    /// `(mi, ti)`). The matrix is reused across mentions by the caller.
    pub fn fill_mention_rows(&mut self, mi: usize, rows: &mut Vec<f64>) {
        rows.clear();
        rows.resize(self.targets.len() * FEATURE_COUNT, 0.0);
        for (ti, row) in rows.chunks_exact_mut(FEATURE_COUNT).enumerate() {
            self.fill_row(mi, ti, row);
        }
    }

    /// Fill one flat row matrix with the features of mention `mi`
    /// against the *selected* targets `tis` only
    /// (`rows[k * FEATURE_COUNT..][..FEATURE_COUNT]` is pair
    /// `(mi, tis[k])`) — the retrieval-index counterpart of
    /// [`PairFeaturizer::fill_mention_rows`]. Each filled row is
    /// bit-identical to the same pair's row in the exhaustive matrix.
    pub fn fill_rows_for(&mut self, mi: usize, tis: &[usize], rows: &mut Vec<f64>) {
        rows.clear();
        rows.resize(tis.len() * FEATURE_COUNT, 0.0);
        for (&ti, row) in tis.iter().zip(rows.chunks_exact_mut(FEATURE_COUNT)) {
            self.fill_row(mi, ti, row);
        }
    }

    fn fill_row(&mut self, mi: usize, ti: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), FEATURE_COUNT);
        let m = &self.mentions[mi];
        let t = &self.targets[ti];
        let mctx = &self.ctx.mentions[mi];
        let idx = &self.tables[t.table];
        let hits = &self.mention_tables[mi * self.tables.len() + t.table];
        let member = &self.member_bits[t.bits_off..t.bits_off + idx.row_blocks + idx.col_blocks];
        let (mrows, mcols) = member.split_at(idx.row_blocks);

        out[0] = self.jaro.jaro_winkler_chars(&m.raw_chars, &t.surface_chars);
        out[1] = {
            // `weighted_overlap` against the (never materialized) member
            // union: the intersection sum visits the same weights in the
            // same sorted order through the same `Sum` impl (whose empty
            // identity is -0.0), and the capped union size is exact
            // wherever it can win the `min` (see `TargetInvariants`).
            let inter: f64 = hits
                .words
                .iter()
                .filter(|&&(_, id)| {
                    mask_hit(
                        &idx.word_row_bits,
                        &idx.word_col_bits,
                        id,
                        idx.row_blocks,
                        idx.col_blocks,
                        mrows,
                        mcols,
                    )
                })
                .map(|&(weight, _)| weight)
                .sum();
            let denom = m.text_mass.min(t.union_words);
            if denom <= 0.0 {
                0.0
            } else {
                (inter / denom).min(1.0)
            }
        };
        out[2] = t.f3;
        out[3] = {
            // `overlap` between sentence phrases and the member union.
            let a_len = mctx.sentence_phrases.len();
            let b_len = t.union_phrases as usize;
            if a_len == 0 || b_len == 0 {
                0.0
            } else {
                let inter = hits
                    .phrases
                    .iter()
                    .filter(|&&id| {
                        mask_hit(
                            &idx.phrase_row_bits,
                            &idx.phrase_col_bits,
                            id,
                            idx.row_blocks,
                            idx.col_blocks,
                            mrows,
                            mcols,
                        )
                    })
                    .count();
                inter as f64 / a_len.min(b_len) as f64
            }
        };
        out[4] = t.f5;
        out[5] = relative_difference(m.value, t.value);
        out[6] = relative_difference(m.unnormalized, t.unnormalized);
        out[7] = unit_match(m.unit, t.unit).encode();
        out[8] = (m.scale - t.scale).abs() as f64;
        out[9] = (m.precision as i32 - t.precision as i32).abs() as f64;
        out[10] = m.approx_code;
        out[11] = match (m.aggregation, t.aggregation) {
            (Some(a), Some(b)) if a == b => MatchDegree::StrongMatch,
            (Some(_), Some(_)) => MatchDegree::StrongMismatch,
            (None, None) => MatchDegree::WeakMatch,
            _ => MatchDegree::WeakMismatch,
        }
        .encode();
    }
}

/// Ablation mask over the three feature groups of §VIII-B. Masked features
/// are zeroed (constant features are never chosen as tree splits, so this
/// is equivalent to removing them — while keeping vector shapes stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMask {
    /// Keep f1.
    pub surface: bool,
    /// Keep f2–f5, f11, f12.
    pub context: bool,
    /// Keep f6–f10.
    pub quantity: bool,
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask {
            surface: true,
            context: true,
            quantity: true,
        }
    }
}

impl FeatureMask {
    /// All features on.
    pub fn all() -> Self {
        Self::default()
    }

    /// Group membership of each feature index: is feature `idx` kept?
    /// Used by mask-baked scoring paths so they can honour the mask
    /// without copying the feature row.
    pub fn keeps(&self, idx: usize) -> bool {
        match idx {
            0 => self.surface,
            1..=4 | 10 | 11 => self.context,
            5..=9 => self.quantity,
            _ => true,
        }
    }

    /// Apply the mask in place.
    pub fn apply(&self, features: &mut [f64]) {
        for (i, f) in features.iter_mut().enumerate() {
            if !self.keeps(i) {
                *f = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextConfig, DocContext};
    use crate::mention::text_mentions;
    use briq_table::{Document, Table, TableMentionKind};
    use briq_text::units::Currency;

    fn doc() -> Document {
        Document::new(
            0,
            "A total of 123 patients reported side effects; depression was \
             reported by 38 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["side effects".into(), "patients".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            )],
        )
    }

    fn setup() -> (Document, Vec<crate::mention::TextMention>, DocContext) {
        let d = doc();
        let ms = text_mentions(&d);
        let ctx = DocContext::build(&d, &ms, &ContextConfig::default());
        (d, ms, ctx)
    }

    fn single(cells: (usize, usize), value: f64, raw: &str) -> TableMention {
        TableMention {
            table: 0,
            kind: TableMentionKind::SingleCell,
            cells: vec![cells],
            value,
            unnormalized: value,
            raw: raw.into(),
            unit: Unit::None,
            precision: 0,
            orientation: None,
        }
    }

    #[test]
    fn vector_has_twelve_features() {
        let (_, ms, ctx) = setup();
        let t = single((2, 1), 38.0, "38");
        let v = feature_vector(&ms[1], &t, &ctx);
        assert_eq!(v.len(), FEATURE_COUNT);
    }

    #[test]
    fn exact_value_match_beats_mismatch() {
        let (_, ms, ctx) = setup();
        let right = single((2, 1), 38.0, "38");
        let wrong = single((1, 1), 35.0, "35");
        let v_right = feature_vector(&ms[1], &right, &ctx);
        let v_wrong = feature_vector(&ms[1], &wrong, &ctx);
        // f1 surface and f6 value distance both favor the right cell
        assert!(v_right[0] > v_wrong[0]);
        assert!(v_right[5] < v_wrong[5]);
        // context: "depression" appears in the right cell's row
        assert!(v_right[1] > v_wrong[1]);
    }

    #[test]
    fn relative_difference_properties() {
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert_eq!(relative_difference(10.0, 10.0), 0.0);
        assert!((relative_difference(37000.0, 36900.0) - 100.0 / 37000.0).abs() < 1e-12);
        assert_eq!(relative_difference(-1.0, 1.0), 2.0);
        assert_eq!(relative_difference(5.0, 0.0), 1.0);
    }

    #[test]
    fn unit_match_degrees() {
        use MatchDegree::*;
        let usd = Unit::Currency(Currency::Usd);
        let eur = Unit::Currency(Currency::Eur);
        assert_eq!(unit_match(usd, usd), StrongMatch);
        assert_eq!(unit_match(usd, eur), StrongMismatch);
        assert_eq!(unit_match(Unit::None, Unit::None), WeakMatch);
        assert_eq!(unit_match(usd, Unit::None), WeakMismatch);
        assert_eq!(unit_match(Unit::None, Unit::Percent), WeakMismatch);
    }

    #[test]
    fn aggregate_match_feature() {
        let (_, ms, ctx) = setup();
        // Mention 0 ("total of 123") infers Sum.
        let sum_target = TableMention {
            kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Sum),
            cells: vec![(1, 1), (2, 1)],
            value: 73.0,
            unnormalized: 73.0,
            raw: "sum".into(),
            orientation: Some(briq_table::Orientation::Column(1)),
            ..single((1, 1), 73.0, "73")
        };
        let diff_target = TableMention {
            kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Difference),
            ..sum_target.clone()
        };
        let v_sum = feature_vector(&ms[0], &sum_target, &ctx);
        let v_diff = feature_vector(&ms[0], &diff_target, &ctx);
        assert_eq!(v_sum[11], MatchDegree::StrongMatch.encode());
        assert_eq!(v_diff[11], MatchDegree::StrongMismatch.encode());
    }

    #[test]
    fn featurizer_matches_feature_vector() {
        let (_, ms, ctx) = setup();
        let targets = vec![
            single((2, 1), 38.0, "38"),
            single((1, 1), 35.0, "35"),
            TableMention {
                kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Sum),
                cells: vec![(1, 1), (2, 1)],
                value: 73.0,
                unnormalized: 73.0,
                raw: "sum".into(),
                orientation: Some(briq_table::Orientation::Column(1)),
                ..single((1, 1), 73.0, "73")
            },
        ];
        let mut fz = PairFeaturizer::new(&ms, &targets, &ctx);
        assert_eq!(fz.n_mentions(), ms.len());
        assert_eq!(fz.n_targets(), targets.len());
        let mut row = [0.0; FEATURE_COUNT];
        let mut rows = Vec::new();
        for (mi, x) in ms.iter().enumerate() {
            fz.fill_mention_rows(mi, &mut rows);
            for (ti, t) in targets.iter().enumerate() {
                let naive = feature_vector(x, t, &ctx);
                fz.fill(mi, ti, &mut row);
                assert_eq!(&row[..], &naive[..], "pair ({mi}, {ti})");
                assert_eq!(
                    &rows[ti * FEATURE_COUNT..(ti + 1) * FEATURE_COUNT],
                    &naive[..],
                    "row ({mi}, {ti})"
                );
            }
        }
    }

    #[test]
    fn format_value_trims() {
        assert_eq!(format_value(123.0), "123");
        assert_eq!(format_value(1.5), "1.5");
        assert_eq!(format_value(1.5730000), "1.573");
        assert_eq!(format_value(-70.0), "-70");
    }

    #[test]
    fn mask_zeroes_groups() {
        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: false,
            context: true,
            quantity: true,
        };
        m.apply(&mut v);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 2.0);

        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: true,
            context: false,
            quantity: true,
        };
        m.apply(&mut v);
        assert_eq!(v[0], 1.0);
        for i in [1, 2, 3, 4, 10, 11] {
            assert_eq!(v[i], 0.0, "f{} should be masked", i + 1);
        }
        for i in [5, 6, 7, 8, 9] {
            assert_ne!(v[i], 0.0);
        }

        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: true,
            context: true,
            quantity: false,
        };
        m.apply(&mut v);
        for i in [5, 6, 7, 8, 9] {
            assert_eq!(v[i], 0.0);
        }
    }
}

briq_json::json_struct!(FeatureMask {
    surface,
    context,
    quantity
});
