//! The 12 mention-pair features of §IV-B.
//!
//! | # | feature | group |
//! |---|---------|-------|
//! | f1 | surface-form Jaro-Winkler similarity | surface |
//! | f2 | local context word overlap (position-weighted) | context |
//! | f3 | global context word overlap | context |
//! | f4 | local context noun-phrase overlap | context |
//! | f5 | global context noun-phrase overlap | context |
//! | f6 | relative difference of normalized values | quantity |
//! | f7 | relative difference of unnormalized values | quantity |
//! | f8 | unit match (4-valued categorical) | quantity |
//! | f9 | scale (order-of-magnitude) difference | quantity |
//! | f10 | precision difference | quantity |
//! | f11 | approximation indicator (categorical) | context |
//! | f12 | aggregate-function match (4-valued categorical) | context |
//!
//! The ablation grouping (surface / context / quantity) follows §VIII-B.

use briq_table::TableMention;
use briq_text::cues::{AggregationKind, ApproxIndicator};
use briq_text::units::Unit;
use std::collections::BTreeSet;

use crate::context::{overlap, weighted_overlap, DocContext};
use crate::jaro::{jaro_winkler, JaroScratch};
use crate::mention::TextMention;

/// Number of features per mention pair.
pub const FEATURE_COUNT: usize = 12;

/// Four-valued match degree shared by f8 and f12 (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchDegree {
    /// Both sides specified and equal.
    StrongMatch,
    /// Neither side specified.
    WeakMatch,
    /// Exactly one side specified.
    WeakMismatch,
    /// Both sides specified and different.
    StrongMismatch,
}

impl MatchDegree {
    /// Encode as a small ordinal for tree features.
    pub fn encode(self) -> f64 {
        match self {
            Self::StrongMatch => 0.0,
            Self::WeakMatch => 1.0,
            Self::WeakMismatch => 2.0,
            Self::StrongMismatch => 3.0,
        }
    }
}

/// Degree to which two units match (feature f8).
pub fn unit_match(x: Unit, t: Unit) -> MatchDegree {
    match (x.is_specified(), t.is_specified()) {
        (true, true) => {
            if x.matches(t) {
                MatchDegree::StrongMatch
            } else {
                MatchDegree::StrongMismatch
            }
        }
        (false, false) => MatchDegree::WeakMatch,
        _ => MatchDegree::WeakMismatch,
    }
}

fn encode_approx(a: ApproxIndicator) -> f64 {
    match a {
        ApproxIndicator::None => 0.0,
        ApproxIndicator::Approximate => 1.0,
        ApproxIndicator::Exact => 2.0,
        ApproxIndicator::UpperBound => 3.0,
        ApproxIndicator::LowerBound => 4.0,
    }
}

/// Relative difference `|x − t| / max(|x|, |t|)`, 0 when both are 0,
/// capped at 2 (opposite signs can exceed 1).
pub fn relative_difference(x: f64, t: f64) -> f64 {
    let denom = x.abs().max(t.abs());
    if denom == 0.0 {
        return 0.0;
    }
    ((x - t).abs() / denom).min(2.0)
}

/// Canonical surface form of a table mention for f1: the cell text for
/// single cells, the formatted value for virtual cells (which have no
/// natural surface form).
pub fn table_surface(t: &TableMention) -> String {
    if t.is_aggregate() {
        format_value(t.value)
    } else {
        t.raw.clone()
    }
}

/// Format a numeric value the way a writer would (trim float noise).
pub fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Compute the 12-feature vector for text mention `x` against table
/// mention `t` within a prepared document context.
pub fn feature_vector(x: &TextMention, t: &TableMention, ctx: &DocContext) -> Vec<f64> {
    let mctx = &ctx.mentions[x.id];
    let tctx = &ctx.tables[t.table];
    let q = &x.quantity;

    let f1 = jaro_winkler(&q.raw.to_lowercase(), &table_surface(t).to_lowercase());

    let t_local_words = tctx.local_words(t);
    let f2 = weighted_overlap(&mctx.local_weights, &t_local_words);
    let f3 = overlap(&ctx.paragraph_words, &tctx.table_words);
    let f4 = overlap(&mctx.sentence_phrases, &tctx.local_phrases(t));
    let f5 = overlap(&ctx.paragraph_phrases, &tctx.table_phrases);

    let f6 = relative_difference(q.value, t.value);
    let f7 = relative_difference(q.unnormalized, t.unnormalized);
    let f8 = unit_match(q.unit, t.unit).encode();
    let f9 = (q.scale() - t.scale()).abs() as f64;
    let f10 = (q.precision as i32 - t.precision as i32).abs() as f64;
    let f11 = encode_approx(q.approx);

    let f12 = {
        let x_agg = mctx.inferred_aggregation;
        let t_agg = t.aggregation();
        match (x_agg, t_agg) {
            (Some(a), Some(b)) if a == b => MatchDegree::StrongMatch,
            (Some(_), Some(_)) => MatchDegree::StrongMismatch,
            (None, None) => MatchDegree::WeakMatch,
            _ => MatchDegree::WeakMismatch,
        }
        .encode()
    };

    vec![f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11, f12]
}

/// Per-mention invariants of the pair features, computed once per mention
/// instead of once per pair.
#[derive(Debug, Clone)]
struct MentionInvariants {
    /// Lowercased surface form as chars (f1 operand).
    raw_chars: Vec<char>,
    value: f64,
    unnormalized: f64,
    unit: Unit,
    scale: i32,
    precision: u8,
    /// Encoded approximation indicator (f11).
    approx_code: f64,
    aggregation: Option<AggregationKind>,
}

/// Per-target invariants, computed once per target instead of once per
/// pair: the surface form and the row/column context unions dominate the
/// naive per-pair cost.
#[derive(Debug, Clone)]
struct TargetInvariants {
    /// Lowercased canonical surface as chars (f1 operand).
    surface_chars: Vec<char>,
    /// Union of member rows' and columns' stemmed words (f2).
    local_words: BTreeSet<String>,
    /// Union of member rows' and columns' noun phrases (f4).
    local_phrases: BTreeSet<String>,
    value: f64,
    unnormalized: f64,
    unit: Unit,
    scale: i32,
    precision: u8,
    aggregation: Option<AggregationKind>,
    /// Global word overlap — constant per (document, table) pair (f3).
    f3: f64,
    /// Global phrase overlap — constant per (document, table) pair (f5).
    f5: f64,
}

/// Allocation-free pair featurizer: precomputes every per-mention and
/// per-target invariant once, then fills caller-provided rows.
///
/// [`PairFeaturizer::fill`] is bit-identical to [`feature_vector`] — same
/// expressions, same evaluation order — but performs no heap allocation
/// per pair: strings are pre-lowercased into char buffers, the per-target
/// row/column unions are materialized once, the per-table global overlaps
/// (f3/f5) are folded to constants, and the Jaro-Winkler match buffers
/// live in a reused [`JaroScratch`].
pub struct PairFeaturizer<'c> {
    ctx: &'c DocContext,
    mentions: Vec<MentionInvariants>,
    targets: Vec<TargetInvariants>,
    jaro: JaroScratch,
}

impl<'c> PairFeaturizer<'c> {
    /// Precompute invariants for every mention and target of a document.
    pub fn new(
        mentions: &[TextMention],
        targets: &[TableMention],
        ctx: &'c DocContext,
    ) -> PairFeaturizer<'c> {
        let mention_inv = mentions
            .iter()
            .map(|x| {
                let q = &x.quantity;
                MentionInvariants {
                    raw_chars: q.raw.to_lowercase().chars().collect(),
                    value: q.value,
                    unnormalized: q.unnormalized,
                    unit: q.unit,
                    scale: q.scale(),
                    precision: q.precision,
                    approx_code: encode_approx(q.approx),
                    aggregation: ctx.mentions[x.id].inferred_aggregation,
                }
            })
            .collect();

        // f3/f5 depend only on the table, not the target within it.
        let per_table: Vec<(f64, f64)> = ctx
            .tables
            .iter()
            .map(|tctx| {
                (
                    overlap(&ctx.paragraph_words, &tctx.table_words),
                    overlap(&ctx.paragraph_phrases, &tctx.table_phrases),
                )
            })
            .collect();

        let target_inv = targets
            .iter()
            .map(|t| {
                let tctx = &ctx.tables[t.table];
                let (f3, f5) = per_table[t.table];
                TargetInvariants {
                    surface_chars: table_surface(t).to_lowercase().chars().collect(),
                    local_words: tctx.local_words(t),
                    local_phrases: tctx.local_phrases(t),
                    value: t.value,
                    unnormalized: t.unnormalized,
                    unit: t.unit,
                    scale: t.scale(),
                    precision: t.precision,
                    aggregation: t.aggregation(),
                    f3,
                    f5,
                }
            })
            .collect();

        PairFeaturizer {
            ctx,
            mentions: mention_inv,
            targets: target_inv,
            jaro: JaroScratch::new(),
        }
    }

    /// Number of mentions the featurizer was built over.
    pub fn n_mentions(&self) -> usize {
        self.mentions.len()
    }

    /// Number of targets the featurizer was built over.
    pub fn n_targets(&self) -> usize {
        self.targets.len()
    }

    /// Fill `out` with the 12 features of pair `(mi, ti)` — bit-identical
    /// to `feature_vector(&mentions[mi], &targets[ti], ctx)`, with zero
    /// heap allocation once the scratch buffers are warm.
    pub fn fill(&mut self, mi: usize, ti: usize, out: &mut [f64; FEATURE_COUNT]) {
        self.fill_row(mi, ti, out);
    }

    /// Fill one flat row matrix with every target's features for mention
    /// `mi` (`rows[ti * FEATURE_COUNT..][..FEATURE_COUNT]` is pair
    /// `(mi, ti)`). The matrix is reused across mentions by the caller.
    pub fn fill_mention_rows(&mut self, mi: usize, rows: &mut Vec<f64>) {
        rows.clear();
        rows.resize(self.targets.len() * FEATURE_COUNT, 0.0);
        for (ti, row) in rows.chunks_exact_mut(FEATURE_COUNT).enumerate() {
            self.fill_row(mi, ti, row);
        }
    }

    fn fill_row(&mut self, mi: usize, ti: usize, out: &mut [f64]) {
        debug_assert_eq!(out.len(), FEATURE_COUNT);
        let m = &self.mentions[mi];
        let t = &self.targets[ti];
        let mctx = &self.ctx.mentions[mi];

        out[0] = self.jaro.jaro_winkler_chars(&m.raw_chars, &t.surface_chars);
        out[1] = weighted_overlap(&mctx.local_weights, &t.local_words);
        out[2] = t.f3;
        out[3] = overlap(&mctx.sentence_phrases, &t.local_phrases);
        out[4] = t.f5;
        out[5] = relative_difference(m.value, t.value);
        out[6] = relative_difference(m.unnormalized, t.unnormalized);
        out[7] = unit_match(m.unit, t.unit).encode();
        out[8] = (m.scale - t.scale).abs() as f64;
        out[9] = (m.precision as i32 - t.precision as i32).abs() as f64;
        out[10] = m.approx_code;
        out[11] = match (m.aggregation, t.aggregation) {
            (Some(a), Some(b)) if a == b => MatchDegree::StrongMatch,
            (Some(_), Some(_)) => MatchDegree::StrongMismatch,
            (None, None) => MatchDegree::WeakMatch,
            _ => MatchDegree::WeakMismatch,
        }
        .encode();
    }
}

/// Ablation mask over the three feature groups of §VIII-B. Masked features
/// are zeroed (constant features are never chosen as tree splits, so this
/// is equivalent to removing them — while keeping vector shapes stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMask {
    /// Keep f1.
    pub surface: bool,
    /// Keep f2–f5, f11, f12.
    pub context: bool,
    /// Keep f6–f10.
    pub quantity: bool,
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask {
            surface: true,
            context: true,
            quantity: true,
        }
    }
}

impl FeatureMask {
    /// All features on.
    pub fn all() -> Self {
        Self::default()
    }

    /// Group membership of each feature index: is feature `idx` kept?
    /// Used by mask-baked scoring paths so they can honour the mask
    /// without copying the feature row.
    pub fn keeps(&self, idx: usize) -> bool {
        match idx {
            0 => self.surface,
            1..=4 | 10 | 11 => self.context,
            5..=9 => self.quantity,
            _ => true,
        }
    }

    /// Apply the mask in place.
    pub fn apply(&self, features: &mut [f64]) {
        for (i, f) in features.iter_mut().enumerate() {
            if !self.keeps(i) {
                *f = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextConfig, DocContext};
    use crate::mention::text_mentions;
    use briq_table::{Document, Table, TableMentionKind};
    use briq_text::units::Currency;

    fn doc() -> Document {
        Document::new(
            0,
            "A total of 123 patients reported side effects; depression was \
             reported by 38 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["side effects".into(), "patients".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            )],
        )
    }

    fn setup() -> (Document, Vec<crate::mention::TextMention>, DocContext) {
        let d = doc();
        let ms = text_mentions(&d);
        let ctx = DocContext::build(&d, &ms, &ContextConfig::default());
        (d, ms, ctx)
    }

    fn single(cells: (usize, usize), value: f64, raw: &str) -> TableMention {
        TableMention {
            table: 0,
            kind: TableMentionKind::SingleCell,
            cells: vec![cells],
            value,
            unnormalized: value,
            raw: raw.into(),
            unit: Unit::None,
            precision: 0,
            orientation: None,
        }
    }

    #[test]
    fn vector_has_twelve_features() {
        let (_, ms, ctx) = setup();
        let t = single((2, 1), 38.0, "38");
        let v = feature_vector(&ms[1], &t, &ctx);
        assert_eq!(v.len(), FEATURE_COUNT);
    }

    #[test]
    fn exact_value_match_beats_mismatch() {
        let (_, ms, ctx) = setup();
        let right = single((2, 1), 38.0, "38");
        let wrong = single((1, 1), 35.0, "35");
        let v_right = feature_vector(&ms[1], &right, &ctx);
        let v_wrong = feature_vector(&ms[1], &wrong, &ctx);
        // f1 surface and f6 value distance both favor the right cell
        assert!(v_right[0] > v_wrong[0]);
        assert!(v_right[5] < v_wrong[5]);
        // context: "depression" appears in the right cell's row
        assert!(v_right[1] > v_wrong[1]);
    }

    #[test]
    fn relative_difference_properties() {
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert_eq!(relative_difference(10.0, 10.0), 0.0);
        assert!((relative_difference(37000.0, 36900.0) - 100.0 / 37000.0).abs() < 1e-12);
        assert_eq!(relative_difference(-1.0, 1.0), 2.0);
        assert_eq!(relative_difference(5.0, 0.0), 1.0);
    }

    #[test]
    fn unit_match_degrees() {
        use MatchDegree::*;
        let usd = Unit::Currency(Currency::Usd);
        let eur = Unit::Currency(Currency::Eur);
        assert_eq!(unit_match(usd, usd), StrongMatch);
        assert_eq!(unit_match(usd, eur), StrongMismatch);
        assert_eq!(unit_match(Unit::None, Unit::None), WeakMatch);
        assert_eq!(unit_match(usd, Unit::None), WeakMismatch);
        assert_eq!(unit_match(Unit::None, Unit::Percent), WeakMismatch);
    }

    #[test]
    fn aggregate_match_feature() {
        let (_, ms, ctx) = setup();
        // Mention 0 ("total of 123") infers Sum.
        let sum_target = TableMention {
            kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Sum),
            cells: vec![(1, 1), (2, 1)],
            value: 73.0,
            unnormalized: 73.0,
            raw: "sum".into(),
            orientation: Some(briq_table::Orientation::Column(1)),
            ..single((1, 1), 73.0, "73")
        };
        let diff_target = TableMention {
            kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Difference),
            ..sum_target.clone()
        };
        let v_sum = feature_vector(&ms[0], &sum_target, &ctx);
        let v_diff = feature_vector(&ms[0], &diff_target, &ctx);
        assert_eq!(v_sum[11], MatchDegree::StrongMatch.encode());
        assert_eq!(v_diff[11], MatchDegree::StrongMismatch.encode());
    }

    #[test]
    fn featurizer_matches_feature_vector() {
        let (_, ms, ctx) = setup();
        let targets = vec![
            single((2, 1), 38.0, "38"),
            single((1, 1), 35.0, "35"),
            TableMention {
                kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Sum),
                cells: vec![(1, 1), (2, 1)],
                value: 73.0,
                unnormalized: 73.0,
                raw: "sum".into(),
                orientation: Some(briq_table::Orientation::Column(1)),
                ..single((1, 1), 73.0, "73")
            },
        ];
        let mut fz = PairFeaturizer::new(&ms, &targets, &ctx);
        assert_eq!(fz.n_mentions(), ms.len());
        assert_eq!(fz.n_targets(), targets.len());
        let mut row = [0.0; FEATURE_COUNT];
        let mut rows = Vec::new();
        for (mi, x) in ms.iter().enumerate() {
            fz.fill_mention_rows(mi, &mut rows);
            for (ti, t) in targets.iter().enumerate() {
                let naive = feature_vector(x, t, &ctx);
                fz.fill(mi, ti, &mut row);
                assert_eq!(&row[..], &naive[..], "pair ({mi}, {ti})");
                assert_eq!(
                    &rows[ti * FEATURE_COUNT..(ti + 1) * FEATURE_COUNT],
                    &naive[..],
                    "row ({mi}, {ti})"
                );
            }
        }
    }

    #[test]
    fn format_value_trims() {
        assert_eq!(format_value(123.0), "123");
        assert_eq!(format_value(1.5), "1.5");
        assert_eq!(format_value(1.5730000), "1.573");
        assert_eq!(format_value(-70.0), "-70");
    }

    #[test]
    fn mask_zeroes_groups() {
        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: false,
            context: true,
            quantity: true,
        };
        m.apply(&mut v);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 2.0);

        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: true,
            context: false,
            quantity: true,
        };
        m.apply(&mut v);
        assert_eq!(v[0], 1.0);
        for i in [1, 2, 3, 4, 10, 11] {
            assert_eq!(v[i], 0.0, "f{} should be masked", i + 1);
        }
        for i in [5, 6, 7, 8, 9] {
            assert_ne!(v[i], 0.0);
        }

        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: true,
            context: true,
            quantity: false,
        };
        m.apply(&mut v);
        for i in [5, 6, 7, 8, 9] {
            assert_eq!(v[i], 0.0);
        }
    }
}

briq_json::json_struct!(FeatureMask {
    surface,
    context,
    quantity
});
