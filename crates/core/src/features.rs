//! The 12 mention-pair features of §IV-B.
//!
//! | # | feature | group |
//! |---|---------|-------|
//! | f1 | surface-form Jaro-Winkler similarity | surface |
//! | f2 | local context word overlap (position-weighted) | context |
//! | f3 | global context word overlap | context |
//! | f4 | local context noun-phrase overlap | context |
//! | f5 | global context noun-phrase overlap | context |
//! | f6 | relative difference of normalized values | quantity |
//! | f7 | relative difference of unnormalized values | quantity |
//! | f8 | unit match (4-valued categorical) | quantity |
//! | f9 | scale (order-of-magnitude) difference | quantity |
//! | f10 | precision difference | quantity |
//! | f11 | approximation indicator (categorical) | context |
//! | f12 | aggregate-function match (4-valued categorical) | context |
//!
//! The ablation grouping (surface / context / quantity) follows §VIII-B.

use briq_table::TableMention;
use briq_text::cues::ApproxIndicator;
use briq_text::units::Unit;

use crate::context::{overlap, weighted_overlap, DocContext};
use crate::jaro::jaro_winkler;
use crate::mention::TextMention;

/// Number of features per mention pair.
pub const FEATURE_COUNT: usize = 12;

/// Four-valued match degree shared by f8 and f12 (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchDegree {
    /// Both sides specified and equal.
    StrongMatch,
    /// Neither side specified.
    WeakMatch,
    /// Exactly one side specified.
    WeakMismatch,
    /// Both sides specified and different.
    StrongMismatch,
}

impl MatchDegree {
    /// Encode as a small ordinal for tree features.
    pub fn encode(self) -> f64 {
        match self {
            Self::StrongMatch => 0.0,
            Self::WeakMatch => 1.0,
            Self::WeakMismatch => 2.0,
            Self::StrongMismatch => 3.0,
        }
    }
}

/// Degree to which two units match (feature f8).
pub fn unit_match(x: Unit, t: Unit) -> MatchDegree {
    match (x.is_specified(), t.is_specified()) {
        (true, true) => {
            if x.matches(t) {
                MatchDegree::StrongMatch
            } else {
                MatchDegree::StrongMismatch
            }
        }
        (false, false) => MatchDegree::WeakMatch,
        _ => MatchDegree::WeakMismatch,
    }
}

fn encode_approx(a: ApproxIndicator) -> f64 {
    match a {
        ApproxIndicator::None => 0.0,
        ApproxIndicator::Approximate => 1.0,
        ApproxIndicator::Exact => 2.0,
        ApproxIndicator::UpperBound => 3.0,
        ApproxIndicator::LowerBound => 4.0,
    }
}

/// Relative difference `|x − t| / max(|x|, |t|)`, 0 when both are 0,
/// capped at 2 (opposite signs can exceed 1).
pub fn relative_difference(x: f64, t: f64) -> f64 {
    let denom = x.abs().max(t.abs());
    if denom == 0.0 {
        return 0.0;
    }
    ((x - t).abs() / denom).min(2.0)
}

/// Canonical surface form of a table mention for f1: the cell text for
/// single cells, the formatted value for virtual cells (which have no
/// natural surface form).
pub fn table_surface(t: &TableMention) -> String {
    if t.is_aggregate() {
        format_value(t.value)
    } else {
        t.raw.clone()
    }
}

/// Format a numeric value the way a writer would (trim float noise).
pub fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.4}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// Compute the 12-feature vector for text mention `x` against table
/// mention `t` within a prepared document context.
pub fn feature_vector(x: &TextMention, t: &TableMention, ctx: &DocContext) -> Vec<f64> {
    let mctx = &ctx.mentions[x.id];
    let tctx = &ctx.tables[t.table];
    let q = &x.quantity;

    let f1 = jaro_winkler(&q.raw.to_lowercase(), &table_surface(t).to_lowercase());

    let t_local_words = tctx.local_words(t);
    let f2 = weighted_overlap(&mctx.local_weights, &t_local_words);
    let f3 = overlap(&ctx.paragraph_words, &tctx.table_words);
    let f4 = overlap(&mctx.sentence_phrases, &tctx.local_phrases(t));
    let f5 = overlap(&ctx.paragraph_phrases, &tctx.table_phrases);

    let f6 = relative_difference(q.value, t.value);
    let f7 = relative_difference(q.unnormalized, t.unnormalized);
    let f8 = unit_match(q.unit, t.unit).encode();
    let f9 = (q.scale() - t.scale()).abs() as f64;
    let f10 = (q.precision as i32 - t.precision as i32).abs() as f64;
    let f11 = encode_approx(q.approx);

    let f12 = {
        let x_agg = mctx.inferred_aggregation;
        let t_agg = t.aggregation();
        match (x_agg, t_agg) {
            (Some(a), Some(b)) if a == b => MatchDegree::StrongMatch,
            (Some(_), Some(_)) => MatchDegree::StrongMismatch,
            (None, None) => MatchDegree::WeakMatch,
            _ => MatchDegree::WeakMismatch,
        }
        .encode()
    };

    vec![f1, f2, f3, f4, f5, f6, f7, f8, f9, f10, f11, f12]
}

/// Ablation mask over the three feature groups of §VIII-B. Masked features
/// are zeroed (constant features are never chosen as tree splits, so this
/// is equivalent to removing them — while keeping vector shapes stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMask {
    /// Keep f1.
    pub surface: bool,
    /// Keep f2–f5, f11, f12.
    pub context: bool,
    /// Keep f6–f10.
    pub quantity: bool,
}

impl Default for FeatureMask {
    fn default() -> Self {
        FeatureMask {
            surface: true,
            context: true,
            quantity: true,
        }
    }
}

impl FeatureMask {
    /// All features on.
    pub fn all() -> Self {
        Self::default()
    }

    /// Group membership of each feature index.
    fn keeps(&self, idx: usize) -> bool {
        match idx {
            0 => self.surface,
            1..=4 | 10 | 11 => self.context,
            5..=9 => self.quantity,
            _ => true,
        }
    }

    /// Apply the mask in place.
    pub fn apply(&self, features: &mut [f64]) {
        for (i, f) in features.iter_mut().enumerate() {
            if !self.keeps(i) {
                *f = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{ContextConfig, DocContext};
    use crate::mention::text_mentions;
    use briq_table::{Document, Table, TableMentionKind};
    use briq_text::units::Currency;

    fn doc() -> Document {
        Document::new(
            0,
            "A total of 123 patients reported side effects; depression was \
             reported by 38 patients.",
            vec![Table::from_grid(
                "",
                vec![
                    vec!["side effects".into(), "patients".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            )],
        )
    }

    fn setup() -> (Document, Vec<crate::mention::TextMention>, DocContext) {
        let d = doc();
        let ms = text_mentions(&d);
        let ctx = DocContext::build(&d, &ms, &ContextConfig::default());
        (d, ms, ctx)
    }

    fn single(cells: (usize, usize), value: f64, raw: &str) -> TableMention {
        TableMention {
            table: 0,
            kind: TableMentionKind::SingleCell,
            cells: vec![cells],
            value,
            unnormalized: value,
            raw: raw.into(),
            unit: Unit::None,
            precision: 0,
            orientation: None,
        }
    }

    #[test]
    fn vector_has_twelve_features() {
        let (_, ms, ctx) = setup();
        let t = single((2, 1), 38.0, "38");
        let v = feature_vector(&ms[1], &t, &ctx);
        assert_eq!(v.len(), FEATURE_COUNT);
    }

    #[test]
    fn exact_value_match_beats_mismatch() {
        let (_, ms, ctx) = setup();
        let right = single((2, 1), 38.0, "38");
        let wrong = single((1, 1), 35.0, "35");
        let v_right = feature_vector(&ms[1], &right, &ctx);
        let v_wrong = feature_vector(&ms[1], &wrong, &ctx);
        // f1 surface and f6 value distance both favor the right cell
        assert!(v_right[0] > v_wrong[0]);
        assert!(v_right[5] < v_wrong[5]);
        // context: "depression" appears in the right cell's row
        assert!(v_right[1] > v_wrong[1]);
    }

    #[test]
    fn relative_difference_properties() {
        assert_eq!(relative_difference(0.0, 0.0), 0.0);
        assert_eq!(relative_difference(10.0, 10.0), 0.0);
        assert!((relative_difference(37000.0, 36900.0) - 100.0 / 37000.0).abs() < 1e-12);
        assert_eq!(relative_difference(-1.0, 1.0), 2.0);
        assert_eq!(relative_difference(5.0, 0.0), 1.0);
    }

    #[test]
    fn unit_match_degrees() {
        use MatchDegree::*;
        let usd = Unit::Currency(Currency::Usd);
        let eur = Unit::Currency(Currency::Eur);
        assert_eq!(unit_match(usd, usd), StrongMatch);
        assert_eq!(unit_match(usd, eur), StrongMismatch);
        assert_eq!(unit_match(Unit::None, Unit::None), WeakMatch);
        assert_eq!(unit_match(usd, Unit::None), WeakMismatch);
        assert_eq!(unit_match(Unit::None, Unit::Percent), WeakMismatch);
    }

    #[test]
    fn aggregate_match_feature() {
        let (_, ms, ctx) = setup();
        // Mention 0 ("total of 123") infers Sum.
        let sum_target = TableMention {
            kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Sum),
            cells: vec![(1, 1), (2, 1)],
            value: 73.0,
            unnormalized: 73.0,
            raw: "sum".into(),
            orientation: Some(briq_table::Orientation::Column(1)),
            ..single((1, 1), 73.0, "73")
        };
        let diff_target = TableMention {
            kind: TableMentionKind::Aggregate(briq_text::AggregationKind::Difference),
            ..sum_target.clone()
        };
        let v_sum = feature_vector(&ms[0], &sum_target, &ctx);
        let v_diff = feature_vector(&ms[0], &diff_target, &ctx);
        assert_eq!(v_sum[11], MatchDegree::StrongMatch.encode());
        assert_eq!(v_diff[11], MatchDegree::StrongMismatch.encode());
    }

    #[test]
    fn format_value_trims() {
        assert_eq!(format_value(123.0), "123");
        assert_eq!(format_value(1.5), "1.5");
        assert_eq!(format_value(1.5730000), "1.573");
        assert_eq!(format_value(-70.0), "-70");
    }

    #[test]
    fn mask_zeroes_groups() {
        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: false,
            context: true,
            quantity: true,
        };
        m.apply(&mut v);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 2.0);

        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: true,
            context: false,
            quantity: true,
        };
        m.apply(&mut v);
        assert_eq!(v[0], 1.0);
        for i in [1, 2, 3, 4, 10, 11] {
            assert_eq!(v[i], 0.0, "f{} should be masked", i + 1);
        }
        for i in [5, 6, 7, 8, 9] {
            assert_ne!(v[i], 0.0);
        }

        let mut v: Vec<f64> = (1..=12).map(|i| i as f64).collect();
        let m = FeatureMask {
            surface: true,
            context: true,
            quantity: false,
        };
        m.apply(&mut v);
        for i in [5, 6, 7, 8, 9] {
            assert_eq!(v[i], 0.0);
        }
    }
}

briq_json::json_struct!(FeatureMask {
    surface,
    context,
    quantity
});
