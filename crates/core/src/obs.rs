//! Observability: hierarchical spans, a metrics registry, and exporters
//! (DESIGN.md §11).
//!
//! Three pieces, all std-only:
//!
//! * **Spans** — a [`Recorder`] collects a per-document trace tree of
//!   named, wall-clocked spans via RAII guards (`span!(rec, "classify",
//!   mention = mi)`). Recorders are strictly per-worker (one per document
//!   on the batch pool), so recording is lock-free; the batch engine
//!   merges the finished [`DocTrace`]s at the end, in input order, which
//!   makes the merged *structure* deterministic for every worker count.
//! * **Metrics** — a [`MetricsRegistry`] of named monotonic counters and
//!   base-2 log-scale [`Histogram`]s. Every span close also feeds a
//!   `span_<name>_s` latency histogram, so per-stage latency
//!   distributions come for free. The registry subsumes the ad-hoc
//!   [`StageTimings`](crate::batch::StageTimings) /
//!   [`FilterStats`](crate::filtering::FilterStats) fields via
//!   [`MetricsRegistry::absorb_timings`] and
//!   [`FilterStats::record_into`](crate::filtering::FilterStats::record_into).
//! * **Exporters** — [`MetricsRegistry::to_jsonl`] (one JSON object per
//!   metric), [`chrome_trace_json`] (a Chrome `trace_event` file loadable
//!   in `chrome://tracing` or <https://ui.perfetto.dev>), and
//!   [`MetricsRegistry::summary_table`] (plain text for terminals).
//!
//! ## The disabled path
//!
//! [`Recorder::disabled`] is the default everywhere. A disabled recorder
//! holds no buffer at all (`inner: None`), so every instrumentation call
//! is one branch and zero allocation — the instrumented pipeline build
//! produces byte-identical alignments with observability on or off, and
//! stays within noise on `BENCH_throughput.json` when it is off. CI's
//! determinism stage byte-compares a traced run against an untraced one
//! to hold that contract on real output.
//!
//! ## Canonical metric names
//!
//! Stable names live in [`names`]; DESIGN.md §11 documents every name,
//! its unit, and the stage that emits it. Use the constants, not string
//! literals, so the docs and the code cannot drift apart.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use briq_json::Value;

/// Canonical metric and span names (DESIGN.md §11 is the reference).
pub mod names {
    /// Counter: mention/target pairs entering the classify stage.
    pub const PAIRS_SCORED: &str = "pairs_scored";
    /// Counter: pairs answered from the scoring engine's unique-row
    /// dedup cache instead of a fresh forest/heuristic evaluation.
    pub const ROWS_DEDUPED: &str = "rows_deduped";
    /// Counter: pairs whose forest traversal an exact score bound cut
    /// short (their filtering outcome needed no computed score).
    pub const PAIRS_PRUNED: &str = "pairs_pruned";
    /// Counter: candidate pairs surfaced by the retrieval index
    /// (`crate::retrieval`); absent on exhaustive (`BRIQ_NO_INDEX=1`)
    /// runs.
    pub const RETRIEVAL_CANDIDATES: &str = "retrieval_candidates";
    /// Counter: pairs the retrieval index proved non-viable and never
    /// featurized or scored.
    pub const RETRIEVAL_PAIRS_DROPPED: &str = "retrieval_pairs_dropped";
    /// Histogram: retrieved candidate-set size per mention (unit:
    /// pairs).
    pub const RETRIEVAL_CANDIDATES_PER_MENTION: &str = "retrieval_candidates_per_mention";
    /// Counter: rows fully scored in the engine's exhaustive phase A.
    pub const ROWS_SCORED_EXHAUSTIVE: &str = "rows_scored_exhaustive";
    /// Counter: deferred rows fully scored by the bounded phase-B kernel
    /// (their bound never proved them prunable).
    pub const ROWS_SCORED_BOUNDED: &str = "rows_scored_bounded";
    /// Counter: text mentions extracted.
    pub const MENTIONS: &str = "mentions";
    /// Counter: table mentions (single + virtual cells) generated.
    pub const TARGETS: &str = "targets";
    /// Counter: candidate pairs surviving adaptive filtering.
    pub const CANDIDATES_KEPT: &str = "candidates_kept";
    /// Counter prefix: pairs seen by filtering, per target kind
    /// (`filter_total.<kind>`).
    pub const FILTER_TOTAL_PREFIX: &str = "filter_total.";
    /// Counter prefix: pairs kept by filtering, per target kind
    /// (`filter_kept.<kind>`).
    pub const FILTER_KEPT_PREFIX: &str = "filter_kept.";
    /// Counter: random walks attempted during resolution.
    pub const RWR_WALKS: &str = "rwr_walks";
    /// Counter: walks that failed outright and fell back to prior-score
    /// ranking.
    pub const RWR_FALLBACKS: &str = "rwr_fallbacks";
    /// Counter: walks that stopped at the iteration cap unconverged.
    pub const RWR_NOT_CONVERGED: &str = "rwr_not_converged";
    /// Histogram: power iterations per random walk (unit: iterations).
    pub const RWR_ITERATIONS: &str = "rwr_iterations";
    /// Counter: total power-iteration matvec passes executed by the
    /// resolution walk kernel (each iteration is one sparse or dense
    /// matvec over the whole graph). Comparable across the CSR fast
    /// path and the `BRIQ_NO_CSR=1` dense oracle — the kernels iterate
    /// in lockstep by the bit-equality contract (DESIGN.md §14).
    pub const RWR_MATVEC_ITERATIONS: &str = "rwr_matvec_iterations";
    /// Counter: structural non-zero slots of the CSR graph frozen for
    /// resolution (directed half-edges; weight-zeroed slots still
    /// count). Absent on `BRIQ_NO_CSR=1` / `use_csr: false` runs.
    pub const CSR_NNZ: &str = "csr_nnz";
    /// Histogram: approximate heap bytes retained by the per-worker
    /// document arena (pooled scoring/retrieval/walk scratch) observed
    /// after each document (unit: bytes).
    pub const ARENA_BYTES_PEAK: &str = "arena_bytes_peak";
    /// Counter: alignments emitted.
    pub const ALIGNMENTS: &str = "alignments";
    /// Counter: diagnostics whose degraded action was `Truncated` — a
    /// [`Budget`](crate::error::Budget) cap was hit somewhere.
    pub const BUDGET_EXHAUSTIONS: &str = "budget_exhaustions";
    /// Counter: documents processed (batch level).
    pub const DOCUMENTS: &str = "documents";
    /// Counter: documents that degraded somewhere (batch level).
    pub const DEGRADED_DOCUMENTS: &str = "degraded_documents";
    /// Counter: requests/documents cancelled cooperatively (deadline or
    /// shutdown drain) with all partial work discarded.
    pub const CANCELLATIONS: &str = "cancellations";

    /// Counter: documents served verbatim from the alignment store
    /// (full fingerprint hit — classify/filter/resolve skipped).
    pub const STORE_HITS: &str = "store_hits";
    /// Counter: store entries found but invalidated by a fingerprint
    /// change and replaced by an incremental re-alignment.
    pub const STORE_INVALIDATIONS: &str = "store_invalidations";
    /// Counter: mentions that re-ran classify/filter through the store
    /// path (dirty + new + all mentions of cold documents).
    pub const MENTIONS_REALIGNED: &str = "mentions_realigned";
    /// Histogram: high-water estimated resident bytes of the alignment
    /// store, observed after each insertion (unit: bytes).
    pub const STORE_BYTES_PEAK: &str = "store_bytes_peak";
    /// Counter: store entries evicted to stay under the configured
    /// memory budget (LRU order; see DESIGN.md §16).
    pub const STORE_EVICTIONS: &str = "store_evictions";
    /// Counter: store entries recovered from the on-disk snapshot +
    /// novelty log when a persistent store was opened.
    pub const STORE_RECOVERED_ENTRIES: &str = "store_recovered_entries";
    /// Histogram: size in bytes of the persistent store's novelty log,
    /// observed after each append (unit: bytes).
    pub const STORE_LOG_BYTES: &str = "store_log_bytes";
    /// Histogram: size in bytes of the persistent store's current
    /// compacted snapshot (unit: bytes).
    pub const STORE_SNAPSHOT_BYTES: &str = "store_snapshot_bytes";
    /// Counter: compacting snapshots written by the persistent store
    /// (threshold-triggered plus explicit drain/warm-up snapshots).
    pub const STORE_COMPACTIONS: &str = "store_compactions";

    /// Counter: align requests admitted by `briq-serve` (sheds excluded).
    pub const SERVE_REQUESTS: &str = "serve_requests";
    /// Counter: align requests shed by admission control (queue full or
    /// draining) with a structured `shed` response.
    pub const SERVE_SHED: &str = "serve_shed";
    /// Counter: requests whose wall-clock deadline passed before or
    /// during alignment; answered with a `deadline` response.
    pub const SERVE_DEADLINE_MISSES: &str = "serve_deadline_misses";
    /// Counter: request lines that were not valid JSON objects.
    pub const SERVE_MALFORMED: &str = "serve_malformed";
    /// Counter: request lines larger than the configured byte cap; the
    /// connection is closed after a structured error response.
    pub const SERVE_OVERSIZED: &str = "serve_oversized";
    /// Counter: requests whose worker panicked; isolated to an `error`
    /// response, the worker pool survives.
    pub const SERVE_PANICS: &str = "serve_panics";
    /// Counter: connections accepted.
    pub const SERVE_CONNECTIONS: &str = "serve_connections";
    /// Counter: connections refused at the connection cap.
    pub const SERVE_CONNECTIONS_REFUSED: &str = "serve_connections_refused";
    /// Counter: response writes that failed (client gone / write timeout).
    pub const SERVE_WRITE_ERRORS: &str = "serve_write_errors";
    /// Counter: admitted requests that completed with degradation
    /// diagnostics (the exit-code-2 analogue on the wire).
    pub const SERVE_DEGRADED: &str = "serve_degraded";
    /// Histogram: admission-queue depth observed at each enqueue.
    pub const SERVE_QUEUE_DEPTH: &str = "serve_queue_depth";
    /// Histogram: seconds a request waited in the admission queue.
    pub const SERVE_QUEUE_WAIT_S: &str = "serve_queue_wait_s";
    /// Histogram: end-to-end seconds per admitted request (dequeue to
    /// response written).
    pub const SERVE_REQUEST_S: &str = "serve_request_s";

    /// Counter: labeled training examples built (positives + negatives).
    pub const TRAIN_EXAMPLES_BUILT: &str = "train_examples_built";
    /// Counter: positive training examples built.
    pub const TRAIN_POSITIVES: &str = "train_positives";
    /// Counter: synthetic corpus documents generated.
    pub const CORPUS_DOCUMENTS: &str = "corpus_documents";
    /// Counter: tables across the generated corpus.
    pub const CORPUS_TABLES: &str = "corpus_tables";
    /// Counter: gold alignments across the generated corpus.
    pub const CORPUS_GOLD: &str = "corpus_gold_alignments";
    /// Counter: documents evaluated by `briq-eval`.
    pub const EVAL_DOCUMENTS: &str = "eval_documents";

    /// Span: one whole document through the alignment pipeline.
    pub const SPAN_ALIGN: &str = "align";
    /// Span: mention extraction, context building, virtual cells.
    pub const SPAN_EXTRACT: &str = "extract";
    /// Span: classifier scoring of one mention's candidate rows.
    pub const SPAN_CLASSIFY: &str = "classify";
    /// Span: adaptive filtering of one mention's scored candidates.
    pub const SPAN_FILTER: &str = "filter";
    /// Span: candidate alignment-graph construction.
    pub const SPAN_GRAPH: &str = "graph";
    /// Span: entropy-ordered random-walk resolution.
    pub const SPAN_RESOLVE: &str = "resolve";
    /// Span: whole training run (examples + forest + tagger).
    pub const SPAN_TRAIN: &str = "train";
    /// Span: training-example construction (§VII-B sampling).
    pub const SPAN_TRAIN_EXAMPLES: &str = "train_examples";
    /// Span: pair-classifier forest training.
    pub const SPAN_TRAIN_FOREST: &str = "train_forest";
    /// Span: mention-tagger training.
    pub const SPAN_TRAIN_TAGGER: &str = "train_tagger";
    /// Span: synthetic corpus generation.
    pub const SPAN_GEN_CORPUS: &str = "gen_corpus";
    /// Span: one evaluation pass over a document set.
    pub const SPAN_EVAL: &str = "evaluate";

    /// The latency histogram fed automatically when a span named `name`
    /// closes: `span_<name>_s` (unit: seconds).
    pub fn span_histogram(name: &str) -> String {
        format!("span_{name}_s")
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Number of base-2 log-scale buckets per histogram.
const HIST_BUCKETS: usize = 96;
/// Exponent of the lower bound of bucket 1 (bucket 0 additionally absorbs
/// zero and sub-range values): bucket `i >= 1` covers
/// `[2^(MIN_EXP+i-1), 2^(MIN_EXP+i))`.
const HIST_MIN_EXP: i32 = -40;

/// A base-2 log-scale histogram: 96 buckets spanning roughly `1e-12` to
/// `4e16`, enough for latencies in seconds on one end and iteration or
/// pair counts on the other. Observation is O(1); merging is bucket-wise
/// addition, so merged results are independent of merge order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

/// Bucket index of a value: 0 for non-positive or sub-range values, else
/// the clamped floor of its base-2 exponent.
fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let e = v.log2().floor() as i32;
    (e - HIST_MIN_EXP + 1).clamp(0, HIST_BUCKETS as i32 - 1) as usize
}

/// Lower bound of bucket `i` (0 for the catch-all bucket 0).
fn bucket_lo(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        2f64.powi(HIST_MIN_EXP + i as i32 - 1)
    }
}

/// Exclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> f64 {
    2f64.powi(HIST_MIN_EXP + i as i32)
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest finite observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 || !self.min.is_finite() {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest finite observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 || !self.max.is_finite() {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Mean of all finite observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the geometric midpoint of
    /// the first bucket whose cumulative count reaches `q · count`,
    /// clamped to the observed `[min, max]`. Resolution is one octave —
    /// good enough to tell a 2 ms stage from a 200 ms one, which is what
    /// the log-scale layout buys for O(1) memory.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum as f64 >= target {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i);
                let mid = if lo > 0.0 { (lo * hi).sqrt() } else { hi / 2.0 };
                return mid.clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Merge another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower bound, upper bound, count)` triples,
    /// in ascending value order.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lo(i), bucket_hi(i), n))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Named monotonic counters and log-scale histograms. Keys are ordered
/// (`BTreeMap`), so every export is deterministic given the same inputs;
/// merging is commutative addition, so batch-level registries do not
/// depend on worker scheduling.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `n` to counter `name`. The counter materializes on first
    /// call even when `n` is zero, so headline counters that happen to
    /// be zero on a run (`pairs_pruned` on an untrained system,
    /// `budget_exhaustions` on a clean one) still show up in exports as
    /// an explicit `0` instead of silently missing.
    pub fn count(&mut self, name: &str, n: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&mut self, name: &str, v: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                let mut h = Histogram::default();
                h.observe(v);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram by name, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another registry into this one (counters add, histograms
    /// merge bucket-wise).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            self.count(k, v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Fold a legacy [`StageTimings`](crate::batch::StageTimings) into
    /// the registry: its pair counters become counters and its per-stage
    /// seconds become one observation each in the matching
    /// `span_<stage>_s` histogram. This is the migration path from the
    /// ad-hoc struct to the registry.
    pub fn absorb_timings(&mut self, t: &crate::batch::StageTimings) {
        self.count(names::PAIRS_SCORED, t.pairs_scored);
        self.count(names::ROWS_DEDUPED, t.rows_deduped);
        self.count(names::PAIRS_PRUNED, t.pairs_pruned);
        self.count(names::RETRIEVAL_CANDIDATES, t.candidates_retrieved);
        self.count(names::RETRIEVAL_PAIRS_DROPPED, t.pairs_skipped_retrieval);
        self.observe(&names::span_histogram(names::SPAN_EXTRACT), t.extract_s);
        self.observe(&names::span_histogram(names::SPAN_CLASSIFY), t.classify_s);
        self.observe(&names::span_histogram(names::SPAN_FILTER), t.filter_s);
        self.observe(&names::span_histogram(names::SPAN_RESOLVE), t.resolve_s);
    }

    /// Serialize as JSON Lines: one compact object per metric, counters
    /// first, then histograms, each group in name order. Histogram lines
    /// carry the summary statistics plus every non-empty bucket as
    /// `[lo, hi, count]`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let obj = Value::Object(vec![
                ("type".into(), Value::Str("counter".into())),
                ("name".into(), Value::Str(name.clone())),
                ("value".into(), Value::Num(*v as f64)),
            ]);
            out.push_str(&obj.to_string_compact());
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            let buckets = Value::Array(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(lo, hi, n)| {
                        Value::Array(vec![Value::Num(lo), Value::Num(hi), Value::Num(n as f64)])
                    })
                    .collect(),
            );
            let obj = Value::Object(vec![
                ("type".into(), Value::Str("histogram".into())),
                ("name".into(), Value::Str(name.clone())),
                ("count".into(), Value::Num(h.count() as f64)),
                ("sum".into(), Value::Num(h.sum())),
                ("min".into(), Value::Num(h.min())),
                ("max".into(), Value::Num(h.max())),
                ("mean".into(), Value::Num(h.mean())),
                ("p50".into(), Value::Num(h.quantile(0.50))),
                ("p90".into(), Value::Num(h.quantile(0.90))),
                ("p99".into(), Value::Num(h.quantile(0.99))),
                ("buckets".into(), buckets),
            ]);
            out.push_str(&obj.to_string_compact());
            out.push('\n');
        }
        out
    }

    /// Plain-text summary: a counter table and a histogram table, for
    /// operators without a trace viewer at hand.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<32} {:>14}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<32} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(
                out,
                "{:<24} {:>8} {:>11} {:>11} {:>11} {:>11}",
                "histogram", "count", "mean", "p50", "p99", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{:<24} {:>8} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e}",
                    name,
                    h.count(),
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max()
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Spans and the recorder
// ---------------------------------------------------------------------------

/// One closed span of the trace tree: what ran, under which parent, when
/// (relative to the recorder's epoch), and for how long.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (one of the `SPAN_*` constants in [`names`]).
    pub name: &'static str,
    /// Index of the enclosing span within the same trace, if any.
    pub parent: Option<usize>,
    /// Static integer arguments (`span!(rec, "classify", mention = mi)`).
    pub args: Vec<(&'static str, i64)>,
    /// Start, in microseconds since the recorder's epoch.
    pub start_us: u64,
    /// Duration in microseconds (0 until the span closes).
    pub dur_us: u64,
}

/// The finished, plain-data trace of one document: the span tree (in
/// span-open order, parents before children) plus everything counted or
/// observed while the recorder was live.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DocTrace {
    /// Closed spans, in open order.
    pub spans: Vec<SpanRecord>,
    /// Counters and histograms recorded alongside the spans.
    pub metrics: MetricsRegistry,
}

/// Timing-free shape of one span as reported by [`DocTrace::structure`]:
/// `(depth, name, args)`.
pub type SpanShape = (usize, &'static str, Vec<(&'static str, i64)>);

impl DocTrace {
    /// The timing-free shape of the span tree: `(depth, name, args)` per
    /// span, in open order. Two runs of the same document must produce
    /// equal structures regardless of worker count or wall-clock — the
    /// determinism tests compare exactly this.
    pub fn structure(&self) -> Vec<SpanShape> {
        self.spans
            .iter()
            .map(|s| {
                let mut depth = 0;
                let mut p = s.parent;
                while let Some(i) = p {
                    depth += 1;
                    p = self.spans[i].parent;
                }
                (depth, s.name, s.args.clone())
            })
            .collect()
    }
}

struct Inner {
    epoch: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<usize>,
    metrics: MetricsRegistry,
}

/// Per-worker span and metrics recorder.
///
/// A recorder is either *disabled* — the default on every public
/// alignment entry point — or *enabled*. Disabled recorders hold no
/// buffer: every call is one branch and performs no allocation, so the
/// instrumented pipeline costs nothing when nobody is watching. Enabled
/// recorders buffer locally (interior mutability, single-threaded by
/// construction: one recorder per document per worker) and surrender
/// their data through [`Recorder::finish`].
pub struct Recorder {
    inner: Option<RefCell<Inner>>,
}

impl Recorder {
    /// The no-op recorder: one branch per call, zero allocation.
    pub const fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder whose span timestamps are relative to `now`.
    pub fn enabled() -> Recorder {
        Recorder::enabled_at(Instant::now())
    }

    /// A live recorder with an explicit epoch — the batch engine passes
    /// its batch-start instant so every document's spans share one
    /// timeline in the exported trace.
    pub fn enabled_at(epoch: Instant) -> Recorder {
        Recorder {
            inner: Some(RefCell::new(Inner {
                epoch,
                spans: Vec::new(),
                stack: Vec::new(),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// Is this recorder collecting anything?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span; it closes (and records its duration) when the
    /// returned guard drops. Prefer the [`span!`](crate::span) macro,
    /// which also attaches arguments.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_with(name, &[])
    }

    /// Open a span with static integer arguments.
    pub fn span_with(&self, name: &'static str, args: &[(&'static str, i64)]) -> SpanGuard<'_> {
        let Some(cell) = &self.inner else {
            return SpanGuard { rec: None, idx: 0 };
        };
        let Ok(mut inner) = cell.try_borrow_mut() else {
            return SpanGuard { rec: None, idx: 0 };
        };
        let idx = inner.spans.len();
        let parent = inner.stack.last().copied();
        let start_us = inner.epoch.elapsed().as_micros() as u64;
        inner.spans.push(SpanRecord {
            name,
            parent,
            args: args.to_vec(),
            start_us,
            dur_us: 0,
        });
        inner.stack.push(idx);
        SpanGuard {
            rec: Some(self),
            idx,
        }
    }

    fn exit(&self, idx: usize) {
        let Some(cell) = &self.inner else { return };
        let Ok(mut inner) = cell.try_borrow_mut() else {
            return;
        };
        let now_us = inner.epoch.elapsed().as_micros() as u64;
        // Close any children left open by an unwinding panic first.
        while let Some(&top) = inner.stack.last() {
            if top < idx {
                break;
            }
            inner.stack.pop();
            let span = &mut inner.spans[top];
            span.dur_us = now_us.saturating_sub(span.start_us);
            let name = span.name;
            let dur_s = span.dur_us as f64 / 1e6;
            inner.metrics.observe(&names::span_histogram(name), dur_s);
            if top == idx {
                break;
            }
        }
    }

    /// Add `n` to counter `name`.
    pub fn count(&self, name: &str, n: u64) {
        let Some(cell) = &self.inner else { return };
        if let Ok(mut inner) = cell.try_borrow_mut() {
            inner.metrics.count(name, n);
        }
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, v: f64) {
        let Some(cell) = &self.inner else { return };
        if let Ok(mut inner) = cell.try_borrow_mut() {
            inner.metrics.observe(name, v);
        }
    }

    /// Consume the recorder and return its trace — `None` if it was
    /// disabled. Spans still open (a guard leaked across a panic) are
    /// closed at the current instant.
    pub fn finish(self) -> Option<DocTrace> {
        let cell = self.inner?;
        let mut inner = cell.into_inner();
        let now_us = inner.epoch.elapsed().as_micros() as u64;
        while let Some(top) = inner.stack.pop() {
            let span = &mut inner.spans[top];
            span.dur_us = now_us.saturating_sub(span.start_us);
        }
        Some(DocTrace {
            spans: inner.spans,
            metrics: inner.metrics,
        })
    }
}

/// RAII guard returned by [`Recorder::span`]; records the span's duration
/// when dropped. Dropping out of order (a leaked guard) closes the
/// abandoned children too, so the trace tree stays well-formed.
#[must_use = "a span closes when its guard drops — bind it to a variable"]
pub struct SpanGuard<'a> {
    rec: Option<&'a Recorder>,
    idx: usize,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(rec) = self.rec {
            rec.exit(self.idx);
        }
    }
}

/// Open a hierarchical span on a [`Recorder`](crate::obs::Recorder):
///
/// ```
/// use briq_core::obs::Recorder;
/// use briq_core::span;
/// let rec = Recorder::enabled();
/// {
///     let _g = span!(rec, "classify", mention = 3);
///     // … work measured under the span …
/// }
/// let trace = rec.finish().unwrap();
/// assert_eq!(trace.spans[0].name, "classify");
/// assert_eq!(trace.spans[0].args, vec![("mention", 3)]);
/// ```
///
/// On a disabled recorder this is one branch and no allocation.
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $rec.span_with($name, &[$((stringify!($k), ($v) as i64)),+])
    };
}

// ---------------------------------------------------------------------------
// Chrome trace exporter
// ---------------------------------------------------------------------------

/// Export per-document traces as one Chrome `trace_event` JSON file
/// (loadable in `chrome://tracing` and Perfetto). Each document renders
/// as its own track (`tid` = batch index, labeled `doc <index>`); spans
/// become complete (`"ph": "X"`) events with microsecond timestamps
/// relative to the shared batch epoch. Documents appear in input order,
/// spans in open order, so the file's *structure* is deterministic.
pub fn chrome_trace_json(docs: &[(usize, &DocTrace)]) -> String {
    let mut events: Vec<Value> = Vec::new();
    events.push(Value::Object(vec![
        ("name".into(), Value::Str("process_name".into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::Num(0.0)),
        ("tid".into(), Value::Num(0.0)),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str("briq-align".into()))]),
        ),
    ]));
    for &(doc, trace) in docs {
        events.push(Value::Object(vec![
            ("name".into(), Value::Str("thread_name".into())),
            ("ph".into(), Value::Str("M".into())),
            ("pid".into(), Value::Num(0.0)),
            ("tid".into(), Value::Num(doc as f64)),
            (
                "args".into(),
                Value::Object(vec![("name".into(), Value::Str(format!("doc {doc}")))]),
            ),
        ]));
        for span in &trace.spans {
            let mut args: Vec<(String, Value)> = span
                .args
                .iter()
                .map(|&(k, v)| (k.to_string(), Value::Num(v as f64)))
                .collect();
            if !span.args.iter().any(|&(k, _)| k == "doc") {
                args.push(("doc".into(), Value::Num(doc as f64)));
            }
            events.push(Value::Object(vec![
                ("name".into(), Value::Str(span.name.into())),
                ("cat".into(), Value::Str("briq".into())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::Num(span.start_us as f64)),
                ("dur".into(), Value::Num(span.dur_us as f64)),
                ("pid".into(), Value::Num(0.0)),
                ("tid".into(), Value::Num(doc as f64)),
                ("args".into(), Value::Object(args)),
            ]));
        }
    }
    Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ])
    .to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        {
            let _g = span!(rec, "extract");
            rec.count("pairs_scored", 10);
            rec.observe("rwr_iterations", 5.0);
        }
        assert!(rec.finish().is_none());
    }

    #[test]
    fn spans_nest_and_time() {
        let rec = Recorder::enabled();
        {
            let _a = span!(rec, "align", doc = 7);
            {
                let _b = span!(rec, "extract");
            }
            {
                let _c = span!(rec, "classify", mention = 2);
            }
        }
        let t = rec.finish().expect("enabled recorder yields a trace");
        let shape = t.structure();
        assert_eq!(
            shape,
            vec![
                (0, "align", vec![("doc", 7)]),
                (1, "extract", vec![]),
                (1, "classify", vec![("mention", 2)]),
            ]
        );
        // Every closed span got a latency observation.
        for name in ["align", "extract", "classify"] {
            let h = t
                .metrics
                .histogram(&names::span_histogram(name))
                .unwrap_or_else(|| panic!("missing span histogram for {name}"));
            assert_eq!(h.count(), 1);
        }
        // Parent spans fully contain their children.
        let align = &t.spans[0];
        for child in &t.spans[1..] {
            assert!(child.start_us >= align.start_us);
            assert!(child.start_us + child.dur_us <= align.start_us + align.dur_us);
        }
    }

    #[test]
    fn leaked_guard_is_closed_at_finish() {
        let rec = Recorder::enabled();
        let g = span!(rec, "align");
        std::mem::forget(g);
        let t = rec.finish().expect("trace");
        assert_eq!(t.spans.len(), 1);
        // Closed by finish(), not left at zero forever — but a zero
        // duration is still possible on a fast machine, so just check
        // the structure is complete.
        assert_eq!(t.structure(), vec![(0, "align", vec![])]);
    }

    #[test]
    fn out_of_order_drop_closes_children() {
        let rec = Recorder::enabled();
        let a = span!(rec, "align");
        let b = span!(rec, "extract");
        std::mem::forget(b); // child leaked…
        drop(a); // …parent close sweeps it
        let t = rec.finish().expect("trace");
        assert_eq!(t.spans.len(), 2);
        assert_eq!(
            t.metrics
                .histogram(&names::span_histogram("extract"))
                .map(Histogram::count),
            Some(1),
            "leaked child must still be closed and observed"
        );
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        let mut h = Histogram::default();
        for v in [0.0, 1e-9, 0.001, 0.002, 0.5, 1.0, 1000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 1000.0);
        let buckets = h.nonzero_buckets();
        let total: u64 = buckets.iter().map(|&(_, _, n)| n).sum();
        assert_eq!(total, 7);
        for (lo, hi, _) in &buckets {
            assert!(lo < hi);
        }
        // 0.001 and 0.002 land in adjacent octaves.
        assert!(buckets.len() >= 5, "{buckets:?}");
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::default();
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0); // 0.001 ..= 1.0
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((0.25..=1.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= h.max());
        assert!(h.quantile(0.0) >= h.min());
        assert!(h.quantile(1.0) <= h.max());
        assert!((h.mean() - 0.5005).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [0.001, 0.2, 30.0] {
            a.observe(v);
            both.observe(v);
        }
        for v in [0.005, 7.0] {
            b.observe(v);
            both.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, both);
    }

    #[test]
    fn registry_counts_and_merges() {
        let mut a = MetricsRegistry::new();
        a.count(names::PAIRS_SCORED, 10);
        a.count(names::PAIRS_SCORED, 5);
        a.observe(names::RWR_ITERATIONS, 12.0);
        let mut b = MetricsRegistry::new();
        b.count(names::PAIRS_SCORED, 1);
        b.count(names::ROWS_DEDUPED, 2);
        b.observe(names::RWR_ITERATIONS, 40.0);
        a.merge(&b);
        assert_eq!(a.counter(names::PAIRS_SCORED), 16);
        assert_eq!(a.counter(names::ROWS_DEDUPED), 2);
        assert_eq!(a.counter("never_touched"), 0);
        let h = a.histogram(names::RWR_ITERATIONS).expect("histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 52.0);
    }

    #[test]
    fn zero_counts_materialize_as_explicit_zeros() {
        let mut r = MetricsRegistry::new();
        r.count(names::PAIRS_PRUNED, 0);
        assert_eq!(r.counter(names::PAIRS_PRUNED), 0);
        assert_eq!(
            r.counters().collect::<Vec<_>>(),
            vec![(names::PAIRS_PRUNED, 0)],
            "a touched counter exports an explicit zero"
        );
    }

    #[test]
    fn metrics_jsonl_is_valid_and_ordered() {
        let mut r = MetricsRegistry::new();
        r.count("b_counter", 2);
        r.count("a_counter", 1);
        r.observe("latency_s", 0.25);
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        // Counters first, name-ordered; histograms after.
        assert!(lines[0].contains("a_counter"), "{}", lines[0]);
        assert!(lines[1].contains("b_counter"), "{}", lines[1]);
        assert!(lines[2].contains("histogram"), "{}", lines[2]);
        for line in lines {
            let v = briq_json::parse(line).expect("each metrics line parses");
            assert!(v.get("name").is_some());
            assert!(v.get("type").is_some());
        }
    }

    #[test]
    fn absorb_timings_subsumes_stage_timings() {
        let t = crate::batch::StageTimings {
            extract_s: 0.5,
            classify_s: 1.5,
            filter_s: 0.25,
            resolve_s: 0.75,
            pairs_scored: 100,
            rows_deduped: 10,
            pairs_pruned: 5,
            candidates_retrieved: 60,
            pairs_skipped_retrieval: 40,
        };
        let mut r = MetricsRegistry::new();
        r.absorb_timings(&t);
        assert_eq!(r.counter(names::PAIRS_SCORED), 100);
        assert_eq!(r.counter(names::ROWS_DEDUPED), 10);
        assert_eq!(r.counter(names::PAIRS_PRUNED), 5);
        assert_eq!(r.counter(names::RETRIEVAL_CANDIDATES), 60);
        assert_eq!(r.counter(names::RETRIEVAL_PAIRS_DROPPED), 40);
        let h = r
            .histogram(&names::span_histogram(names::SPAN_CLASSIFY))
            .expect("classify histogram");
        assert_eq!(h.sum(), 1.5);
    }

    #[test]
    fn summary_table_mentions_every_metric() {
        let mut r = MetricsRegistry::new();
        r.count(names::PAIRS_SCORED, 42);
        r.observe(names::RWR_ITERATIONS, 17.0);
        let table = r.summary_table();
        assert!(table.contains(names::PAIRS_SCORED), "{table}");
        assert!(table.contains(names::RWR_ITERATIONS), "{table}");
        assert!(table.contains("42"), "{table}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let rec = Recorder::enabled();
        {
            let _a = span!(rec, "align", doc = 0);
            let _b = span!(rec, "extract");
        }
        let t = rec.finish().expect("trace");
        let json = chrome_trace_json(&[(0, &t)]);
        let v = briq_json::parse(&json).expect("chrome trace parses");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // process_name + thread_name + two spans.
        assert_eq!(events.len(), 4);
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in complete {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert_eq!(
                e.get("args")
                    .and_then(|a| a.get("doc"))
                    .and_then(Value::as_f64),
                Some(0.0)
            );
        }
    }
}
