//! The CSR walk kernel's equivalence contract (DESIGN.md §14): on any
//! graph — connected or not, with or without interleaved edge deletions —
//! [`CsrGraph::walk_into`] returns the **bit-identical** distribution and
//! convergence report of the dense adjacency walk, and both agree with
//! `solve.rs`'s exact linear solution within the iteration tolerance.

use briq_graph::csr::{random_walk_with_restart_csr, CsrGraph, CsrScratch};
use briq_graph::solve::exact_rwr;
use briq_graph::{try_random_walk_with_restart, Graph, RwrConfig};
use proptest::prelude::*;

/// A random weighted graph that is *not* forced connected: isolated
/// nodes and disconnected components arise naturally from the sparse
/// edge sample.
fn sparse_graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..14).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.05f64..8.0), 0..24).prop_map(move |edges| {
            let mut g = Graph::new(n);
            for (a, b, w) in edges {
                g.add_edge(a, b, w);
            }
            g
        })
    })
}

/// A connected graph (spanning chain + extra edges) for the exact-solver
/// comparison, which needs enough structure for interesting walks.
fn connected_graph_strategy() -> impl Strategy<Value = Graph> {
    (3usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 2..30).prop_map(move |edges| {
            let mut g = Graph::new(n);
            for i in 1..n {
                g.add_edge(i - 1, i, 1.0);
            }
            for (a, b, w) in edges {
                g.add_edge(a, b, w);
            }
            g
        })
    })
}

fn assert_bit_equal(dense: &[f64], sparse: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(dense.len(), sparse.len());
    for (i, (a, b)) in dense.iter().zip(sparse).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "node {}: dense {} vs csr {}",
            i,
            a,
            b
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CSR vs dense: bit-identical distribution and identical report on
    /// arbitrary sparse graphs (disconnected components and isolated
    /// start nodes included) from every start node.
    #[test]
    fn csr_walk_bit_equals_dense(g in sparse_graph_strategy(), restart in 0.05f64..0.9) {
        let cfg = RwrConfig { restart, ..Default::default() };
        let csr = CsrGraph::from_graph(&g);
        let mut scratch = CsrScratch::default();
        for start in 0..g.len() {
            let (dense, dense_report) =
                try_random_walk_with_restart(&g, start, &cfg).unwrap();
            let report = csr.walk_into(start, &cfg, &mut scratch).unwrap();
            assert_bit_equal(&dense, scratch.distribution())?;
            prop_assert_eq!(dense_report, report);
        }
    }

    /// Edge deletion equivalence: zeroing CSR weights tracks dense
    /// `remove_edge` bit-for-bit through an arbitrary interleaved
    /// deletion sequence — the exact mutation pattern Algorithm 1
    /// performs between walks.
    #[test]
    fn csr_zeroing_tracks_dense_removal(
        g in sparse_graph_strategy(),
        deletions in proptest::collection::vec((0usize..14, 0usize..14), 1..10),
        restart in 0.05f64..0.9,
    ) {
        let cfg = RwrConfig { restart, ..Default::default() };
        let mut dense_g = g.clone();
        let mut csr = CsrGraph::from_graph(&g);
        let mut scratch = CsrScratch::default();
        for (a, b) in deletions {
            let (a, b) = (a % g.len(), b % g.len());
            let dense_removed = dense_g.remove_edge(a, b);
            let csr_removed = csr.zero_edge(a, b);
            prop_assert_eq!(dense_removed, csr_removed, "edge {} - {}", a, b);
            // Walk from every node after each deletion: still bit-equal.
            for start in 0..g.len() {
                let (dense, _) =
                    try_random_walk_with_restart(&dense_g, start, &cfg).unwrap();
                csr.walk_into(start, &cfg, &mut scratch).unwrap();
                assert_bit_equal(&dense, scratch.distribution())?;
            }
        }
    }

    /// CSR vs the exact dense linear solution: the iterative CSR walk
    /// converges to solve.rs's reference within tolerance.
    #[test]
    fn csr_walk_matches_exact_solver(
        g in connected_graph_strategy(),
        start_frac in 0.0f64..1.0,
    ) {
        let start = ((g.len() - 1) as f64 * start_frac) as usize;
        let cfg = RwrConfig { restart: 0.2, tolerance: 1e-12, max_iterations: 500 };
        let csr = CsrGraph::from_graph(&g);
        let (p, _) = random_walk_with_restart_csr(&csr, start, &cfg).unwrap();
        let exact = exact_rwr(&g, start, 0.2).expect("solvable");
        for (a, b) in p.iter().zip(&exact) {
            prop_assert!((a - b).abs() < 1e-6, "csr {} vs exact {}", a, b);
        }
    }

    /// The CSR walk stays a probability distribution, even from isolated
    /// starts inside disconnected graphs.
    #[test]
    fn csr_walk_is_distribution(g in sparse_graph_strategy(), restart in 0.05f64..0.9) {
        let cfg = RwrConfig { restart, ..Default::default() };
        let csr = CsrGraph::from_graph(&g);
        let mut scratch = CsrScratch::default();
        for start in 0..g.len() {
            csr.walk_into(start, &cfg, &mut scratch).unwrap();
            let total: f64 = scratch.distribution().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-6, "sums to {}", total);
            prop_assert!(scratch.distribution().iter().all(|&x| x >= 0.0));
        }
    }
}

/// Deterministic spot checks the proptest generators may not hit.
#[test]
fn isolated_start_keeps_all_mass_on_csr() {
    let mut g = Graph::new(3);
    g.add_edge(0, 1, 1.0);
    let csr = CsrGraph::from_graph(&g);
    let (p, _) = random_walk_with_restart_csr(&csr, 2, &RwrConfig::default()).unwrap();
    assert!((p[2] - 1.0).abs() < 1e-9);
    assert_eq!(p[0], 0.0);
    assert_eq!(p[1], 0.0);
}

#[test]
fn fully_zeroed_graph_degenerates_like_dense() {
    let mut g = Graph::new(2);
    g.add_edge(0, 1, 1.0);
    let mut dense = g.clone();
    let mut csr = CsrGraph::from_graph(&g);
    dense.remove_edge(0, 1);
    csr.zero_edge(0, 1);
    let cfg = RwrConfig::default();
    let (d, _) = try_random_walk_with_restart(&dense, 0, &cfg).unwrap();
    let (s, _) = random_walk_with_restart_csr(&csr, 0, &cfg).unwrap();
    assert_eq!(
        d.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        s.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}
