//! Property-based tests for the graph substrate: the iterative walk must
//! agree with the exact linear solution on random graphs, and stationary
//! vectors must be probability distributions.

use briq_graph::solve::exact_rwr;
use briq_graph::{random_walk_with_restart, Graph, RwrConfig};
use proptest::prelude::*;

/// Strategy: a random connected-ish weighted graph.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (3usize..12).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 2..30).prop_map(move |edges| {
            let mut g = Graph::new(n);
            // spanning chain for connectivity
            for i in 1..n {
                g.add_edge(i - 1, i, 1.0);
            }
            for (a, b, w) in edges {
                g.add_edge(a, b, w);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// π is a probability distribution over nodes.
    #[test]
    fn rwr_is_distribution(g in graph_strategy(), restart in 0.05f64..0.9) {
        let cfg = RwrConfig { restart, ..Default::default() };
        let p = random_walk_with_restart(&g, 0, &cfg);
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "sums to {total}");
        prop_assert!(p.iter().all(|&x| (-1e-12..=1.0 + 1e-9).contains(&x)));
    }

    /// Iterative power iteration matches the exact dense solution.
    #[test]
    fn rwr_matches_exact_solver(g in graph_strategy(), start_frac in 0.0f64..1.0) {
        let start = ((g.len() - 1) as f64 * start_frac) as usize;
        let cfg = RwrConfig { restart: 0.2, tolerance: 1e-12, max_iterations: 500 };
        let iterative = random_walk_with_restart(&g, start, &cfg);
        let exact = exact_rwr(&g, start, 0.2).expect("solvable");
        for (a, b) in iterative.iter().zip(&exact) {
            prop_assert!((a - b).abs() < 1e-6, "iter {a} vs exact {b}");
        }
    }

    /// The start node always keeps at least the restart mass.
    #[test]
    fn start_retains_restart_mass(g in graph_strategy(), restart in 0.1f64..0.9) {
        let cfg = RwrConfig { restart, ..Default::default() };
        let p = random_walk_with_restart(&g, 0, &cfg);
        prop_assert!(p[0] >= restart - 1e-6, "p0 {} restart {restart}", p[0]);
    }

    /// Removing an edge never increases the edge count and keeps the walk
    /// valid (Algorithm 1 deletes edges after every decision).
    #[test]
    fn edge_removal_keeps_walk_valid(g in graph_strategy()) {
        let mut g = g;
        let before = g.edge_count();
        // remove the chain edge 0-1 (always present)
        prop_assert!(g.remove_edge(0, 1));
        prop_assert_eq!(g.edge_count(), before - 1);
        let p = random_walk_with_restart(&g, 0, &RwrConfig::default());
        let total: f64 = p.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Edge weights accumulate commutatively.
    #[test]
    fn edge_accumulation_commutes(w1 in 0.1f64..5.0, w2 in 0.1f64..5.0) {
        let mut a = Graph::new(2);
        a.add_edge(0, 1, w1);
        a.add_edge(0, 1, w2);
        let mut b = Graph::new(2);
        b.add_edge(1, 0, w2);
        b.add_edge(0, 1, w1);
        prop_assert_eq!(a.edge_weight(0, 1), b.edge_weight(1, 0));
    }
}
