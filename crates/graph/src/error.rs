//! Error taxonomy for the graph substrate.

use std::fmt;

/// Errors from graph construction and random walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id was outside the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        len: usize,
    },
    /// An edge insertion would exceed an imposed edge budget.
    EdgeBudgetExceeded {
        /// The budget that was hit.
        max_edges: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for graph of {len} nodes")
            }
            GraphError::EdgeBudgetExceeded { max_edges } => {
                write!(f, "edge budget of {max_edges} edges exceeded")
            }
        }
    }
}

impl std::error::Error for GraphError {}
