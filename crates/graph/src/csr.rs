//! CSR (compressed sparse row) kernel for random walks with restart.
//!
//! [`crate::rwr::try_random_walk_with_restart`] rebuilds a
//! `Vec<Vec<(usize, f64)>>` of normalized transitions for every walk —
//! one heap allocation per node per walk, scattered across the heap, on
//! the hottest loop of resolution. [`CsrGraph`] re-lays the adjacency
//! structure once into three flat arrays (row offsets, column indices,
//! weights) so every power iteration is one cache-friendly sparse
//! matvec over contiguous memory, and the per-walk scratch
//! ([`CsrScratch`]) is reused across walks with zero steady-state
//! allocation.
//!
//! # Bit-equality contract
//!
//! [`CsrGraph::walk_into`] is **bit-identical** to the dense walk on the
//! same graph, including after edge deletions, because every floating
//! point expression is evaluated in the same shape and order:
//!
//! * neighbor order: [`CsrGraph::from_graph`] copies each adjacency list
//!   in order, so per-row summation and spreading visit neighbors in
//!   exactly the dense sequence;
//! * edge deletion: [`CsrGraph::zero_edge`] sets the weight to `0.0`
//!   instead of compacting the row. Row totals are unchanged bit-for-bit
//!   (`w1 + 0.0 + w3` performs `(w1 + 0.0) + w3 = w1 + w3` exactly for
//!   the non-negative weights the graph admits), and a zeroed slot
//!   contributes `spread * (0.0 / total) = 0.0` to a non-negative
//!   accumulator, which is the identity;
//! * normalization: transition probabilities are `w / total` with
//!   `total` summed left to right — the exact expressions of
//!   [`crate::graph::Graph::transitions`] /
//!   [`crate::graph::Graph::weight_sum`]. They are computed once at
//!   build time and kept current by [`CsrGraph::zero_edge`], which
//!   renormalizes exactly the two affected rows with the same
//!   left-to-right loop (zeroed slots contribute `+ 0.0`, the f64
//!   identity on the non-negative totals the graph admits), so a walk
//!   pays no per-walk normalization at all;
//! * the power iteration itself (mass skip, dangling teleport,
//!   `next[start] += c + dangling`, L∞ residual, buffer swap) is copied
//!   from `rwr.rs` line for line.
//!
//! `crates/graph/tests/csr_equivalence.rs` proves the contract by
//! proptest over random graphs, disconnected components, isolated start
//! nodes, and interleaved edge-deletion sequences.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::rwr::{ConvergenceReport, RwrConfig};

/// A [`Graph`] frozen into compressed-sparse-row form for walk kernels.
///
/// Rows are nodes; `row_offsets[v]..row_offsets[v + 1]` indexes the
/// neighbors of `v` in `col_idx` / `weights`, in the graph's adjacency
/// order. The structure is immutable after construction except for
/// [`CsrGraph::zero_edge`], which models Algorithm 1's edge deletion by
/// weight-zeroing (the structural slot stays, its mass goes to zero).
#[derive(Debug, Clone)]
pub struct CsrGraph {
    row_offsets: Vec<usize>,
    col_idx: Vec<u32>,
    weights: Vec<f64>,
    /// Interleaved kernel slots `(column, transition probability)` —
    /// probability is `w / row total`, maintained eagerly so walks never
    /// renormalize. One contiguous stream for the whole matrix, so the
    /// matvec reads a single prefetch-friendly sequence (the dense walk
    /// chases one heap allocation per node). Slots of a zero-total row
    /// are stale-but-unread: the walk treats such rows as dangling.
    slots: Vec<(u32, f64)>,
    /// Per-row weight totals (`<= 0.0` = dangling row).
    row_total: Vec<f64>,
}

impl CsrGraph {
    /// Freeze `graph` into CSR form, preserving adjacency order.
    pub fn from_graph(graph: &Graph) -> CsrGraph {
        let n = graph.len();
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut weights = Vec::new();
        row_offsets.push(0);
        for v in 0..n {
            for &(u, w) in graph.neighbors(v) {
                debug_assert!(u <= u32::MAX as usize, "node id exceeds the u32 layout");
                col_idx.push(u as u32);
                weights.push(w);
            }
            row_offsets.push(col_idx.len());
        }
        let nnz = col_idx.len();
        let mut csr = CsrGraph {
            row_offsets,
            col_idx,
            weights,
            slots: vec![(0, 0.0); nnz],
            row_total: vec![0.0; n],
        };
        for v in 0..n {
            csr.renormalize_row(v);
        }
        csr
    }

    /// Recompute one row's total and transition probabilities — the CSR
    /// image of [`crate::graph::Graph::transitions`]: total summed left
    /// to right over every structural slot (zeroed slots add `+ 0.0`,
    /// exact on non-negative weights), probabilities as `w / total`. A
    /// zero-total row keeps its stale `prob` slots; the walk never reads
    /// them (the row is dangling).
    fn renormalize_row(&mut self, v: usize) {
        let (s, e) = (self.row_offsets[v], self.row_offsets[v + 1]);
        let mut total = 0.0f64;
        for i in s..e {
            total += self.weights[i];
        }
        self.row_total[v] = total;
        if total > 0.0 {
            for i in s..e {
                self.slots[i] = (self.col_idx[i], self.weights[i] / total);
            }
        }
    }

    /// Number of nodes (rows).
    pub fn len(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural non-zero slots (directed half-edges at build time;
    /// zeroed slots still count — they occupy layout, not mass). Feeds
    /// the `csr_nnz` observability counter.
    pub fn nnz(&self) -> usize {
        self.weights.len()
    }

    /// Delete the undirected edge `a – b` by zeroing its weight in both
    /// rows. Returns true when at least one slot held non-zero mass.
    /// Out-of-range endpoints are a no-op, matching
    /// [`Graph::remove_edge`]'s tolerance.
    pub fn zero_edge(&mut self, a: usize, b: usize) -> bool {
        let mut removed = false;
        for (from, to) in [(a, b), (b, a)] {
            if from >= self.len() {
                continue;
            }
            let (s, e) = (self.row_offsets[from], self.row_offsets[from + 1]);
            let mut touched = false;
            for i in s..e {
                if self.col_idx[i] as usize == to && self.weights[i] != 0.0 {
                    self.weights[i] = 0.0;
                    touched = true;
                }
            }
            if touched {
                self.renormalize_row(from);
                removed = true;
            }
        }
        removed
    }

    /// Current weight of edge `a – b` (`None` when absent or zeroed).
    pub fn edge_weight(&self, a: usize, b: usize) -> Option<f64> {
        if a >= self.len() {
            return None;
        }
        let (s, e) = (self.row_offsets[a], self.row_offsets[a + 1]);
        (s..e)
            .find(|&i| self.col_idx[i] as usize == b && self.weights[i] != 0.0)
            .map(|i| self.weights[i])
    }

    /// Random walk with restart on the CSR layout, writing the
    /// stationary distribution into `scratch` (read it back through
    /// [`CsrScratch::distribution`]). Bit-identical to
    /// [`crate::rwr::try_random_walk_with_restart`] on the equivalent
    /// [`Graph`] — see the module docs for the argument. Steady-state
    /// allocation-free: `scratch` buffers are resized once and reused.
    pub fn walk_into(
        &self,
        start: usize,
        cfg: &RwrConfig,
        scratch: &mut CsrScratch,
    ) -> Result<ConvergenceReport, GraphError> {
        let n = self.len();
        if start >= n {
            return Err(GraphError::NodeOutOfRange {
                node: start,
                len: n,
            });
        }
        let c = cfg.restart.clamp(1e-6, 1.0);

        scratch.p.clear();
        scratch.p.resize(n, 0.0);
        scratch.next.clear();
        scratch.next.resize(n, 0.0);
        scratch.p[start] = 1.0;
        let mut report = ConvergenceReport {
            iterations: 0,
            residual: f64::INFINITY,
            converged: false,
        };

        let CsrScratch { p, next } = scratch;
        for it in 0..cfg.max_iterations {
            next.iter_mut().for_each(|x| *x = 0.0);
            let mut dangling = 0.0;
            // The sparse matvec: next += (1 - c) · Pᵀ · p, with dangling
            // mass routed back to the start below. Rows come off the
            // offset windows and slots off zipped column/probability
            // slices, so the hot loop carries no bounds checks.
            for ((&mass, &total), w) in p
                .iter()
                .zip(&self.row_total)
                .zip(self.row_offsets.windows(2))
            {
                if mass <= 0.0 {
                    continue;
                }
                let spread = mass * (1.0 - c);
                if total <= 0.0 {
                    dangling += spread;
                } else {
                    for &(u, pr) in &self.slots[w[0]..w[1]] {
                        next[u as usize] += spread * pr;
                    }
                }
            }
            next[start] += c + dangling;

            let diff = p
                .iter()
                .zip(next.iter())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            std::mem::swap(p, next);
            report.iterations = it + 1;
            report.residual = diff;
            if diff < cfg.tolerance {
                report.converged = true;
                break;
            }
        }
        Ok(report)
    }
}

/// Reusable per-walk buffers for [`CsrGraph::walk_into`]. Construct once
/// (per worker / per document) and reuse: after the first walk on a
/// given graph shape no further heap allocation happens.
#[derive(Debug, Default)]
pub struct CsrScratch {
    /// Probability vector (the walk's result after `walk_into` returns).
    p: Vec<f64>,
    /// Double buffer for the power iteration.
    next: Vec<f64>,
}

impl CsrScratch {
    /// The stationary distribution computed by the last
    /// [`CsrGraph::walk_into`] call.
    pub fn distribution(&self) -> &[f64] {
        &self.p
    }

    /// Approximate heap bytes currently retained by the scratch buffers
    /// (feeds the `arena_bytes_peak` observability histogram).
    pub fn approx_bytes(&self) -> usize {
        (self.p.capacity() + self.next.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Allocating convenience wrapper: CSR walk returning a fresh
/// distribution vector, for callers without a long-lived scratch.
/// Bit-identical to [`crate::rwr::try_random_walk_with_restart`] on the
/// source graph.
pub fn random_walk_with_restart_csr(
    graph: &CsrGraph,
    start: usize,
    cfg: &RwrConfig,
) -> Result<(Vec<f64>, ConvergenceReport), GraphError> {
    let mut scratch = CsrScratch::default();
    let report = graph.walk_into(start, cfg, &mut scratch)?;
    Ok((scratch.p, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rwr::try_random_walk_with_restart;

    fn demo_graph() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 2.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 4.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(1, 4, 0.5);
        g
    }

    fn assert_bit_equal(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn csr_walk_is_bit_identical_to_dense() {
        let g = demo_graph();
        let csr = CsrGraph::from_graph(&g);
        let cfg = RwrConfig::default();
        for start in 0..g.len() {
            let (dense, dr) = try_random_walk_with_restart(&g, start, &cfg).unwrap();
            let (sparse, sr) = random_walk_with_restart_csr(&csr, start, &cfg).unwrap();
            assert_bit_equal(&dense, &sparse);
            assert_eq!(dr, sr);
        }
    }

    #[test]
    fn zero_edge_matches_dense_removal() {
        let mut g = demo_graph();
        let mut csr = CsrGraph::from_graph(&g);
        assert!(csr.zero_edge(2, 3));
        assert!(g.remove_edge(2, 3));
        assert!(!csr.zero_edge(2, 3), "already zeroed");
        assert_eq!(csr.edge_weight(2, 3), None);
        assert_eq!(csr.edge_weight(3, 2), None);
        let cfg = RwrConfig::default();
        for start in 0..g.len() {
            let (dense, _) = try_random_walk_with_restart(&g, start, &cfg).unwrap();
            let (sparse, _) = random_walk_with_restart_csr(&csr, start, &cfg).unwrap();
            assert_bit_equal(&dense, &sparse);
        }
    }

    #[test]
    fn scratch_reuse_across_walks_matches_fresh() {
        let csr = CsrGraph::from_graph(&demo_graph());
        let cfg = RwrConfig::default();
        let mut scratch = CsrScratch::default();
        for start in 0..csr.len() {
            csr.walk_into(start, &cfg, &mut scratch).unwrap();
            let (fresh, _) = random_walk_with_restart_csr(&csr, start, &cfg).unwrap();
            assert_bit_equal(scratch.distribution(), &fresh);
        }
        assert!(scratch.approx_bytes() > 0);
    }

    #[test]
    fn out_of_range_start_is_rejected() {
        let csr = CsrGraph::from_graph(&demo_graph());
        let mut scratch = CsrScratch::default();
        assert!(matches!(
            csr.walk_into(99, &RwrConfig::default(), &mut scratch),
            Err(GraphError::NodeOutOfRange { node: 99, len: 5 })
        ));
    }

    #[test]
    fn nnz_counts_structural_slots() {
        let g = demo_graph();
        let mut csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.nnz(), 2 * g.edge_count());
        csr.zero_edge(0, 1);
        // Zeroing keeps the slot: nnz is structural, not mass-based.
        assert_eq!(csr.nnz(), 2 * g.edge_count());
    }

    #[test]
    fn empty_graph_handles() {
        let csr = CsrGraph::from_graph(&Graph::new(0));
        assert!(csr.is_empty());
        assert_eq!(csr.nnz(), 0);
    }
}
