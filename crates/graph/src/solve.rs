//! Exact RWR solution by dense Gaussian elimination.
//!
//! The stationary vector of a random walk with restart satisfies
//! `π = (1−c)·Pᵀπ + c·e_s`, i.e. `(I − (1−c)·Pᵀ)·π = c·e_s`. Solving this
//! small linear system exactly gives a reference implementation used by
//! tests to validate the power iteration in [`crate::rwr`]. Dangling nodes
//! redirect their mass to the start node, mirroring the iterative code.

use crate::graph::Graph;

/// Solve the RWR system exactly. Returns `None` if the system is singular
/// (cannot happen for `0 < restart ≤ 1` but guarded anyway).
pub fn exact_rwr(graph: &Graph, start: usize, restart: f64) -> Option<Vec<f64>> {
    let n = graph.len();
    let c = restart.clamp(1e-6, 1.0);

    // Build A = I − (1−c)·M where M[u][v] = P(v→u) plus dangling→start.
    let mut a = vec![vec![0.0f64; n]; n];
    for (u, row) in a.iter_mut().enumerate() {
        row[u] = 1.0;
    }
    // Columns are scattered across rows, so indexed access is the
    // natural shape here.
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        let trans = graph.transitions(v);
        if trans.is_empty() {
            a[start][v] -= 1.0 - c;
        } else {
            for (u, p) in trans {
                a[u][v] -= (1.0 - c) * p;
            }
        }
    }
    let mut b = vec![0.0f64; n];
    b[start] = c;
    gaussian_solve(a, b)
}

/// Solve `A·x = b` with partial pivoting.
fn gaussian_solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // pivot
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            // row > col, so splitting at `row` keeps the pivot row in
            // the head while the target row is mutable in the tail.
            let (head, tail) = a.split_at_mut(row);
            for (dst, src) in tail[0][col..].iter_mut().zip(&head[col][col..]) {
                *dst -= f * src;
            }
            b[row] -= f * b[col];
        }
    }
    // back substitution
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let x = gaussian_solve(vec![vec![1.0, 0.0], vec![0.0, 1.0]], vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5 ; x - y = 1 → x = 2, y = 1
        let x = gaussian_solve(vec![vec![2.0, 1.0], vec![1.0, -1.0]], vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        assert!(gaussian_solve(vec![vec![1.0, 1.0], vec![2.0, 2.0]], vec![1.0, 2.0],).is_none());
    }

    #[test]
    fn exact_rwr_is_distribution() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        let p = exact_rwr(&g, 0, 0.15).unwrap();
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= -1e-12));
    }
}
