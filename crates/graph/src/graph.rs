//! Undirected edge-weighted graph with adjacency lists.
//!
//! Nodes are dense `usize` ids. Supports the operations Algorithm 1 needs:
//! weighted edge insertion, edge deletion after an alignment decision, and
//! row-stochastic transition probabilities for the walker.

/// An undirected weighted graph.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(usize, f64)>>,
}

impl Graph {
    /// Create a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.adj.len() - 1
    }

    /// Add (or accumulate onto) the undirected edge `a – b` with weight
    /// `w > 0`. Self-loops are ignored. Panics on out-of-range nodes;
    /// [`Graph::try_add_edge`] is the fallible variant.
    pub fn add_edge(&mut self, a: usize, b: usize, w: f64) {
        match self.try_add_edge(a, b, w) {
            Ok(()) => {}
            Err(e) => panic!("add_edge: {e}"),
        }
    }

    /// Fallible edge insertion: rejects out-of-range endpoints instead of
    /// panicking. Self-loops and non-positive / non-finite weights are
    /// silently ignored, as in [`Graph::add_edge`].
    pub fn try_add_edge(
        &mut self,
        a: usize,
        b: usize,
        w: f64,
    ) -> Result<(), crate::error::GraphError> {
        let len = self.len();
        for node in [a, b] {
            if node >= len {
                return Err(crate::error::GraphError::NodeOutOfRange { node, len });
            }
        }
        if a == b || w <= 0.0 || !w.is_finite() {
            return Ok(());
        }
        match self.adj[a].iter_mut().find(|(n, _)| *n == b) {
            Some((_, ew)) => {
                *ew += w;
                if let Some((_, ew2)) = self.adj[b].iter_mut().find(|(n, _)| *n == a) {
                    *ew2 += w;
                }
            }
            None => {
                self.adj[a].push((b, w));
                self.adj[b].push((a, w));
            }
        }
        Ok(())
    }

    /// Remove the edge `a – b` if present. Returns true when removed.
    pub fn remove_edge(&mut self, a: usize, b: usize) -> bool {
        let mut removed = false;
        if a < self.len() {
            let before = self.adj[a].len();
            self.adj[a].retain(|&(n, _)| n != b);
            removed = self.adj[a].len() != before;
        }
        if b < self.len() {
            self.adj[b].retain(|&(n, _)| n != a);
        }
        removed
    }

    /// Weight of edge `a – b`, if present.
    pub fn edge_weight(&self, a: usize, b: usize) -> Option<f64> {
        self.adj
            .get(a)?
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, w)| w)
    }

    /// Neighbors of `a` with raw edge weights.
    pub fn neighbors(&self, a: usize) -> &[(usize, f64)] {
        &self.adj[a]
    }

    /// Total outgoing weight of `a` (0 for isolated nodes).
    pub fn weight_sum(&self, a: usize) -> f64 {
        self.adj[a].iter().map(|&(_, w)| w).sum()
    }

    /// Degree (number of incident edges) of `a`.
    pub fn degree(&self, a: usize) -> usize {
        self.adj[a].len()
    }

    /// Number of undirected edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Transition probabilities from `a` — the stochastic normalization of
    /// §VI-A ("dividing each node's outgoing weights by the total weight
    /// of these edges"). Empty for isolated nodes.
    pub fn transitions(&self, a: usize) -> Vec<(usize, f64)> {
        let total = self.weight_sum(a);
        if total <= 0.0 {
            return Vec::new();
        }
        self.adj[a].iter().map(|&(n, w)| (n, w / total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), Some(2.0));
        assert_eq!(g.edge_weight(0, 2), None);
        assert_eq!(g.weight_sum(1), 5.0);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 0.5);
        assert_eq!(g.edge_weight(0, 1), Some(1.5));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_and_bad_weights_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 0, 1.0);
        g.add_edge(0, 1, 0.0);
        g.add_edge(0, 1, -1.0);
        g.add_edge(0, 1, f64::NAN);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn remove_edge_both_sides() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        assert!(g.remove_edge(1, 0));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(0), 0);
        assert!(!g.remove_edge(0, 1));
    }

    #[test]
    fn transitions_are_stochastic() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 2, 3.0);
        let t = g.transitions(0);
        let total: f64 = t.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(t.iter().find(|&&(n, _)| n == 2).unwrap().1, 0.75);
        assert!(g.transitions(1).len() == 1);
        let mut g2 = Graph::new(1);
        assert!(g2.transitions(0).is_empty());
        let id = g2.add_node();
        assert_eq!(id, 1);
    }
}
