//! Random walk with restart (personalized PageRank) by power iteration.
//!
//! §VI-B: "starting from a text mention, the graph is stochastically
//! traversed, with a certain probability of jumping back to the initial
//! node … Our implementation iterates RWRs for each text mention until the
//! estimated visiting probabilities of the candidate table mentions change
//! by less than a specified convergence bound."

use crate::error::GraphError;
use crate::graph::Graph;

/// RWR parameters.
#[derive(Debug, Clone, Copy)]
pub struct RwrConfig {
    /// Restart probability (jump back to the start node each step).
    pub restart: f64,
    /// L∞ convergence bound on the probability vector.
    pub tolerance: f64,
    /// Iteration cap (safety net; convergence is geometric).
    pub max_iterations: usize,
}

impl Default for RwrConfig {
    fn default() -> Self {
        RwrConfig {
            restart: 0.15,
            tolerance: 1e-9,
            max_iterations: 200,
        }
    }
}

/// How a power iteration ended: after how many iterations, at what
/// residual, and whether the tolerance was reached. Hitting the iteration
/// cap is not silent any more — callers can log or degrade on
/// `converged == false`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceReport {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final L∞ change between successive probability vectors.
    pub residual: f64,
    /// True when `residual < tolerance` within the iteration cap.
    pub converged: bool,
}

/// Stationary visiting probabilities `π(·|start)` of a walk restarting at
/// `start`. Walkers on nodes without outgoing edges (dangling) teleport
/// back to the start. Returns a probability vector over all nodes.
///
/// Panics when `start` is out of range; [`try_random_walk_with_restart`]
/// is the fallible variant used by the pipeline.
pub fn random_walk_with_restart(graph: &Graph, start: usize, cfg: &RwrConfig) -> Vec<f64> {
    match try_random_walk_with_restart(graph, start, cfg) {
        Ok((p, _)) => p,
        Err(e) => panic!("random_walk_with_restart: {e}"),
    }
}

/// Fallible RWR: rejects an out-of-range start node instead of panicking,
/// and reports how the iteration terminated.
pub fn try_random_walk_with_restart(
    graph: &Graph,
    start: usize,
    cfg: &RwrConfig,
) -> Result<(Vec<f64>, ConvergenceReport), GraphError> {
    let n = graph.len();
    if start >= n {
        return Err(GraphError::NodeOutOfRange {
            node: start,
            len: n,
        });
    }
    let c = cfg.restart.clamp(1e-6, 1.0);

    // Precompute transitions once; the graph is static during one walk.
    let trans: Vec<Vec<(usize, f64)>> = (0..n).map(|v| graph.transitions(v)).collect();

    let mut p = vec![0.0f64; n];
    p[start] = 1.0;
    let mut next = vec![0.0f64; n];
    let mut report = ConvergenceReport {
        iterations: 0,
        residual: f64::INFINITY,
        converged: false,
    };

    for it in 0..cfg.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for v in 0..n {
            let mass = p[v];
            if mass <= 0.0 {
                continue;
            }
            let spread = mass * (1.0 - c);
            if trans[v].is_empty() {
                dangling += spread;
            } else {
                for &(u, prob) in &trans[v] {
                    next[u] += spread * prob;
                }
            }
        }
        next[start] += c + dangling;

        let diff = p
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        std::mem::swap(&mut p, &mut next);
        report.iterations = it + 1;
        report.residual = diff;
        if diff < cfg.tolerance {
            report.converged = true;
            break;
        }
    }
    Ok((p, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> Graph {
        // 0 - 1 - 2 - 3
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 1.0);
        g
    }

    #[test]
    fn result_is_probability_distribution() {
        let g = line_graph();
        let p = random_walk_with_restart(&g, 0, &RwrConfig::default());
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "sums to {total}");
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn closer_nodes_score_higher() {
        // With a strong restart the ranking is strictly by distance. (With
        // a weak restart an endpoint start pushes all its mass to its only
        // neighbor, which can then outrank the start itself.)
        let g = line_graph();
        let p = random_walk_with_restart(
            &g,
            0,
            &RwrConfig {
                restart: 0.5,
                ..Default::default()
            },
        );
        assert!(p[0] > p[1]);
        assert!(p[1] > p[2]);
        assert!(p[2] > p[3]);
    }

    #[test]
    fn restart_probability_sharpens_locality() {
        let g = line_graph();
        let soft = random_walk_with_restart(
            &g,
            0,
            &RwrConfig {
                restart: 0.05,
                ..Default::default()
            },
        );
        let hard = random_walk_with_restart(
            &g,
            0,
            &RwrConfig {
                restart: 0.8,
                ..Default::default()
            },
        );
        // With a high restart probability more mass stays near the start.
        assert!(hard[0] > soft[0]);
        assert!(hard[3] < soft[3]);
    }

    #[test]
    fn heavier_edges_attract_more_mass() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 10.0);
        g.add_edge(0, 2, 1.0);
        let p = random_walk_with_restart(&g, 0, &RwrConfig::default());
        assert!(p[1] > p[2]);
    }

    #[test]
    fn disconnected_component_gets_zero() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(2, 3, 1.0);
        let p = random_walk_with_restart(&g, 0, &RwrConfig::default());
        assert_eq!(p[2], 0.0);
        assert_eq!(p[3], 0.0);
        assert!(p[0] > 0.0 && p[1] > 0.0);
    }

    #[test]
    fn isolated_start_keeps_all_mass() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        let g2 = {
            let mut g2 = Graph::new(3);
            g2.add_edge(0, 1, 1.0);
            g2
        };
        // node 2 is isolated
        let p = random_walk_with_restart(&g2, 2, &RwrConfig::default());
        assert!((p[2] - 1.0).abs() < 1e-9);
        drop(g);
    }

    #[test]
    fn symmetric_graph_symmetric_scores() {
        // star: 0 center, 1..3 leaves
        let mut g = Graph::new(4);
        for leaf in 1..4 {
            g.add_edge(0, leaf, 1.0);
        }
        let p = random_walk_with_restart(&g, 0, &RwrConfig::default());
        assert!((p[1] - p[2]).abs() < 1e-9);
        assert!((p[2] - p[3]).abs() < 1e-9);
    }

    #[test]
    fn matches_exact_solution() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 2.0);
        g.add_edge(0, 2, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 4.0);
        g.add_edge(3, 4, 1.0);
        g.add_edge(1, 4, 0.5);
        let cfg = RwrConfig::default();
        let p = random_walk_with_restart(&g, 1, &cfg);
        let exact = crate::solve::exact_rwr(&g, 1, cfg.restart).unwrap();
        for (a, b) in p.iter().zip(&exact) {
            assert!((a - b).abs() < 1e-6, "iterative {a} vs exact {b}");
        }
    }
}
