//! # briq-graph
//!
//! Graph substrate for BriQ's global resolution (§VI): an undirected
//! edge-weighted graph with stochastic normalization and random walk with
//! restart (personalized PageRank), computed by power iteration with a
//! convergence bound. The [`csr`] module freezes a graph into a
//! compressed-sparse-row layout whose walk kernel is bit-identical to
//! the dense path while allocating nothing in steady state. A dense
//! linear solver provides an exact reference used by tests to validate
//! the iterative walk.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod csr;
pub mod error;
pub mod graph;
pub mod rwr;
pub mod solve;

pub use csr::{random_walk_with_restart_csr, CsrGraph, CsrScratch};
pub use error::GraphError;
pub use graph::Graph;
pub use rwr::{
    random_walk_with_restart, try_random_walk_with_restart, ConvergenceReport, RwrConfig,
};
