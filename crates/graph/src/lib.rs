//! # briq-graph
//!
//! Graph substrate for BriQ's global resolution (§VI): an undirected
//! edge-weighted graph with stochastic normalization and random walk with
//! restart (personalized PageRank), computed by power iteration with a
//! convergence bound. A dense linear solver provides an exact reference
//! used by tests to validate the iterative walk.

pub mod graph;
pub mod rwr;
pub mod solve;

pub use graph::Graph;
pub use rwr::{random_walk_with_restart, RwrConfig};
