//! Property-based tests for the regex engine.

use briq_regex::Regex;
use proptest::prelude::*;

/// Escape a string so it becomes a literal pattern.
fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if c.is_ascii_punctuation() || c == ' ' {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

proptest! {
    /// Any string, escaped as a literal pattern, matches itself exactly.
    #[test]
    fn literal_pattern_matches_itself(s in "[ -~]{1,24}") {
        let re = Regex::new(&escape_literal(&s)).unwrap();
        let m = re.find(&s).expect("literal must match itself");
        prop_assert_eq!(m.as_str(), s.as_str());
        prop_assert_eq!(m.start(), 0);
    }

    /// find_iter yields non-overlapping matches in increasing order, and
    /// every reported range round-trips through the haystack.
    #[test]
    fn find_iter_is_ordered_and_disjoint(hay in "[a-z0-9 .,%$]{0,64}") {
        let re = Regex::new(r"\d+(\.\d+)?").unwrap();
        let mut prev_end = 0usize;
        for m in re.find_iter(&hay) {
            prop_assert!(m.start() >= prev_end);
            prop_assert!(m.end() > m.start());
            prop_assert_eq!(&hay[m.range()], m.as_str());
            prev_end = m.end();
        }
    }

    /// Matches found by `\d+` consist only of digits and are maximal.
    #[test]
    fn digit_runs_are_maximal(hay in "[a-z0-9 ]{0,64}") {
        let re = Regex::new(r"\d+").unwrap();
        for m in re.find_iter(&hay) {
            prop_assert!(m.as_str().chars().all(|c| c.is_ascii_digit()));
            // maximality: chars adjacent to the match are not digits
            if m.start() > 0 {
                let before = hay[..m.start()].chars().next_back().unwrap();
                prop_assert!(!before.is_ascii_digit());
            }
            if m.end() < hay.len() {
                let after = hay[m.end()..].chars().next().unwrap();
                prop_assert!(!after.is_ascii_digit());
            }
        }
    }

    /// replace_all with the empty string removes exactly the matched bytes.
    #[test]
    fn replace_all_removes_matches(hay in "[a-z0-9 ]{0,64}") {
        let re = Regex::new(r"\d+").unwrap();
        let matched: usize = re.find_iter(&hay).map(|m| m.len()).sum();
        let replaced = re.replace_all(&hay, "");
        prop_assert_eq!(replaced.len(), hay.len() - matched);
        prop_assert!(!re.is_match(&replaced));
    }

    /// split + join with a non-matching separator preserves non-matched text.
    #[test]
    fn split_preserves_residue(hay in "[a-z0-9,]{0,64}") {
        let re = Regex::new(",").unwrap();
        let parts = re.split(&hay);
        let rejoined = parts.join(",");
        prop_assert_eq!(rejoined, hay);
    }

    /// The engine is total: arbitrary inputs never panic for a fixed
    /// realistic pattern set.
    #[test]
    fn engine_is_total(hay in "\\PC{0,64}") {
        for pat in [r"\d+\s*\p{Currency_Symbol}", r"[0-9][0-9,\.]*", r"\b\w+\b", r"(\d+)(\.\d+)?%?"] {
            let re = Regex::new(pat).unwrap();
            let _ = re.find(&hay);
            let _ = re.find_iter(&hay).count();
        }
    }

    /// Bounded repetition semantics: a{m,n} matches runs of length within
    /// bounds (anchored).
    #[test]
    fn bounded_repeat_semantics(len in 0usize..10, m in 0u32..5, extra in 0u32..5) {
        let n = m + extra;
        let pat = format!("^a{{{m},{n}}}$");
        let re = Regex::new(&pat).unwrap();
        let hay = "a".repeat(len);
        let expect = (len as u32) >= m && (len as u32) <= n;
        prop_assert_eq!(re.is_match(&hay), expect);
    }
}
