//! Pattern-level integration tests: the exact regex idioms the BriQ
//! extraction layer relies on, plus engine corner cases.

use briq_regex::Regex;

#[test]
fn paper_currency_pattern() {
    // The literal pattern from §III of the paper.
    let re = Regex::new(r"\d+\s*\p{Currency_Symbol}").unwrap();
    for (hay, expect) in [
        ("pay 37€ now", Some("37€")),
        ("pay 37 € now", Some("37 €")),
        ("pay € 37 now", None), // symbol first — not this pattern
        ("around 1000   ¥", Some("1000   ¥")),
        ("price: unknown", None),
    ] {
        assert_eq!(re.find(hay).map(|m| m.as_str()), expect, "{hay:?}");
    }
}

#[test]
fn money_with_scale_words() {
    let re = Regex::new(r"\$\d+(\.\d+)?\s*(million|billion)?").unwrap();
    assert_eq!(
        re.find("lost $3.26 billion overall").unwrap().as_str(),
        "$3.26 billion"
    );
    assert_eq!(
        re.find("a $70 million gain").unwrap().as_str(),
        "$70 million"
    );
    assert_eq!(re.find("about $45 total").unwrap().as_str(), "$45 ");
}

#[test]
fn grouped_numbers() {
    let re = Regex::new(r"\d{1,3}(,\d{3})+").unwrap();
    assert_eq!(
        re.find("sold 1,144,716 units").unwrap().as_str(),
        "1,144,716"
    );
    assert!(re.find("sold 42 units").is_none());
}

#[test]
fn nested_groups_capture() {
    let re = Regex::new(r"((\d+)-(\d+))-(\d+)").unwrap();
    let c = re.captures("code 12-34-56 end").unwrap();
    assert_eq!(c.get(1).unwrap().as_str(), "12-34");
    assert_eq!(c.get(2).unwrap().as_str(), "12");
    assert_eq!(c.get(3).unwrap().as_str(), "34");
    assert_eq!(c.get(4).unwrap().as_str(), "56");
}

#[test]
fn alternation_inside_repetition() {
    let re = Regex::new("(ab|cd)+").unwrap();
    assert_eq!(re.find("xxabcdabxx").unwrap().as_str(), "abcdab");
}

#[test]
fn anchored_full_match_validation() {
    let numeral = Regex::new(r"^\d{1,3}(,\d{3})*(\.\d+)?$").unwrap();
    for ok in ["1", "12", "123", "1,234", "12,345.67", "1,234,567"] {
        assert!(numeral.is_match(ok), "{ok:?}");
    }
    for bad in ["1234", "1,23", ",123", "12.", "1,2345"] {
        assert!(!numeral.is_match(bad), "{bad:?}");
    }
}

#[test]
fn lazy_vs_greedy_quantified_groups() {
    let greedy = Regex::new(r"<.+>").unwrap();
    assert_eq!(greedy.find("<a><b>").unwrap().as_str(), "<a><b>");
    let lazy = Regex::new(r"<.+?>").unwrap();
    assert_eq!(lazy.find("<a><b>").unwrap().as_str(), "<a>");
}

#[test]
fn counted_repetition_of_groups() {
    let re = Regex::new(r"(\d\d:){2}\d\d").unwrap();
    assert_eq!(re.find("at 12:34:56 sharp").unwrap().as_str(), "12:34:56");
}

#[test]
fn word_boundaries_in_identifiers() {
    // the "Win10" exclusion logic (§II-A) relies on this distinction
    let re = Regex::new(r"\b\d+\b").unwrap();
    let hits: Vec<&str> = re
        .find_iter("Win10 has 8 cores at 3.5 GHz")
        .map(|m| m.as_str())
        .collect();
    assert_eq!(hits, vec!["8", "3", "5"]);
}

#[test]
fn empty_pattern_and_haystack() {
    let re = Regex::new("").unwrap();
    let m = re.find("abc").unwrap();
    assert!(m.is_empty());
    assert_eq!(m.start(), 0);
    let re = Regex::new("a").unwrap();
    assert!(re.find("").is_none());
}

#[test]
fn long_haystack_linear_behaviour() {
    // worst-case quadratic engines choke here; the Pike VM must not
    let hay = "a".repeat(20_000) + "b";
    let re = Regex::new("a*b").unwrap();
    let start = std::time::Instant::now();
    assert!(re.is_match(&hay));
    assert!(start.elapsed().as_secs_f64() < 2.0);
}

#[test]
fn splits_preserve_empty_fields() {
    let re = Regex::new(",").unwrap();
    assert_eq!(re.split(",a,,b,"), vec!["", "a", "", "b", ""]);
}

#[test]
fn replace_all_disjoint() {
    let re = Regex::new(r"\d+").unwrap();
    assert_eq!(re.replace_all("a1b22c333", "#"), "a#b#c#");
}

#[test]
fn case_sensitive_by_design() {
    let re = Regex::new("EUR").unwrap();
    assert!(re.is_match("37 EUR"));
    assert!(!re.is_match("37 eur"));
}

#[test]
fn classes_with_escapes_inside() {
    let re = Regex::new(r"[\d\.\-]+").unwrap();
    assert_eq!(re.find("range 1.5-2.5 found").unwrap().as_str(), "1.5-2.5");
}

#[test]
fn non_capturing_groups_do_not_shift_indices() {
    let re = Regex::new(r"(?:\$|€)(\d+)").unwrap();
    let c = re.captures("cost €42 total").unwrap();
    assert_eq!(c.get(1).unwrap().as_str(), "42");
    assert_eq!(re.captures_len(), 2);
}
