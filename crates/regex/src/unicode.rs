//! Minimal Unicode property tables.
//!
//! Only the properties the BriQ extraction patterns use are implemented.
//! Currency symbols follow the Unicode `Sc` (Currency_Symbol) category,
//! restricted to the ranges that occur in practice on the Web.

/// Is `c` in the Unicode `Currency_Symbol` (`Sc`) category?
pub fn is_currency_symbol(c: char) -> bool {
    matches!(
        c,
        '$' | '¢'
            | '£'
            | '¤'
            | '¥'
            | '֏'
            | '؋'
            | '৲'
            | '৳'
            | '৻'
            | '૱'
            | '௹'
            | '฿'
            | '៛'
            | '\u{20A0}'
            ..='\u{20BF}' // the Currency Symbols block: ₠..₿ (€ is U+20AC)
        | '꠸' | '﷼' | '﹩' | '＄' | '￠' | '￡' | '￥' | '￦'
    )
}

/// Non-ASCII punctuation commonly seen in web text (a pragmatic subset of
/// the Unicode `P` categories).
pub fn is_unicode_punct(c: char) -> bool {
    matches!(
        c,
        '‐'
            ..='‧' // hyphens, dashes, quotes, bullets, ellipsis
        | '«' | '»' | '¡' | '¿' | '·'
        | '、' | '。' | '〈' | '〉' | '《' | '》' | '「' | '」'
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_currency_symbols() {
        for c in ['$', '€', '£', '¥', '₹', '₿', '¢', '￥'] {
            assert!(is_currency_symbol(c), "{c} should be a currency symbol");
        }
    }

    #[test]
    fn non_currency_chars() {
        for c in ['a', '1', '%', ' ', '#', '±'] {
            assert!(
                !is_currency_symbol(c),
                "{c} should not be a currency symbol"
            );
        }
    }

    #[test]
    fn unicode_punct_subset() {
        assert!(is_unicode_punct('–')); // en dash
        assert!(is_unicode_punct('…'));
        assert!(!is_unicode_punct('a'));
    }
}
