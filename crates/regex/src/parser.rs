//! Recursive-descent parser from pattern strings to [`Ast`].

use crate::ast::{Ast, ClassItem, ClassSet, UnicodeProperty};
use std::fmt;

/// Why a pattern failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Pattern ended in the middle of a construct.
    UnexpectedEof,
    /// A `)` without a matching `(`, or similar stray metacharacter.
    UnexpectedChar(char, usize),
    /// `(` without a matching `)`.
    UnclosedGroup,
    /// `[` without a matching `]`.
    UnclosedClass,
    /// A class range like `[z-a]` whose endpoints are out of order.
    InvalidClassRange(char, char),
    /// A counted repetition `{m,n}` with `m > n`.
    InvalidRepeatRange(u32, u32),
    /// A quantifier with nothing to repeat, e.g. a leading `*`.
    NothingToRepeat(usize),
    /// Unknown escape sequence.
    UnknownEscape(char),
    /// Unknown `\p{…}` property name.
    UnknownProperty(String),
    /// Groups nested deeper than the parser's recursion cap.
    NestingTooDeep(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of pattern"),
            Self::UnexpectedChar(c, at) => write!(f, "unexpected `{c}` at byte {at}"),
            Self::UnclosedGroup => write!(f, "unclosed group"),
            Self::UnclosedClass => write!(f, "unclosed character class"),
            Self::InvalidClassRange(a, b) => write!(f, "invalid class range `{a}-{b}`"),
            Self::InvalidRepeatRange(m, n) => write!(f, "invalid repetition range {{{m},{n}}}"),
            Self::NothingToRepeat(at) => write!(f, "quantifier at byte {at} has nothing to repeat"),
            Self::UnknownEscape(c) => write!(f, "unknown escape `\\{c}`"),
            Self::UnknownProperty(name) => write!(f, "unknown unicode property `{name}`"),
            Self::NestingTooDeep(max) => {
                write!(f, "groups nested deeper than the {max}-level cap")
            }
        }
    }
}

/// Maximum group-nesting depth. The parser (and the downstream AST walks
/// in compilation) recurse once per nesting level; the cap keeps hostile
/// patterns like `((((…))))` from overflowing the stack.
pub const MAX_NESTING: usize = 100;

/// Parse `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, ParseError> {
    let mut p = Parser {
        chars: pattern.char_indices().collect(),
        pos: 0,
        next_group: 1,
        depth: 0,
    };
    let ast = p.alternation()?;
    if p.pos < p.chars.len() {
        let (at, c) = p.chars[p.pos];
        return Err(ParseError::UnexpectedChar(c, at));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
    next_group: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn byte_pos(&self) -> usize {
        self.chars.get(self.pos).map_or_else(
            || self.chars.last().map_or(0, |&(i, c)| i + c.len_utf8()),
            |&(i, _)| i,
        )
    }

    fn alternation(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(match (branches.len(), branches.pop()) {
            (1, Some(only)) => only,
            (_, Some(last)) => {
                branches.push(last);
                Ast::Alternate(branches)
            }
            (_, None) => Ast::Empty,
        })
    }

    fn concat(&mut self) -> Result<Ast, ParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match (parts.len(), parts.pop()) {
            (_, None) => Ast::Empty,
            (1, Some(only)) => only,
            (_, Some(last)) => {
                parts.push(last);
                Ast::Concat(parts)
            }
        })
    }

    fn repeat(&mut self) -> Result<Ast, ParseError> {
        let at = self.byte_pos();
        let atom = self.atom()?;
        let (min, max) = match self.peek() {
            Some('*') => {
                self.bump();
                (0, None)
            }
            Some('+') => {
                self.bump();
                (1, None)
            }
            Some('?') => {
                self.bump();
                (0, Some(1))
            }
            Some('{') if self.looks_like_counted_repeat() => {
                self.bump();
                self.counted_repeat()?
            }
            _ => return Ok(atom),
        };
        if matches!(
            atom,
            Ast::Empty | Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary
        ) {
            return Err(ParseError::NothingToRepeat(at));
        }
        if let (m, Some(n)) = (min, max) {
            if m > n {
                return Err(ParseError::InvalidRepeatRange(m, n));
            }
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
            greedy,
        })
    }

    /// Distinguish `a{2,3}` from a literal `{` (as in `f{x}` prose). We only
    /// treat `{` as a quantifier when it is followed by digits and a valid
    /// closing form, matching common regex-engine behaviour.
    fn looks_like_counted_repeat(&self) -> bool {
        let mut i = 1;
        let mut saw_digit = false;
        while let Some(c) = self.peek_at(i) {
            match c {
                '0'..='9' => {
                    saw_digit = true;
                    i += 1;
                }
                ',' => {
                    i += 1;
                    // optional second number
                    while let Some(c2) = self.peek_at(i) {
                        match c2 {
                            '0'..='9' => i += 1,
                            '}' => return saw_digit,
                            _ => return false,
                        }
                    }
                    return false;
                }
                '}' => return saw_digit,
                _ => return false,
            }
        }
        false
    }

    fn counted_repeat(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let min = self.number()?;
        if self.eat('}') {
            return Ok((min, Some(min)));
        }
        if !self.eat(',') {
            return Err(ParseError::UnexpectedChar(
                self.peek().unwrap_or('}'),
                self.byte_pos(),
            ));
        }
        if self.eat('}') {
            return Ok((min, None));
        }
        let max = self.number()?;
        if !self.eat('}') {
            return Err(ParseError::UnexpectedEof);
        }
        Ok((min, Some(max)))
    }

    fn number(&mut self) -> Result<u32, ParseError> {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n.saturating_mul(10).saturating_add(d);
                any = true;
                self.bump();
            } else {
                break;
            }
        }
        if any {
            Ok(n)
        } else {
            Err(ParseError::UnexpectedEof)
        }
    }

    fn atom(&mut self) -> Result<Ast, ParseError> {
        let at = self.byte_pos();
        match self.bump().ok_or(ParseError::UnexpectedEof)? {
            '.' => Ok(Ast::AnyChar),
            '^' => Ok(Ast::StartAnchor),
            '$' => Ok(Ast::EndAnchor),
            '(' => {
                let capturing = if self.peek() == Some('?') && self.peek_at(1) == Some(':') {
                    self.bump();
                    self.bump();
                    false
                } else {
                    true
                };
                let idx = if capturing {
                    let i = self.next_group;
                    self.next_group += 1;
                    i
                } else {
                    0
                };
                self.depth += 1;
                if self.depth > MAX_NESTING {
                    return Err(ParseError::NestingTooDeep(MAX_NESTING));
                }
                let inner = self.alternation()?;
                self.depth -= 1;
                if !self.eat(')') {
                    return Err(ParseError::UnclosedGroup);
                }
                Ok(if capturing {
                    Ast::Group(Box::new(inner), idx)
                } else {
                    inner
                })
            }
            '[' => self.class(),
            '\\' => self.escape(),
            c @ ('*' | '+' | '?') => Err(ParseError::NothingToRepeat(
                at.saturating_sub(c.len_utf8() - 1),
            )),
            c => Ok(Ast::Literal(c)),
        }
    }

    fn escape(&mut self) -> Result<Ast, ParseError> {
        let c = self.bump().ok_or(ParseError::UnexpectedEof)?;
        Ok(match c {
            'd' => Ast::Class(ClassSet::new(vec![ClassItem::Digit])),
            'D' => Ast::Class(ClassSet {
                items: vec![ClassItem::Digit],
                negated: true,
            }),
            'w' => Ast::Class(ClassSet::new(vec![ClassItem::Word])),
            'W' => Ast::Class(ClassSet {
                items: vec![ClassItem::Word],
                negated: true,
            }),
            's' => Ast::Class(ClassSet::new(vec![ClassItem::Space])),
            'S' => Ast::Class(ClassSet {
                items: vec![ClassItem::Space],
                negated: true,
            }),
            'b' => Ast::WordBoundary,
            'n' => Ast::Literal('\n'),
            't' => Ast::Literal('\t'),
            'r' => Ast::Literal('\r'),
            'p' => Ast::Class(ClassSet::new(vec![self.property(false)?])),
            'P' => Ast::Class(ClassSet::new(vec![self.property(true)?])),
            c if c.is_ascii_punctuation() || c == ' ' || c == '±' => Ast::Literal(c),
            c => return Err(ParseError::UnknownEscape(c)),
        })
    }

    fn property(&mut self, negated: bool) -> Result<ClassItem, ParseError> {
        if !self.eat('{') {
            // single-letter form: \pL
            let c = self.bump().ok_or(ParseError::UnexpectedEof)?;
            let prop = UnicodeProperty::from_name(&c.to_string())
                .ok_or_else(|| ParseError::UnknownProperty(c.to_string()))?;
            return Ok(ClassItem::Property(prop, negated));
        }
        let mut name = String::new();
        loop {
            match self.bump().ok_or(ParseError::UnexpectedEof)? {
                '}' => break,
                c => name.push(c),
            }
        }
        let prop = UnicodeProperty::from_name(&name).ok_or(ParseError::UnknownProperty(name))?;
        Ok(ClassItem::Property(prop, negated))
    }

    fn class(&mut self) -> Result<Ast, ParseError> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        // A leading `]` is a literal.
        if self.peek() == Some(']') {
            self.bump();
            items.push(ClassItem::Char(']'));
        }
        loop {
            let c = self.peek().ok_or(ParseError::UnclosedClass)?;
            if c == ']' {
                self.bump();
                break;
            }
            let item = self.class_atom()?;
            // Possible range: `a-z` (but `a-]` is literal `-`).
            if self.peek() == Some('-') && self.peek_at(1).is_some() && self.peek_at(1) != Some(']')
            {
                if let ClassItem::Char(lo) = item {
                    self.bump(); // '-'
                    let hi_item = self.class_atom()?;
                    if let ClassItem::Char(hi) = hi_item {
                        if lo > hi {
                            return Err(ParseError::InvalidClassRange(lo, hi));
                        }
                        items.push(ClassItem::Range(lo, hi));
                        continue;
                    }
                    // `a-\d` style: treat as literals.
                    items.push(ClassItem::Char(lo));
                    items.push(ClassItem::Char('-'));
                    items.push(hi_item);
                    continue;
                }
            }
            items.push(item);
        }
        Ok(Ast::Class(ClassSet { items, negated }))
    }

    fn class_atom(&mut self) -> Result<ClassItem, ParseError> {
        match self.bump().ok_or(ParseError::UnclosedClass)? {
            '\\' => match self.bump().ok_or(ParseError::UnclosedClass)? {
                'd' => Ok(ClassItem::Digit),
                'w' => Ok(ClassItem::Word),
                's' => Ok(ClassItem::Space),
                'n' => Ok(ClassItem::Char('\n')),
                't' => Ok(ClassItem::Char('\t')),
                'r' => Ok(ClassItem::Char('\r')),
                'p' => self.property(false),
                'P' => self.property(true),
                c if c.is_ascii_punctuation() => Ok(ClassItem::Char(c)),
                c => Err(ParseError::UnknownEscape(c)),
            },
            c => Ok(ClassItem::Char(c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_into_concat() {
        assert_eq!(
            parse("ab").unwrap(),
            Ast::Concat(vec![Ast::Literal('a'), Ast::Literal('b')])
        );
    }

    #[test]
    fn parses_alternation() {
        match parse("a|b|c").unwrap() {
            Ast::Alternate(v) => assert_eq!(v.len(), 3),
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn group_indices_assigned_in_order() {
        let ast = parse("(a)(b(c))").unwrap();
        fn collect(ast: &Ast, out: &mut Vec<usize>) {
            match ast {
                Ast::Group(inner, i) => {
                    out.push(*i);
                    collect(inner, out);
                }
                Ast::Concat(v) | Ast::Alternate(v) => v.iter().for_each(|a| collect(a, out)),
                Ast::Repeat { node, .. } => collect(node, out),
                _ => {}
            }
        }
        let mut idx = Vec::new();
        collect(&ast, &mut idx);
        assert_eq!(idx, vec![1, 2, 3]);
    }

    #[test]
    fn non_capturing_group() {
        let ast = parse("(?:ab)+").unwrap();
        match ast {
            Ast::Repeat {
                node,
                min: 1,
                max: None,
                greedy: true,
            } => {
                assert!(matches!(*node, Ast::Concat(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn literal_brace_is_allowed() {
        // `{` not followed by a counted repeat is a literal.
        assert!(parse("a{x}").is_ok());
    }

    #[test]
    fn counted_repeat_forms() {
        assert!(matches!(
            parse("a{3}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(
            parse("a{3,}").unwrap(),
            Ast::Repeat {
                min: 3,
                max: None,
                ..
            }
        ));
        assert!(matches!(
            parse("a{3,5}?").unwrap(),
            Ast::Repeat {
                min: 3,
                max: Some(5),
                greedy: false,
                ..
            }
        ));
    }

    #[test]
    fn class_with_leading_bracket() {
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains(']'));
                assert!(set.contains('a'));
                assert!(!set.contains('b'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_trailing_dash_literal() {
        let ast = parse("[a-]").unwrap();
        match ast {
            Ast::Class(set) => {
                assert!(set.contains('a'));
                assert!(set.contains('-'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert_eq!(parse("(a"), Err(ParseError::UnclosedGroup));
        assert_eq!(parse("[ab"), Err(ParseError::UnclosedClass));
        assert_eq!(parse("[z-a]"), Err(ParseError::InvalidClassRange('z', 'a')));
        assert_eq!(parse("a{5,2}"), Err(ParseError::InvalidRepeatRange(5, 2)));
        assert!(matches!(parse("+a"), Err(ParseError::NothingToRepeat(_))));
        assert!(matches!(parse(r"\q"), Err(ParseError::UnknownEscape('q'))));
    }
}
