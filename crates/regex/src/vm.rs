//! Pike VM: breadth-first NFA simulation with capture slots and
//! leftmost-first match semantics.
//!
//! The epsilon closure is computed with an explicit work stack (no
//! recursion, so deep split chains cannot overflow the call stack), and
//! every unit of work charges a shared step counter so callers can bound
//! worst-case latency on hostile inputs.

use crate::program::{Inst, Program};

type Slots = Vec<Option<usize>>;

/// The step budget given to [`run`] was exhausted before the search
/// finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepLimitExceeded;

/// Run `prog` on `haystack`, considering match starts at byte offset
/// `from` or later. Returns the capture slots of the leftmost-first match,
/// or `Err(StepLimitExceeded)` if the search would take more than
/// `max_steps` units of VM work (one unit per instruction visited).
pub fn run(
    prog: &Program,
    haystack: &str,
    from: usize,
    max_steps: usize,
) -> Result<Option<Slots>, StepLimitExceeded> {
    if from > haystack.len() {
        return Ok(None);
    }
    // Positions: byte offset of every char at or after `from`, plus the
    // end-of-input sentinel.
    let tail = &haystack[from..];
    let chars: Vec<(usize, char)> = tail.char_indices().map(|(i, c)| (from + i, c)).collect();

    let mut clist = ThreadList::new(prog.insts.len());
    let mut nlist = ThreadList::new(prog.insts.len());
    let mut matched: Option<Slots> = None;
    let mut steps = Steps {
        used: 0,
        max: max_steps,
    };

    for step in 0..=chars.len() {
        let at = if step < chars.len() {
            chars[step].0
        } else {
            haystack.len()
        };
        let cur: Option<char> = chars.get(step).map(|&(_, c)| c);
        let prev: Option<char> = if step == 0 {
            haystack[..from].chars().next_back()
        } else {
            Some(chars[step - 1].1)
        };
        let ctx = Ctx {
            at,
            cur,
            prev,
            hay_len: haystack.len(),
        };

        // New starting thread at this position (lowest priority), unless a
        // match was already found at an earlier start.
        if matched.is_none() {
            let slots = vec![None; prog.num_slots];
            add_thread(prog, &mut clist, 0, slots, ctx, &mut steps)?;
        }
        if clist.dense.is_empty() && matched.is_some() {
            // No live threads and no new starts will be added: done.
            break;
        }

        let mut i = 0;
        while i < clist.dense.len() {
            steps.charge()?;
            let (pc, slots) = {
                let t = &clist.dense[i];
                (t.pc, t.slots.clone())
            };
            match &prog.insts[pc] {
                Inst::Match => {
                    matched = Some(slots);
                    // All later threads in clist have lower priority.
                    break;
                }
                Inst::Char(c) => {
                    if cur == Some(*c) {
                        let next = next_ctx(&chars, step, haystack.len());
                        add_thread(prog, &mut nlist, pc + 1, slots, next, &mut steps)?;
                    }
                }
                Inst::Any => {
                    if matches!(cur, Some(c) if c != '\n') {
                        let next = next_ctx(&chars, step, haystack.len());
                        add_thread(prog, &mut nlist, pc + 1, slots, next, &mut steps)?;
                    }
                }
                Inst::Class(set) => {
                    if matches!(cur, Some(c) if set.contains(c)) {
                        let next = next_ctx(&chars, step, haystack.len());
                        add_thread(prog, &mut nlist, pc + 1, slots, next, &mut steps)?;
                    }
                }
                // Zero-width instructions are resolved inside add_thread.
                _ => unreachable!("epsilon inst {pc} escaped add_thread"),
            }
            i += 1;
        }

        std::mem::swap(&mut clist, &mut nlist);
        nlist.clear();
        if cur.is_none() {
            break;
        }
    }
    Ok(matched)
}

/// Shared work counter; `charge` fails once the budget is spent.
struct Steps {
    used: usize,
    max: usize,
}

impl Steps {
    fn charge(&mut self) -> Result<(), StepLimitExceeded> {
        self.used += 1;
        if self.used > self.max {
            Err(StepLimitExceeded)
        } else {
            Ok(())
        }
    }
}

/// Position context used to evaluate zero-width assertions.
#[derive(Clone, Copy)]
struct Ctx {
    at: usize,
    cur: Option<char>,
    prev: Option<char>,
    hay_len: usize,
}

fn next_ctx(chars: &[(usize, char)], step: usize, hay_len: usize) -> Ctx {
    let at = chars.get(step + 1).map_or(hay_len, |&(i, _)| i);
    Ctx {
        at,
        cur: chars.get(step + 1).map(|&(_, c)| c),
        prev: chars.get(step).map(|&(_, c)| c),
        hay_len,
    }
}

struct Thread {
    pc: usize,
    slots: Slots,
}

/// A priority-ordered list of threads with O(1) de-duplication by pc.
struct ThreadList {
    dense: Vec<Thread>,
    seen: Vec<bool>,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList {
            dense: Vec::new(),
            seen: vec![false; n],
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.seen.iter_mut().for_each(|s| *s = false);
    }
}

fn is_word(c: Option<char>) -> bool {
    matches!(c, Some(c) if c == '_' || c.is_alphanumeric())
}

/// Add `pc` (following epsilon transitions) to `list` in priority order.
///
/// Iterative: pending program counters sit on an explicit LIFO stack, so a
/// long chain of `Split`/`Jmp` instructions costs heap, not call stack.
/// Pushing `b` before `a` for `Split(a, b)` preserves the priority order
/// the recursive formulation had.
fn add_thread(
    prog: &Program,
    list: &mut ThreadList,
    pc: usize,
    slots: Slots,
    ctx: Ctx,
    steps: &mut Steps,
) -> Result<(), StepLimitExceeded> {
    let mut stack: Vec<(usize, Slots)> = vec![(pc, slots)];
    while let Some((pc, slots)) = stack.pop() {
        if list.seen[pc] {
            continue;
        }
        list.seen[pc] = true;
        steps.charge()?;
        match &prog.insts[pc] {
            Inst::Jmp(t) => stack.push((*t, slots)),
            Inst::Split(a, b) => {
                stack.push((*b, slots.clone()));
                stack.push((*a, slots));
            }
            Inst::Save(i) => {
                let mut slots = slots;
                slots[*i] = Some(ctx.at);
                stack.push((pc + 1, slots));
            }
            Inst::Start => {
                if ctx.at == 0 {
                    stack.push((pc + 1, slots));
                }
            }
            Inst::End => {
                if ctx.at == ctx.hay_len {
                    stack.push((pc + 1, slots));
                }
            }
            Inst::WordBoundary => {
                if is_word(ctx.prev) != is_word(ctx.cur) {
                    stack.push((pc + 1, slots));
                }
            }
            _ => list.dense.push(Thread { pc, slots }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn leftmost_first_alternation() {
        let re = Regex::new("ab|abc").unwrap();
        assert_eq!(re.find("zabc").unwrap().as_str(), "ab");
        let re = Regex::new("abc|ab").unwrap();
        assert_eq!(re.find("zabc").unwrap().as_str(), "abc");
    }

    #[test]
    fn find_at_respects_offset() {
        let re = Regex::new(r"\d+").unwrap();
        let h = "12 and 34";
        assert_eq!(re.find_at(h, 2).unwrap().as_str(), "34");
    }

    #[test]
    fn anchors_with_offset() {
        let re = Regex::new(r"^\d").unwrap();
        assert!(re.find_at("1x2", 2).is_none());
    }

    #[test]
    fn word_boundary_with_offset_context() {
        // Starting mid-word: `\b` must see the char before `from`.
        let re = Regex::new(r"\bx").unwrap();
        assert!(re.find_at("ax", 1).is_none());
        assert!(re.find_at(" x", 1).is_some());
    }

    #[test]
    fn repeated_group_captures_last_iteration() {
        let re = Regex::new("(a|b)+").unwrap();
        let c = re.captures("abab").unwrap();
        assert_eq!(c.get(0).unwrap().as_str(), "abab");
        assert_eq!(c.get(1).unwrap().as_str(), "b");
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // (a+)+b on a long run of 'a's with no 'b' — linear for a Pike VM.
        let re = Regex::new("(a+)+b").unwrap();
        let hay = "a".repeat(2000);
        assert!(re.find(&hay).is_none());
    }

    #[test]
    fn multibyte_haystack_offsets() {
        let re = Regex::new(r"\d+").unwrap();
        let h = "€€ 42 €€";
        let m = re.find(h).unwrap();
        assert_eq!(m.as_str(), "42");
        assert_eq!(&h[m.range()], "42");
    }

    #[test]
    fn deep_split_chain_does_not_overflow_stack() {
        // A long alternation compiles to a deep chain of Split
        // instructions; the iterative closure must handle it.
        let branches: Vec<String> = (0..5_000).map(|i| format!("x{i}")).collect();
        let re = Regex::new(&branches.join("|")).unwrap();
        assert!(re.is_match("x4999"));
        assert!(!re.is_match("y"));
    }

    #[test]
    fn step_budget_enforced() {
        use crate::Error;
        let re = Regex::new(r"(a+)+b").unwrap();
        let hay = "a".repeat(500);
        // Generous budget: completes.
        assert!(re.try_find(&hay, 10_000_000).unwrap().is_none());
        // Tiny budget: fails fast instead of scanning.
        match re.try_find(&hay, 100) {
            Err(Error::StepBudgetExceeded { max_steps: 100 }) => {}
            other => panic!("expected step budget error, got {other:?}"),
        }
    }
}
