//! Pike VM: breadth-first NFA simulation with capture slots and
//! leftmost-first match semantics.

use crate::program::{Inst, Program};

type Slots = Vec<Option<usize>>;

/// Run `prog` on `haystack`, considering match starts at byte offset
/// `from` or later. Returns the capture slots of the leftmost-first match.
pub fn run(prog: &Program, haystack: &str, from: usize) -> Option<Slots> {
    if from > haystack.len() {
        return None;
    }
    // Positions: byte offset of every char at or after `from`, plus the
    // end-of-input sentinel.
    let tail = &haystack[from..];
    let chars: Vec<(usize, char)> =
        tail.char_indices().map(|(i, c)| (from + i, c)).collect();

    let mut clist = ThreadList::new(prog.insts.len());
    let mut nlist = ThreadList::new(prog.insts.len());
    let mut matched: Option<Slots> = None;

    for step in 0..=chars.len() {
        let at = if step < chars.len() { chars[step].0 } else { haystack.len() };
        let cur: Option<char> = chars.get(step).map(|&(_, c)| c);
        let prev: Option<char> = if step == 0 {
            haystack[..from].chars().next_back()
        } else {
            Some(chars[step - 1].1)
        };
        let ctx = Ctx { at, cur, prev, hay_len: haystack.len() };

        // New starting thread at this position (lowest priority), unless a
        // match was already found at an earlier start.
        if matched.is_none() {
            let slots = vec![None; prog.num_slots];
            add_thread(prog, &mut clist, 0, slots, ctx);
        }
        if clist.dense.is_empty() && matched.is_some() {
            // No live threads and no new starts will be added: done.
            break;
        }

        let mut i = 0;
        while i < clist.dense.len() {
            let (pc, slots) = {
                let t = &clist.dense[i];
                (t.pc, t.slots.clone())
            };
            match &prog.insts[pc] {
                Inst::Match => {
                    matched = Some(slots);
                    // All later threads in clist have lower priority.
                    break;
                }
                Inst::Char(c) => {
                    if cur == Some(*c) {
                        let next = next_ctx(&chars, step, haystack.len());
                        add_thread(prog, &mut nlist, pc + 1, slots, next);
                    }
                }
                Inst::Any => {
                    if matches!(cur, Some(c) if c != '\n') {
                        let next = next_ctx(&chars, step, haystack.len());
                        add_thread(prog, &mut nlist, pc + 1, slots, next);
                    }
                }
                Inst::Class(set) => {
                    if matches!(cur, Some(c) if set.contains(c)) {
                        let next = next_ctx(&chars, step, haystack.len());
                        add_thread(prog, &mut nlist, pc + 1, slots, next);
                    }
                }
                // Zero-width instructions are resolved inside add_thread.
                _ => unreachable!("epsilon inst {pc} escaped add_thread"),
            }
            i += 1;
        }

        std::mem::swap(&mut clist, &mut nlist);
        nlist.clear();
        if cur.is_none() {
            break;
        }
    }
    matched
}

/// Position context used to evaluate zero-width assertions.
#[derive(Clone, Copy)]
struct Ctx {
    at: usize,
    cur: Option<char>,
    prev: Option<char>,
    hay_len: usize,
}

fn next_ctx(chars: &[(usize, char)], step: usize, hay_len: usize) -> Ctx {
    let at = chars.get(step + 1).map_or(hay_len, |&(i, _)| i);
    Ctx {
        at,
        cur: chars.get(step + 1).map(|&(_, c)| c),
        prev: chars.get(step).map(|&(_, c)| c),
        hay_len,
    }
}

struct Thread {
    pc: usize,
    slots: Slots,
}

/// A priority-ordered list of threads with O(1) de-duplication by pc.
struct ThreadList {
    dense: Vec<Thread>,
    seen: Vec<bool>,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList { dense: Vec::new(), seen: vec![false; n] }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.seen.iter_mut().for_each(|s| *s = false);
    }
}

fn is_word(c: Option<char>) -> bool {
    matches!(c, Some(c) if c == '_' || c.is_alphanumeric())
}

/// Add `pc` (following epsilon transitions) to `list` in priority order.
fn add_thread(prog: &Program, list: &mut ThreadList, pc: usize, slots: Slots, ctx: Ctx) {
    if list.seen[pc] {
        return;
    }
    list.seen[pc] = true;
    match &prog.insts[pc] {
        Inst::Jmp(t) => add_thread(prog, list, *t, slots, ctx),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, slots.clone(), ctx);
            add_thread(prog, list, *b, slots, ctx);
        }
        Inst::Save(i) => {
            let mut slots = slots;
            slots[*i] = Some(ctx.at);
            add_thread(prog, list, pc + 1, slots, ctx);
        }
        Inst::Start => {
            if ctx.at == 0 {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::End => {
            if ctx.at == ctx.hay_len {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::WordBoundary => {
            if is_word(ctx.prev) != is_word(ctx.cur) {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        _ => list.dense.push(Thread { pc, slots }),
    }
}

#[cfg(test)]
mod tests {
    use crate::Regex;

    #[test]
    fn leftmost_first_alternation() {
        let re = Regex::new("ab|abc").unwrap();
        assert_eq!(re.find("zabc").unwrap().as_str(), "ab");
        let re = Regex::new("abc|ab").unwrap();
        assert_eq!(re.find("zabc").unwrap().as_str(), "abc");
    }

    #[test]
    fn find_at_respects_offset() {
        let re = Regex::new(r"\d+").unwrap();
        let h = "12 and 34";
        assert_eq!(re.find_at(h, 2).unwrap().as_str(), "34");
    }

    #[test]
    fn anchors_with_offset() {
        let re = Regex::new(r"^\d").unwrap();
        assert!(re.find_at("1x2", 2).is_none());
    }

    #[test]
    fn word_boundary_with_offset_context() {
        // Starting mid-word: `\b` must see the char before `from`.
        let re = Regex::new(r"\bx").unwrap();
        assert!(re.find_at("ax", 1).is_none());
        assert!(re.find_at(" x", 1).is_some());
    }

    #[test]
    fn repeated_group_captures_last_iteration() {
        let re = Regex::new("(a|b)+").unwrap();
        let c = re.captures("abab").unwrap();
        assert_eq!(c.get(0).unwrap().as_str(), "abab");
        assert_eq!(c.get(1).unwrap().as_str(), "b");
    }

    #[test]
    fn no_catastrophic_backtracking() {
        // (a+)+b on a long run of 'a's with no 'b' — linear for a Pike VM.
        let re = Regex::new("(a+)+b").unwrap();
        let hay = "a".repeat(2000);
        assert!(re.find(&hay).is_none());
    }

    #[test]
    fn multibyte_haystack_offsets() {
        let re = Regex::new(r"\d+").unwrap();
        let h = "€€ 42 €€";
        let m = re.find(h).unwrap();
        assert_eq!(m.as_str(), "42");
        assert_eq!(&h[m.range()], "42");
    }
}
