//! Compilation from [`Ast`] to a Thompson-style instruction program.

use crate::ast::{Ast, ClassSet};

/// One VM instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Match a single literal character.
    Char(char),
    /// Match any character except `\n`.
    Any,
    /// Match any character in the class.
    Class(ClassSet),
    /// Zero-width: assert start of haystack.
    Start,
    /// Zero-width: assert end of haystack.
    End,
    /// Zero-width: assert a word boundary.
    WordBoundary,
    /// Store the current position into capture slot `.0`.
    Save(usize),
    /// Try `.0` first, then `.1` (priority encodes greediness).
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Accept.
    Match,
}

/// A compiled instruction program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction sequence; entry point is instruction 0.
    pub insts: Vec<Inst>,
    /// Number of capture slots (2 per group, including group 0).
    pub num_slots: usize,
}

/// Compile `ast` into a [`Program`] wrapped in the implicit group 0.
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler {
        insts: Vec::new(),
        max_group: 0,
    };
    c.max_group = max_group_index(ast);
    c.push(Inst::Save(0));
    c.emit(ast);
    c.push(Inst::Save(1));
    c.push(Inst::Match);
    Program {
        insts: c.insts,
        num_slots: 2 * (c.max_group + 1),
    }
}

/// Upper bound on the number of instructions `compile` would emit for
/// `ast`, with saturating arithmetic. Counted repeats expand during
/// compilation, so callers check this *before* compiling to reject
/// repetition bombs like `(a{1000}){1000}` without allocating anything.
pub fn cost(ast: &Ast) -> usize {
    match ast {
        Ast::Empty => 0,
        Ast::Literal(_)
        | Ast::AnyChar
        | Ast::Class(_)
        | Ast::StartAnchor
        | Ast::EndAnchor
        | Ast::WordBoundary => 1,
        Ast::Concat(parts) => parts.iter().fold(0usize, |a, p| a.saturating_add(cost(p))),
        Ast::Alternate(branches) => branches
            .iter()
            .fold(0usize, |a, b| a.saturating_add(cost(b)))
            .saturating_add(2 * branches.len().saturating_sub(1)),
        Ast::Group(inner, _) => cost(inner).saturating_add(2),
        Ast::Repeat { node, min, max, .. } => {
            let body = cost(node);
            let mandatory = body.saturating_mul(*min as usize);
            let tail = match max {
                None => body.saturating_add(2),
                Some(max) => body
                    .saturating_add(1)
                    .saturating_mul((max.saturating_sub(*min)) as usize),
            };
            mandatory.saturating_add(tail)
        }
    }
}

fn max_group_index(ast: &Ast) -> usize {
    match ast {
        Ast::Group(inner, i) => (*i).max(max_group_index(inner)),
        Ast::Concat(v) | Ast::Alternate(v) => v.iter().map(max_group_index).max().unwrap_or(0),
        Ast::Repeat { node, .. } => max_group_index(node),
        _ => 0,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    max_group: usize,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn emit(&mut self, ast: &Ast) {
        match ast {
            Ast::Empty => {}
            Ast::Literal(c) => {
                self.push(Inst::Char(*c));
            }
            Ast::AnyChar => {
                self.push(Inst::Any);
            }
            Ast::Class(set) => {
                self.push(Inst::Class(set.clone()));
            }
            Ast::StartAnchor => {
                self.push(Inst::Start);
            }
            Ast::EndAnchor => {
                self.push(Inst::End);
            }
            Ast::WordBoundary => {
                self.push(Inst::WordBoundary);
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit(p);
                }
            }
            Ast::Alternate(branches) => {
                // Chain of splits, earlier branches preferred.
                let mut jmp_ends = Vec::new();
                for (i, b) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split = self.push(Inst::Split(0, 0));
                        let body = self.here();
                        self.emit(b);
                        jmp_ends.push(self.push(Inst::Jmp(0)));
                        let next = self.here();
                        self.insts[split] = Inst::Split(body, next);
                    } else {
                        self.emit(b);
                    }
                }
                let end = self.here();
                for j in jmp_ends {
                    self.insts[j] = Inst::Jmp(end);
                }
            }
            Ast::Group(inner, idx) => {
                self.push(Inst::Save(2 * idx));
                self.emit(inner);
                self.push(Inst::Save(2 * idx + 1));
            }
            Ast::Repeat {
                node,
                min,
                max,
                greedy,
            } => {
                self.emit_repeat(node, *min, *max, *greedy);
            }
        }
    }

    fn emit_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>, greedy: bool) {
        // Mandatory prefix: `min` copies.
        for _ in 0..min {
            self.emit(node);
        }
        match max {
            None => {
                // Star loop for the unbounded tail:
                //   L1: Split(L2, L3) ; L2: node ; Jmp(L1) ; L3:
                let l1 = self.push(Inst::Split(0, 0));
                let l2 = self.here();
                self.emit(node);
                self.push(Inst::Jmp(l1));
                let l3 = self.here();
                self.insts[l1] = if greedy {
                    Inst::Split(l2, l3)
                } else {
                    Inst::Split(l3, l2)
                };
            }
            Some(max) => {
                // (max - min) optional copies, each guarded by a split that
                // can skip the entire remaining tail.
                let mut splits = Vec::new();
                for _ in min..max {
                    let s = self.push(Inst::Split(0, 0));
                    let body = self.here();
                    self.emit(node);
                    splits.push((s, body));
                }
                let end = self.here();
                for (s, body) in splits {
                    self.insts[s] = if greedy {
                        Inst::Split(body, end)
                    } else {
                        Inst::Split(end, body)
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn prog(pat: &str) -> Program {
        compile(&parse(pat).unwrap())
    }

    #[test]
    fn literal_program_shape() {
        let p = prog("ab");
        assert_eq!(
            p.insts,
            vec![
                Inst::Save(0),
                Inst::Char('a'),
                Inst::Char('b'),
                Inst::Save(1),
                Inst::Match
            ]
        );
        assert_eq!(p.num_slots, 2);
    }

    #[test]
    fn group_slots_counted() {
        let p = prog("(a)(b)");
        assert_eq!(p.num_slots, 6);
    }

    #[test]
    fn star_compiles_to_loop() {
        let p = prog("a*");
        // Save(0), Split, Char(a), Jmp, Save(1), Match
        assert_eq!(p.insts.len(), 6);
        assert!(matches!(p.insts[1], Inst::Split(2, 4)));
    }

    #[test]
    fn lazy_star_flips_split() {
        let p = prog("a*?");
        assert!(matches!(p.insts[1], Inst::Split(4, 2)));
    }

    #[test]
    fn bounded_repeat_expands() {
        let p = prog("a{2,4}");
        let chars = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Char('a')))
            .count();
        assert_eq!(chars, 4);
        let splits = p
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Split(_, _)))
            .count();
        assert_eq!(splits, 2);
    }
}
