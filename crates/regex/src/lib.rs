//! # briq-regex
//!
//! A small, dependency-free regular-expression engine used by the BriQ
//! pipeline for quantity and unit extraction from text and table cells.
//!
//! The paper ("Bridging Quantities in Tables and Text", ICDE 2019, §III)
//! extracts quantity mentions with regular-expression patterns such as
//! `\d+\s*\p{Currency_Symbol}`. This crate provides exactly the feature set
//! those patterns need:
//!
//! * literals, `.`, alternation `|`, grouping `( … )` with capture slots,
//! * quantifiers `*`, `+`, `?`, `{m}`, `{m,}`, `{m,n}` (greedy and lazy),
//! * character classes `[a-z0-9,]`, negated classes, and the escapes
//!   `\d \D \w \W \s \S`,
//! * anchors `^` and `$`, word boundary `\b`,
//! * a useful subset of Unicode properties: `\p{Currency_Symbol}` (aka
//!   `\p{Sc}`), `\p{L}`, `\p{N}`, `\p{P}`, and their negations `\P{…}`.
//!
//! The implementation is the classic Thompson construction executed by a
//! Pike VM, giving worst-case `O(len(pattern) · len(input))` matching with
//! no pathological backtracking — important because BriQ runs extraction
//! over millions of documents (§VIII-C).
//!
//! ## Example
//!
//! ```
//! use briq_regex::Regex;
//!
//! let re = Regex::new(r"\d+\s*\p{Currency_Symbol}").unwrap();
//! let m = re.find("costs 37 € in Germany").unwrap();
//! assert_eq!(m.as_str(), "37 €");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod ast;
mod parser;
mod program;
mod unicode;
mod vm;

pub use ast::{Ast, ClassItem, ClassSet, UnicodeProperty};
pub use parser::{ParseError, MAX_NESTING};
pub use program::{Inst, Program};
pub use unicode::is_currency_symbol;

use std::fmt;

/// Cap on compiled program size. Counted repeats expand at compile time,
/// so `\d{100000}` (or nested repetition bombs) would otherwise allocate
/// an instruction list proportional to the repeat product.
pub const MAX_PROGRAM_INSTS: usize = 1 << 16;

/// A compiled regular expression.
///
/// Construction via [`Regex::new`] parses and compiles the pattern once;
/// matching methods may then be called any number of times. `Regex` is
/// `Send + Sync` and cheap to share behind an `Arc`.
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

/// A single match of a regex in a haystack, with byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'h> {
    haystack: &'h str,
    start: usize,
    end: usize,
}

impl<'h> Match<'h> {
    /// Byte offset of the start of the match.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Byte offset one past the end of the match.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The matched text.
    pub fn as_str(&self) -> &'h str {
        &self.haystack[self.start..self.end]
    }

    /// The byte range of the match.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// True if the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }
}

/// Capture groups of a single match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'h> {
    haystack: &'h str,
    slots: Vec<Option<usize>>,
}

impl<'h> Captures<'h> {
    /// The match for capture group `i`, if the group participated.
    pub fn get(&self, i: usize) -> Option<Match<'h>> {
        let (s, e) = (*self.slots.get(2 * i)?, *self.slots.get(2 * i + 1)?);
        match (s, e) {
            (Some(s), Some(e)) => Some(Match {
                haystack: self.haystack,
                start: s,
                end: e,
            }),
            _ => None,
        }
    }

    /// Number of capture groups (including group 0).
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// True when there are no capture slots at all (never the case for a
    /// successful match, which always has group 0).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Errors from pattern compilation and budgeted matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The pattern failed to parse.
    Parse(ParseError),
    /// The pattern would compile to more than [`MAX_PROGRAM_INSTS`]
    /// instructions (counted-repeat expansion bomb).
    ProgramTooLarge {
        /// Instructions the pattern would expand to.
        insts: usize,
        /// The enforced cap.
        max: usize,
    },
    /// A `try_*` matching call ran out of its step budget.
    StepBudgetExceeded {
        /// The budget that was exhausted.
        max_steps: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(inner) => write!(f, "regex parse error: {inner}"),
            Error::ProgramTooLarge { insts, max } => {
                write!(f, "pattern expands to {insts} instructions (cap {max})")
            }
            Error::StepBudgetExceeded { max_steps } => {
                write!(f, "regex step budget of {max_steps} exceeded")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(inner: ParseError) -> Self {
        Error::Parse(inner)
    }
}

impl Regex {
    /// Parse and compile `pattern`.
    pub fn new(pattern: &str) -> Result<Self, Error> {
        let ast = parser::parse(pattern)?;
        let insts = program::cost(&ast);
        if insts > MAX_PROGRAM_INSTS {
            return Err(Error::ProgramTooLarge {
                insts,
                max: MAX_PROGRAM_INSTS,
            });
        }
        let program = program::compile(&ast);
        Ok(Regex {
            pattern: pattern.to_string(),
            program,
        })
    }

    /// The original pattern string.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including the implicit group 0.
    pub fn captures_len(&self) -> usize {
        self.program.num_slots / 2
    }

    /// Does the regex match anywhere in `haystack`?
    pub fn is_match(&self, haystack: &str) -> bool {
        self.find(haystack).is_some()
    }

    /// Leftmost match in `haystack`.
    pub fn find<'h>(&self, haystack: &'h str) -> Option<Match<'h>> {
        self.find_at(haystack, 0)
    }

    /// Leftmost match starting at or after byte offset `start`.
    ///
    /// `start` must lie on a char boundary of `haystack`.
    pub fn find_at<'h>(&self, haystack: &'h str, start: usize) -> Option<Match<'h>> {
        // With an unlimited budget, the VM cannot fail.
        self.try_find_at(haystack, start, usize::MAX)
            .unwrap_or_default()
    }

    /// Does the regex match anywhere in `haystack`, using at most
    /// `max_steps` units of VM work?
    pub fn try_is_match(&self, haystack: &str, max_steps: usize) -> Result<bool, Error> {
        Ok(self.try_find(haystack, max_steps)?.is_some())
    }

    /// Leftmost match with a step budget: `Err(StepBudgetExceeded)` when
    /// the search would take more than `max_steps` units of VM work.
    pub fn try_find<'h>(
        &self,
        haystack: &'h str,
        max_steps: usize,
    ) -> Result<Option<Match<'h>>, Error> {
        self.try_find_at(haystack, 0, max_steps)
    }

    /// Like [`Regex::try_find`], considering matches at or after `start`.
    pub fn try_find_at<'h>(
        &self,
        haystack: &'h str,
        start: usize,
        max_steps: usize,
    ) -> Result<Option<Match<'h>>, Error> {
        let slots = vm::run(&self.program, haystack, start, max_steps)
            .map_err(|vm::StepLimitExceeded| Error::StepBudgetExceeded { max_steps })?;
        Ok(slots.and_then(
            |slots| match (slots.first().copied(), slots.get(1).copied()) {
                (Some(Some(start)), Some(Some(end))) => Some(Match {
                    haystack,
                    start,
                    end,
                }),
                _ => None,
            },
        ))
    }

    /// Leftmost match with all capture groups.
    pub fn captures<'h>(&self, haystack: &'h str) -> Option<Captures<'h>> {
        self.captures_at(haystack, 0)
    }

    /// Like [`Regex::captures`], starting at byte offset `start`.
    pub fn captures_at<'h>(&self, haystack: &'h str, start: usize) -> Option<Captures<'h>> {
        match vm::run(&self.program, haystack, start, usize::MAX) {
            Ok(slots) => slots.map(|slots| Captures { haystack, slots }),
            Err(_) => None,
        }
    }

    /// Iterator over all non-overlapping matches.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> FindIter<'r, 'h> {
        FindIter {
            re: self,
            haystack,
            at: 0,
        }
    }

    /// Replace every match with `rep` (a literal string, no `$n` expansion).
    pub fn replace_all(&self, haystack: &str, rep: &str) -> String {
        let mut out = String::with_capacity(haystack.len());
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push_str(&haystack[last..m.start()]);
            out.push_str(rep);
            last = m.end();
        }
        out.push_str(&haystack[last..]);
        out
    }

    /// Split `haystack` on matches of the regex.
    pub fn split<'h>(&self, haystack: &'h str) -> Vec<&'h str> {
        let mut out = Vec::new();
        let mut last = 0;
        for m in self.find_iter(haystack) {
            out.push(&haystack[last..m.start()]);
            last = m.end();
        }
        out.push(&haystack[last..]);
        out
    }
}

/// Iterator returned by [`Regex::find_iter`].
#[derive(Debug)]
pub struct FindIter<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    at: usize,
}

impl<'r, 'h> Iterator for FindIter<'r, 'h> {
    type Item = Match<'h>;

    fn next(&mut self) -> Option<Match<'h>> {
        if self.at > self.haystack.len() {
            return None;
        }
        let m = self.re.find_at(self.haystack, self.at)?;
        if m.is_empty() {
            // Advance past the empty match to guarantee progress.
            self.at = next_char_boundary(self.haystack, m.end());
        } else {
            self.at = m.end();
        }
        Some(m)
    }
}

fn next_char_boundary(s: &str, at: usize) -> usize {
    if at >= s.len() {
        return s.len() + 1;
    }
    let mut i = at + 1;
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        let re = Regex::new("abc").unwrap();
        assert!(re.is_match("xxabcxx"));
        let m = re.find("xxabcxx").unwrap();
        assert_eq!((m.start(), m.end()), (2, 5));
        assert_eq!(m.as_str(), "abc");
    }

    #[test]
    fn digits_and_currency() {
        let re = Regex::new(r"\d+\s*\p{Currency_Symbol}").unwrap();
        let m = re.find("that is 37 € total").unwrap();
        assert_eq!(m.as_str(), "37 €");
        assert!(re.is_match("price: 100$"));
        assert!(!re.is_match("price: one hundred"));
    }

    #[test]
    fn alternation_prefers_leftmost() {
        let re = Regex::new("cat|category").unwrap();
        let m = re.find("a category").unwrap();
        assert_eq!(m.as_str(), "cat");
    }

    #[test]
    fn greedy_and_lazy() {
        let g = Regex::new("a.*b").unwrap();
        assert_eq!(g.find("aXbXXb").unwrap().as_str(), "aXbXXb");
        let l = Regex::new("a.*?b").unwrap();
        assert_eq!(l.find("aXbXXb").unwrap().as_str(), "aXb");
    }

    #[test]
    fn bounded_repeats() {
        let re = Regex::new(r"\d{2,4}").unwrap();
        assert_eq!(re.find("x123456x").unwrap().as_str(), "1234");
        assert_eq!(re.find("x1x").map(|m| m.as_str().to_string()), None);
        let re = Regex::new(r"a{3}").unwrap();
        assert!(re.is_match("aaa"));
        assert!(!re.is_match("aa"));
    }

    #[test]
    fn classes() {
        let re = Regex::new(r"[0-9][0-9,\.]*").unwrap();
        assert_eq!(re.find("sum 3,263 total").unwrap().as_str(), "3,263");
        let neg = Regex::new(r"[^a-z]+").unwrap();
        assert_eq!(neg.find("abcDEF").unwrap().as_str(), "DEF");
    }

    #[test]
    fn anchors() {
        let re = Regex::new(r"^\d+$").unwrap();
        assert!(re.is_match("12345"));
        assert!(!re.is_match("12345x"));
        assert!(!re.is_match("x12345"));
    }

    #[test]
    fn word_boundary() {
        let re = Regex::new(r"\b\d+\b").unwrap();
        assert_eq!(re.find("win10 or 42 things").unwrap().as_str(), "42");
    }

    #[test]
    fn captures_groups() {
        let re = Regex::new(r"(\d+)\.(\d+)").unwrap();
        let c = re.captures("pi is 3.14 ok").unwrap();
        assert_eq!(c.get(0).unwrap().as_str(), "3.14");
        assert_eq!(c.get(1).unwrap().as_str(), "3");
        assert_eq!(c.get(2).unwrap().as_str(), "14");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn optional_group_unset() {
        let re = Regex::new(r"(\d+)(\.\d+)?").unwrap();
        let c = re.captures("42 ").unwrap();
        assert_eq!(c.get(1).unwrap().as_str(), "42");
        assert!(c.get(2).is_none());
    }

    #[test]
    fn find_iter_collects_all() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<&str> = re.find_iter("a1 b22 c333").map(|m| m.as_str()).collect();
        assert_eq!(all, vec!["1", "22", "333"]);
    }

    #[test]
    fn find_iter_empty_match_progresses() {
        let re = Regex::new("x*").unwrap();
        let n = re.find_iter("abc").count();
        assert_eq!(n, 4); // empty match at 0,1,2,3
    }

    #[test]
    fn replace_all_and_split() {
        let re = Regex::new(r"\s+").unwrap();
        assert_eq!(re.replace_all("a  b \t c", " "), "a b c");
        assert_eq!(re.split("a  b c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn unicode_letters() {
        let re = Regex::new(r"\p{L}+").unwrap();
        assert_eq!(re.find("42 Säcke").unwrap().as_str(), "Säcke");
        let re = Regex::new(r"\P{L}+").unwrap();
        assert_eq!(re.find("ab 12 cd").unwrap().as_str(), " 12 ");
    }

    #[test]
    fn escaped_metachars() {
        let re = Regex::new(r"\$\d+\.\d{2}").unwrap();
        assert_eq!(re.find("pay $12.50 now").unwrap().as_str(), "$12.50");
    }

    #[test]
    fn parse_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new("a{3,2}").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"\p{Bogus}").is_err());
    }

    #[test]
    fn repetition_bomb_rejected() {
        match Regex::new("(a{1000}){1000}") {
            Err(Error::ProgramTooLarge { insts, max }) => {
                assert!(insts > max);
                assert_eq!(max, MAX_PROGRAM_INSTS);
            }
            other => panic!("expected ProgramTooLarge, got {other:?}"),
        }
        // A large-but-reasonable repeat still compiles.
        assert!(Regex::new(r"\d{1,500}").is_ok());
    }

    #[test]
    fn nesting_bomb_rejected() {
        let deep = format!("{}a{}", "(".repeat(500), ")".repeat(500));
        match Regex::new(&deep) {
            Err(Error::Parse(ParseError::NestingTooDeep(max))) => {
                assert_eq!(max, MAX_NESTING);
            }
            other => panic!("expected NestingTooDeep, got {other:?}"),
        }
        let ok = format!("{}a{}", "(".repeat(50), ")".repeat(50));
        assert!(Regex::new(&ok).is_ok());
    }

    #[test]
    fn error_display_messages() {
        let parse = Regex::new("(").unwrap_err();
        assert_eq!(parse.to_string(), "regex parse error: unclosed group");
        let too_large = Error::ProgramTooLarge { insts: 99, max: 10 };
        assert_eq!(
            too_large.to_string(),
            "pattern expands to 99 instructions (cap 10)"
        );
        let budget = Error::StepBudgetExceeded { max_steps: 7 };
        assert_eq!(budget.to_string(), "regex step budget of 7 exceeded");
    }

    #[test]
    fn plus_and_percent_patterns() {
        // The complex-quantity guard from §III: '5 ± 1 km per hour'.
        let re = Regex::new(r"\d+\s*±\s*\d+").unwrap();
        assert!(re.is_match("going 5 ± 1 km per hour"));
        let pct = Regex::new(r"\d+(\.\d+)?%").unwrap();
        assert_eq!(pct.find("up 1.5% year on year").unwrap().as_str(), "1.5%");
    }
}
