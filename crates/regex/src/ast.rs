//! Abstract syntax tree for parsed regular expressions.

/// Supported Unicode property classes for `\p{…}` / `\P{…}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnicodeProperty {
    /// `\p{Currency_Symbol}` / `\p{Sc}` — currency symbols ($, €, ¥, …).
    CurrencySymbol,
    /// `\p{L}` / `\p{Letter}` — alphabetic characters.
    Letter,
    /// `\p{N}` / `\p{Number}` — numeric characters.
    Number,
    /// `\p{P}` / `\p{Punctuation}` — punctuation.
    Punctuation,
    /// `\p{Z}` / `\p{Separator}` — whitespace separators.
    Separator,
}

impl UnicodeProperty {
    /// Resolve a property name as written inside `\p{…}`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "Currency_Symbol" | "Sc" => Some(Self::CurrencySymbol),
            "L" | "Letter" => Some(Self::Letter),
            "N" | "Number" => Some(Self::Number),
            "P" | "Punctuation" => Some(Self::Punctuation),
            "Z" | "Separator" => Some(Self::Separator),
            _ => None,
        }
    }

    /// Membership test for `c`.
    pub fn contains(self, c: char) -> bool {
        match self {
            Self::CurrencySymbol => crate::unicode::is_currency_symbol(c),
            Self::Letter => c.is_alphabetic(),
            Self::Number => c.is_numeric(),
            Self::Punctuation => c.is_ascii_punctuation() || crate::unicode::is_unicode_punct(c),
            Self::Separator => c.is_whitespace(),
        }
    }
}

/// One item of a character class: a single char, an inclusive range, or a
/// named/Unicode sub-class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive character range `a-z`.
    Range(char, char),
    /// `\d` — ASCII digits.
    Digit,
    /// `\w` — word characters (`[0-9A-Za-z_]` plus Unicode alphanumerics).
    Word,
    /// `\s` — whitespace.
    Space,
    /// A Unicode property, possibly negated (for `\P{…}`).
    Property(UnicodeProperty, bool),
}

impl ClassItem {
    /// Membership test for `c`.
    pub fn contains(self, c: char) -> bool {
        match self {
            Self::Char(x) => c == x,
            Self::Range(lo, hi) => lo <= c && c <= hi,
            Self::Digit => c.is_ascii_digit(),
            Self::Word => c == '_' || c.is_alphanumeric(),
            Self::Space => c.is_whitespace(),
            Self::Property(p, negated) => p.contains(c) != negated,
        }
    }
}

/// A (possibly negated) set of [`ClassItem`]s — the semantics of `[...]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// Member items; a char matches the set if it matches any item.
    pub items: Vec<ClassItem>,
    /// If true, the set matches chars *not* covered by `items`.
    pub negated: bool,
}

impl ClassSet {
    /// A set containing exactly the given items.
    pub fn new(items: Vec<ClassItem>) -> Self {
        ClassSet {
            items,
            negated: false,
        }
    }

    /// Membership test for `c`.
    pub fn contains(&self, c: char) -> bool {
        self.items.iter().any(|i| i.contains(c)) != self.negated
    }
}

/// Parsed regular-expression syntax tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty regex (matches the empty string).
    Empty,
    /// A literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class.
    Class(ClassSet),
    /// `^` — start of haystack.
    StartAnchor,
    /// `$` — end of haystack.
    EndAnchor,
    /// `\b` — word boundary (between `\w` and non-`\w`).
    WordBoundary,
    /// Concatenation of sub-expressions.
    Concat(Vec<Ast>),
    /// Alternation `a|b|c`; earlier branches are preferred.
    Alternate(Vec<Ast>),
    /// Capturing group; `index` is the 1-based capture index.
    Group(Box<Ast>, usize),
    /// Repetition `e{min,max}` (`max == None` means unbounded). `greedy`
    /// selects between greedy and lazy matching.
    Repeat {
        node: Box<Ast>,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn property_names_resolve() {
        assert_eq!(
            UnicodeProperty::from_name("Sc"),
            Some(UnicodeProperty::CurrencySymbol)
        );
        assert_eq!(
            UnicodeProperty::from_name("Currency_Symbol"),
            Some(UnicodeProperty::CurrencySymbol)
        );
        assert_eq!(
            UnicodeProperty::from_name("L"),
            Some(UnicodeProperty::Letter)
        );
        assert_eq!(UnicodeProperty::from_name("nope"), None);
    }

    #[test]
    fn class_items_match() {
        assert!(ClassItem::Char('a').contains('a'));
        assert!(!ClassItem::Char('a').contains('b'));
        assert!(ClassItem::Range('0', '9').contains('5'));
        assert!(ClassItem::Digit.contains('7'));
        assert!(!ClassItem::Digit.contains('x'));
        assert!(ClassItem::Word.contains('_'));
        assert!(ClassItem::Space.contains('\t'));
        assert!(ClassItem::Property(UnicodeProperty::CurrencySymbol, false).contains('€'));
        assert!(ClassItem::Property(UnicodeProperty::CurrencySymbol, true).contains('x'));
    }

    #[test]
    fn negated_set() {
        let set = ClassSet {
            items: vec![ClassItem::Range('a', 'z')],
            negated: true,
        };
        assert!(!set.contains('m'));
        assert!(set.contains('M'));
        assert!(set.contains('5'));
    }
}
