//! # briq-json
//!
//! A small, dependency-free JSON library for the BriQ workspace: a
//! [`Value`] model, a hardened parser (depth-capped, panic-free on
//! arbitrary input), a compact/pretty writer, and the [`ToJson`] /
//! [`FromJson`] traits with `macro_rules!` helpers that stand in for
//! derive macros ([`json_struct!`], [`json_unit_enum!`], [`json_enum!`]).
//!
//! The workspace targets fully offline builds; this crate replaces the
//! external `serde`/`serde_json` pair for the formats BriQ actually needs:
//! model persistence, corpus archival, alignment output, and the
//! diagnostics JSONL stream of `briq-align`.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts before failing (instead of
/// overflowing the stack on adversarial input like `[[[[…`).
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (all JSON numbers are f64 here).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// For externally-tagged enums: if the value is a single-entry object
    /// `{variant: payload}`, return the payload.
    pub fn get_variant(&self, variant: &str) -> Option<&Value> {
        match self.as_object() {
            Some([(k, v)]) if k == variant => Some(v),
            _ => None,
        }
    }

    /// Serialize compactly.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }
}

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Construct an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Convenient `Result` alias.
pub type Result<T> = std::result::Result<T, JsonError>;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // Rust's f64 Display is shortest-round-trip.
                out.push_str(&format!("{n}"));
            } else {
                // JSON has no NaN/Infinity; degrade to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a JSON document into a [`Value`]. Panic-free on arbitrary input;
/// nesting deeper than [`MAX_DEPTH`] is rejected.
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(JsonError::new(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(JsonError::new(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(JsonError::new(format!(
                "unexpected byte {:?} at {}",
                c as char, self.pos
            ))),
            None => Err(JsonError::new("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number bytes"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| JsonError::new(format!("invalid number {text:?}")))?;
        Ok(Value::Num(n))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat_keyword("\\u") {
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue; // pos already advanced past the escape
                        }
                        _ => return Err(JsonError::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 char (input is a &str, so this is
                    // always on a boundary).
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| JsonError::new("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| JsonError::new("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }
}

// ---------------------------------------------------------------------------
// ToJson / FromJson traits
// ---------------------------------------------------------------------------

/// Serialize a Rust value into a [`Value`].
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Value;
}

/// Deserialize a Rust value from a [`Value`].
pub trait FromJson: Sized {
    /// Convert from a JSON value.
    fn from_json(v: &Value) -> Result<Self>;
}

/// Serialize to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(t: &T) -> String {
    t.to_json().to_string_compact()
}

/// Serialize to a pretty JSON string.
pub fn to_string_pretty<T: ToJson + ?Sized>(t: &T) -> String {
    t.to_json().to_string_pretty()
}

/// Parse and convert from a JSON string.
pub fn from_str<T: FromJson>(s: &str) -> Result<T> {
    T::from_json(&parse(s)?)
}

/// Look up `key` in object entries and convert; missing keys error.
pub fn field<T: FromJson>(obj: &[(String, Value)], key: &str) -> Result<T> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_json(v).map_err(|e| JsonError::new(format!("field {key:?}: {e}"))),
        None => Err(JsonError::new(format!("missing field {key:?}"))),
    }
}

/// Look up `key` in object entries and convert; a missing key yields
/// `default` instead of an error. For fields added after a format
/// shipped, so older serialized artifacts keep loading.
pub fn field_or<T: FromJson>(obj: &[(String, Value)], key: &str, default: T) -> Result<T> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_json(v).map_err(|e| JsonError::new(format!("field {key:?}: {e}"))),
        None => Ok(default),
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self> {
        v.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self> {
        match v {
            Value::Num(n) => Ok(*n),
            // Non-finite numbers serialize as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(JsonError::new("expected number")),
        }
    }
}

macro_rules! int_json {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl FromJson for $ty {
            fn from_json(v: &Value) -> Result<Self> {
                let n = v.as_f64().ok_or_else(|| JsonError::new("expected integer"))?;
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(JsonError::new(format!("expected integer, got {n}")));
                }
                if n < <$ty>::MIN as f64 || n > <$ty>::MAX as f64 {
                    return Err(JsonError::new(format!("integer {n} out of range")));
                }
                Ok(n as $ty)
            }
        }
    )*};
}

int_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self> {
        v.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Value) -> Result<Self> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::new("expected 2-element array")),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Value) -> Result<Self> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::new("expected 3-element array")),
        }
    }
}

impl<K: ToJson + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        // Entry list: JSON object keys must be strings, ours may be tuples.
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: FromJson + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self> {
        let mut map = BTreeMap::new();
        for entry in v
            .as_array()
            .ok_or_else(|| JsonError::new("expected entry list"))?
        {
            match entry.as_array() {
                Some([k, val]) => {
                    map.insert(K::from_json(k)?, V::from_json(val)?);
                }
                _ => return Err(JsonError::new("expected [key, value] entry")),
            }
        }
        Ok(map)
    }
}

// ---------------------------------------------------------------------------
// Derive-style macros
// ---------------------------------------------------------------------------

/// Implement [`ToJson`]/[`FromJson`] for a struct with named fields.
///
/// ```
/// struct P { x: f64, y: f64 }
/// briq_json::json_struct!(P { x, y });
/// ```
#[macro_export]
macro_rules! json_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $( (stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field)), )+
                ])
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Value) -> $crate::Result<Self> {
                let obj = v
                    .as_object()
                    .ok_or_else(|| $crate::JsonError::new(concat!("expected ", stringify!($name), " object")))?;
                Ok($name {
                    $( $field: $crate::field(obj, stringify!($field))?, )+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a fieldless enum, serialized as
/// the variant name string.
#[macro_export]
macro_rules! json_unit_enum {
    ($name:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Value {
                let s = match self {
                    $( $name::$variant => stringify!($variant), )+
                };
                $crate::Value::Str(s.to_string())
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Value) -> $crate::Result<Self> {
                match v.as_str() {
                    $( Some(stringify!($variant)) => Ok($name::$variant), )+
                    _ => Err($crate::JsonError::new(concat!(
                        "unknown ", stringify!($name), " variant"
                    ))),
                }
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for an enum whose variants are unit
/// or single-payload tuples, serialized externally tagged
/// (`"Variant"` or `{"Variant": payload}`).
#[macro_export]
macro_rules! json_enum {
    ($name:ident { $($variant:ident $(($ty:ty))?),+ $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Value {
                $( $crate::json_enum!(@ser self, $name, $variant $(, $ty)?); )+
                unreachable!("non-exhaustive json_enum! for {}", stringify!($name))
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Value) -> $crate::Result<Self> {
                $( $crate::json_enum!(@de v, $name, $variant $(, $ty)?); )+
                Err($crate::JsonError::new(concat!(
                    "unknown ", stringify!($name), " variant"
                )))
            }
        }
    };
    (@ser $self:ident, $name:ident, $variant:ident) => {
        if let $name::$variant = $self {
            return $crate::Value::Str(stringify!($variant).to_string());
        }
    };
    (@ser $self:ident, $name:ident, $variant:ident, $ty:ty) => {
        if let $name::$variant(payload) = $self {
            return $crate::Value::Object(vec![(
                stringify!($variant).to_string(),
                $crate::ToJson::to_json(payload),
            )]);
        }
    };
    (@de $v:ident, $name:ident, $variant:ident) => {
        if $v.as_str() == Some(stringify!($variant)) {
            return Ok($name::$variant);
        }
    };
    (@de $v:ident, $name:ident, $variant:ident, $ty:ty) => {
        if let Some(inner) = $v.get_variant(stringify!($variant)) {
            return Ok($name::$variant(<$ty as $crate::FromJson>::from_json(inner)?));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-1.5", "1e3", "\"a b\""] {
            let v = parse(src).unwrap();
            let back = parse(&v.to_string_compact()).unwrap();
            assert_eq!(v, back, "{src}");
        }
    }

    #[test]
    fn roundtrip_structures() {
        let src = r#"{"a": [1, 2, {"b": "x\ny", "c": null}], "d": true}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_string_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn parse_errors_do_not_panic() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "\"", "01x", "{\"a\":}", "[]]", "\u{0}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn deep_nesting_rejected() {
        let deep = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""€""#).unwrap(), Value::Str("€".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        // lone surrogate → replacement char, not a panic
        assert_eq!(parse(r#""\ud800""#).unwrap(), Value::Str("\u{FFFD}".into()));
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456789.123456, f64::MAX] {
            let s = Value::Num(x).to_string_compact();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn nonfinite_becomes_null() {
        assert_eq!(Value::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_string_compact(), "null");
        assert!(f64::from_json(&Value::Null).unwrap().is_nan());
    }

    #[derive(Debug, PartialEq)]
    struct Pt {
        x: f64,
        y: usize,
        label: String,
        tags: Vec<String>,
        next: Option<f64>,
    }
    json_struct!(Pt {
        x,
        y,
        label,
        tags,
        next
    });

    #[test]
    fn struct_macro_roundtrip() {
        let p = Pt {
            x: 1.5,
            y: 3,
            label: "a\"b".into(),
            tags: vec!["t".into()],
            next: None,
        };
        let s = to_string(&p);
        let back: Pt = from_str(&s).unwrap();
        assert_eq!(back, p);
    }

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    json_unit_enum!(Color { Red, Green });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Point,
        Circle(f64),
        Label(String),
    }
    json_enum!(Shape { Point, Circle(f64), Label(String) });

    #[test]
    fn enum_macros_roundtrip() {
        for c in [Color::Red, Color::Green] {
            let s = to_string(&c);
            assert_eq!(from_str::<Color>(&s).unwrap(), c);
        }
        for sh in [Shape::Point, Shape::Circle(2.5), Shape::Label("x".into())] {
            let s = to_string(&sh);
            assert_eq!(from_str::<Shape>(&s).unwrap(), sh);
        }
        assert!(from_str::<Color>("\"Blue\"").is_err());
    }

    #[test]
    fn map_entry_list() {
        let mut m = BTreeMap::new();
        m.insert((1usize, 2usize), "a".to_string());
        m.insert((3, 4), "b".to_string());
        let s = to_string(&m);
        let back: BTreeMap<(usize, usize), String> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn missing_field_reports_name() {
        let err = from_str::<Pt>("{\"x\": 1}").unwrap_err();
        assert!(err.to_string().contains('y'), "{err}");
    }
}
