//! Edge-case tests for the ML substrate.

use briq_ml::dataset::Dataset;
use briq_ml::entropy::{normalized_entropy, shannon_entropy};
use briq_ml::gridsearch::{grid_search, product};
use briq_ml::kappa::fleiss_kappa;
use briq_ml::metrics::{precision_recall_f1, roc_auc, Prf};
use briq_ml::split::{random_split, stratified_split};
use briq_ml::tree::{DecisionTree, TreeConfig};
use briq_ml::{RandomForest, RandomForestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn tree_with_constant_labels() {
    let mut d = Dataset::new();
    for i in 0..20 {
        d.push(vec![i as f64], true);
    }
    let t = DecisionTree::fit(&d, TreeConfig::default(), &mut StdRng::seed_from_u64(0));
    assert_eq!(t.n_nodes(), 1);
    assert_eq!(t.predict_proba(&[3.0]), 1.0);
}

#[test]
fn tree_with_single_example() {
    let mut d = Dataset::new();
    d.push(vec![1.0], false);
    let t = DecisionTree::fit(&d, TreeConfig::default(), &mut StdRng::seed_from_u64(0));
    assert!(!t.predict(&[1.0]));
}

#[test]
fn forest_handles_nan_free_extremes() {
    let mut d = Dataset::new();
    d.push(vec![f64::MAX], true);
    d.push(vec![f64::MIN], false);
    d.push(vec![0.0], false);
    d.push(vec![1e300], true);
    let rf = RandomForest::fit(
        &d,
        RandomForestConfig {
            n_trees: 8,
            ..Default::default()
        },
    );
    let p = rf.predict_proba(&[f64::MAX]);
    assert!((0.0..=1.0).contains(&p));
}

#[test]
fn forest_more_trees_smoother_probabilities() {
    let mut d = Dataset::new();
    let mut rng_v = 0u64;
    for i in 0..200 {
        rng_v = rng_v.wrapping_mul(6364136223846793005).wrapping_add(1);
        let x = (rng_v >> 33) as f64 / (u32::MAX as f64 / 2.0);
        d.push(vec![x], (i % 3) == 0 && x > 0.7);
    }
    let small = RandomForest::fit(
        &d,
        RandomForestConfig {
            n_trees: 2,
            ..Default::default()
        },
    );
    let large = RandomForest::fit(
        &d,
        RandomForestConfig {
            n_trees: 128,
            ..Default::default()
        },
    );
    // granularity: a 2-tree forest can only output {0, .5, 1}
    let p = small.predict_proba(&[0.8]);
    assert!(p == 0.0 || p == 0.5 || p == 1.0);
    let q = large.predict_proba(&[0.8]);
    assert!((0.0..=1.0).contains(&q));
}

#[test]
fn prf_empty_input() {
    let prf = precision_recall_f1(&[], &[]);
    assert_eq!(prf, Prf::default());
}

#[test]
fn auc_single_example_each_class() {
    assert_eq!(roc_auc(&[0.9, 0.1], &[true, false]), 1.0);
    assert_eq!(roc_auc(&[0.1, 0.9], &[true, false]), 0.0);
    assert_eq!(roc_auc(&[0.5, 0.5], &[true, false]), 0.5);
}

#[test]
fn entropy_of_two_point_distribution() {
    let h = shannon_entropy(&[0.5, 0.5]);
    assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
    assert!((normalized_entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
}

#[test]
fn kappa_two_categories_three_raters() {
    // items where 2/3 agree every time
    let ratings = vec![vec![2, 1], vec![1, 2], vec![2, 1], vec![1, 2]];
    let k = fleiss_kappa(&ratings).unwrap();
    assert!(k < 0.5); // weak agreement
}

#[test]
fn split_sizes_round_sensibly() {
    let s = random_split(7, 0.1, 0.1, 0);
    assert_eq!(s.train.len() + s.validation.len() + s.test.len(), 7);
    let s = random_split(0, 0.1, 0.1, 0);
    assert!(s.train.is_empty() && s.test.is_empty());
}

#[test]
fn stratified_split_single_class() {
    let labels = vec![false; 30];
    let s = stratified_split(&labels, 0.2, 0.2, 3);
    assert_eq!(s.train.len(), 18);
    assert_eq!(s.validation.len(), 6);
    assert_eq!(s.test.len(), 6);
}

#[test]
fn grid_search_single_candidate() {
    let (i, score) = grid_search(&[42], |_| 3.5).unwrap();
    assert_eq!(i, 0);
    assert_eq!(score, 3.5);
}

#[test]
fn product_sizes_multiply() {
    let g = product(&[vec![1, 2, 3], vec![4, 5], vec![6]]);
    assert_eq!(g.len(), 6);
    assert!(g.iter().all(|row| row.len() == 3));
}

#[test]
fn class_weights_preserve_total_mass_multi() {
    let mut d = Dataset::new();
    for i in 0..100 {
        d.push(vec![i as f64], i < 10);
    }
    d.apply_class_weights();
    let total: f64 = d.weights.iter().sum();
    assert!((total - 100.0).abs() < 1e-9);
    // minority weight > majority weight
    assert!(d.weights[0] > d.weights[50]);
}

#[test]
fn deep_tree_respects_leaf_weight() {
    let mut d = Dataset::new();
    for i in 0..64 {
        d.push(vec![i as f64], i % 2 == 0);
    }
    let cfg = TreeConfig {
        min_leaf_weight: 16.0,
        ..Default::default()
    };
    let t = DecisionTree::fit(&d, cfg, &mut StdRng::seed_from_u64(1));
    // with a 16-example floor, at most 64/16·2−1 = 7 nodes
    assert!(t.n_nodes() <= 7, "{}", t.n_nodes());
}
