//! Property tests: the flattened SoA forest layout ([`FlatForest`]) is
//! observationally identical to the recursive tree representation — for
//! arbitrary fitted forests, arbitrary probes, and arbitrary feature
//! masks baked at flatten time.

use briq_ml::flat::FlatForest;
use briq_ml::tree::{DecisionTree, TreeConfig};
use briq_ml::{Dataset, RandomForest, RandomForestConfig};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

/// A random binary-labeled dataset with `n` rows over `nf` features.
fn random_dataset(n: usize, nf: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new();
    for _ in 0..n {
        let row: Vec<f64> = (0..nf).map(|_| rng.random_range(-1.0..1.0)).collect();
        // Label correlates with the first feature, with noise, so trees
        // actually grow splits.
        let label = row[0] + rng.random_range(-0.4..0.4) > 0.0;
        d.push(row, label);
    }
    d
}

proptest! {
    /// Flat traversal of an arbitrary fitted forest returns exactly the
    /// recursive probability on arbitrary probes.
    #[test]
    fn flat_forest_equals_recursive(
        seed in 0u64..500,
        n in 12usize..80,
        nf in 1usize..6,
        n_trees in 1usize..12,
        probe_seed in 0u64..100,
    ) {
        let data = random_dataset(n, nf, seed);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig { n_trees, seed, ..Default::default() },
        );
        let flat = FlatForest::from_forest(&rf);
        prop_assert_eq!(flat.n_trees(), rf.n_trees());
        let mut rng = StdRng::seed_from_u64(probe_seed);
        for _ in 0..25 {
            let x: Vec<f64> = (0..nf).map(|_| rng.random_range(-2.0..2.0)).collect();
            prop_assert_eq!(
                flat.predict_proba_slice(&x).to_bits(),
                rf.predict_proba(&x).to_bits()
            );
            prop_assert_eq!(flat.predict_slice(&x), rf.predict(&x));
        }
    }

    /// A single fitted tree flattens to the same leaf probability as its
    /// recursive traversal.
    #[test]
    fn flat_tree_equals_recursive(
        seed in 0u64..500,
        n in 5usize..60,
        nf in 1usize..5,
    ) {
        let data = random_dataset(n, nf, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let tree = DecisionTree::fit(&data, TreeConfig::default(), &mut rng);
        let flat = FlatForest::from_tree(&tree);
        for _ in 0..25 {
            let x: Vec<f64> = (0..nf).map(|_| rng.random_range(-2.0..2.0)).collect();
            prop_assert_eq!(
                flat.tree_leaf(0, &x).to_bits(),
                tree.predict_proba(&x).to_bits()
            );
        }
    }

    /// Block-wise scoring (trees outer, rows inner) is bit-identical to
    /// per-row scoring for arbitrary forests and block sizes.
    #[test]
    fn score_block_equals_per_row_score(
        seed in 0u64..400,
        n in 12usize..80,
        nf in 1usize..6,
        n_trees in 1usize..12,
        n_rows in 0usize..64,
    ) {
        let data = random_dataset(n, nf, seed);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig { n_trees, seed, ..Default::default() },
        );
        let flat = FlatForest::from_forest(&rf);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB10C);
        let rows: Vec<f64> = (0..n_rows * nf).map(|_| rng.random_range(-2.0..2.0)).collect();
        let mut out = vec![f64::NAN; n_rows];
        flat.score_block(&rows, nf, &mut out);
        for (o, row) in out.iter().zip(rows.chunks_exact(nf)) {
            prop_assert_eq!(o.to_bits(), flat.predict_proba_slice(row).to_bits());
        }
    }

    /// Bounded block scoring either returns the exact per-row score or
    /// prunes a row whose exact score is provably below its cut.
    #[test]
    fn bounded_block_prunes_only_below_cut(
        seed in 0u64..400,
        n in 12usize..80,
        nf in 1usize..6,
        n_trees in 1usize..12,
        n_rows in 1usize..48,
        cut_seed in 0u64..100,
    ) {
        let data = random_dataset(n, nf, seed);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig { n_trees, seed, ..Default::default() },
        );
        let flat = FlatForest::from_forest(&rf);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC07);
        let rows: Vec<f64> = (0..n_rows * nf).map(|_| rng.random_range(-2.0..2.0)).collect();
        let mut cut_rng = StdRng::seed_from_u64(cut_seed);
        let cuts: Vec<f64> = (0..n_rows)
            .map(|i| match i % 3 {
                0 => f64::NEG_INFINITY,
                _ => cut_rng.random_range(-0.1..1.1),
            })
            .collect();
        let mut out = vec![f64::NAN; n_rows];
        let mut pruned = vec![false; n_rows];
        let n_pruned = flat.score_block_bounded(&rows, nf, &cuts, &mut out, &mut pruned);
        prop_assert_eq!(n_pruned, pruned.iter().filter(|&&p| p).count());
        for i in 0..n_rows {
            let exact = flat.predict_proba_slice(&rows[i * nf..(i + 1) * nf]);
            if pruned[i] {
                prop_assert!(exact < cuts[i], "row {} score {} >= cut {}", i, exact, cuts[i]);
            } else {
                prop_assert_eq!(out[i].to_bits(), exact.to_bits());
            }
        }
    }

    /// Baking a feature mask into the flat layout equals zeroing the
    /// masked features of every probe before recursive traversal.
    #[test]
    fn mask_baking_equals_input_zeroing(
        seed in 0u64..300,
        n in 12usize..60,
        nf in 2usize..6,
        mask_bits in 0usize..63,
    ) {
        let data = random_dataset(n, nf, seed);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig { n_trees: 6, seed, ..Default::default() },
        );
        let keep = |f: usize| mask_bits & (1 << f) != 0;
        let flat = FlatForest::from_forest_masked(&rf, keep);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        for _ in 0..25 {
            let x: Vec<f64> = (0..nf).map(|_| rng.random_range(-2.0..2.0)).collect();
            let zeroed: Vec<f64> = x
                .iter()
                .enumerate()
                .map(|(f, &v)| if keep(f) { v } else { 0.0 })
                .collect();
            prop_assert_eq!(
                flat.predict_proba_slice(&x).to_bits(),
                rf.predict_proba(&zeroed).to_bits()
            );
        }
    }
}

proptest! {
    /// The lockstep lane kernel is bit-identical to `score_block` (and
    /// therefore to per-row recursive traversal) for arbitrary fitted
    /// forests, block shapes, and probes — including ragged tails
    /// shorter than the lane width.
    #[test]
    fn score_lanes_bit_equals_score_block(
        seed in 0u64..400,
        n in 12usize..80,
        nf in 1usize..6,
        n_trees in 1usize..12,
        n_rows in 0usize..40,
        probe_seed in 0u64..100,
    ) {
        let data = random_dataset(n, nf, seed);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig { n_trees, seed, ..Default::default() },
        );
        let flat = FlatForest::from_forest(&rf);
        let mut rng = StdRng::seed_from_u64(probe_seed);
        let rows: Vec<f64> = (0..n_rows * nf).map(|_| rng.random_range(-2.0..2.0)).collect();
        let mut block = vec![f64::NAN; n_rows];
        let mut lanes = vec![f64::NAN; n_rows];
        flat.score_block(&rows, nf, &mut block);
        flat.score_lanes(&rows, nf, &mut lanes);
        for i in 0..n_rows {
            prop_assert_eq!(block[i].to_bits(), lanes[i].to_bits(), "row {}", i);
        }
    }
}
