//! The f32-quantized forest's tolerance contract (DESIGN.md §14): the
//! opt-in [`FlatForestF32`] may diverge from the f64 [`FlatForest`] only
//! where a feature value lands inside the f32 rounding interval of a
//! threshold, and the score divergence is always bounded by the number
//! of such witnessed trees over the tree count. On probes where every
//! tree is witnessed safe, scores are bit-identical.

use briq_ml::flat::{FlatForest, FlatForestF32};
use briq_ml::{Dataset, RandomForest, RandomForestConfig};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_dataset(n: usize, nf: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new();
    for _ in 0..n {
        let row: Vec<f64> = (0..nf).map(|_| rng.random_range(-1.0..1.0)).collect();
        let label = row[0] + rng.random_range(-0.4..0.4) > 0.0;
        d.push(row, label);
    }
    d
}

proptest! {
    /// |p32 − p64| ≤ (trees not witnessed f32-safe) / n_trees, and probes
    /// with every tree witnessed safe score bit-identically.
    #[test]
    fn divergence_bounded_by_witnessed_trees(
        seed in 0u64..400,
        n in 12usize..80,
        nf in 1usize..6,
        n_trees in 1usize..12,
        probe_seed in 0u64..200,
    ) {
        let data = random_dataset(n, nf, seed);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig { n_trees, seed, ..Default::default() },
        );
        let flat = FlatForest::from_forest(&rf);
        let f32f = FlatForestF32::from_flat(&flat);
        let mut rng = StdRng::seed_from_u64(probe_seed);
        for _ in 0..25 {
            let x: Vec<f64> = (0..nf).map(|_| rng.random_range(-2.0..2.0)).collect();
            let p64 = flat.predict_proba_slice(&x);
            let p32 = f32f.predict_proba_slice(&x);
            let unsafe_trees = (0..flat.n_trees())
                .filter(|&t| !flat.f32_equivalent_on(t, &x))
                .count();
            prop_assert!(
                (p32 - p64).abs() <= unsafe_trees as f64 / flat.n_trees() as f64 + 1e-15,
                "divergence {} exceeds witness bound {}/{}",
                (p32 - p64).abs(), unsafe_trees, flat.n_trees()
            );
            if unsafe_trees == 0 {
                prop_assert_eq!(p32.to_bits(), p64.to_bits());
            }
        }
    }

    /// Quantization is value-faithful away from rounding boundaries:
    /// probes snapped onto f32-representable values (so `x as f32` is
    /// exact) still obey the witness bound, and the f32 block kernel
    /// matches its own per-row traversal bit-for-bit.
    #[test]
    fn f32_block_is_self_consistent(
        seed in 0u64..200,
        n in 12usize..60,
        nf in 1usize..5,
        n_rows in 1usize..30,
    ) {
        let data = random_dataset(n, nf, seed);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig { n_trees: 8, seed, ..Default::default() },
        );
        let f32f = FlatForestF32::from_flat(&FlatForest::from_forest(&rf));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF32F);
        let rows: Vec<f64> = (0..n_rows * nf)
            .map(|_| rng.random_range(-2.0f64..2.0) as f32 as f64)
            .collect();
        let mut out = vec![f64::NAN; n_rows];
        f32f.score_block(&rows, nf, &mut out);
        for (o, row) in out.iter().zip(rows.chunks_exact(nf)) {
            prop_assert_eq!(o.to_bits(), f32f.predict_proba_slice(row).to_bits());
        }
    }
}
