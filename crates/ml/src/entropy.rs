//! Shannon entropy of score distributions.
//!
//! Used twice in BriQ: the adaptive filter widens/narrows top-k by the
//! entropy of a mention's candidate-score distribution (§V-B), and global
//! resolution processes text mentions in increasing entropy order (§VI-B).

/// Shannon entropy (nats) of a non-negative weight vector. The vector is
/// normalized internally; zero weights contribute nothing. Returns 0 for
/// an empty or all-zero input.
pub fn shannon_entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|w| w.is_finite() && **w > 0.0)
        .map(|&w| {
            let p = w / total;
            -p * p.ln()
        })
        .sum()
}

/// Normalized entropy in `[0, 1]`: entropy divided by `ln(n)` where `n`
/// is the number of positive entries. 1 means uniform, 0 means a single
/// dominant candidate (or fewer than two candidates).
pub fn normalized_entropy(weights: &[f64]) -> f64 {
    let n = weights
        .iter()
        .filter(|w| w.is_finite() && **w > 0.0)
        .count();
    if n < 2 {
        return 0.0;
    }
    shannon_entropy(weights) / (n as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_maximizes() {
        let h4 = shannon_entropy(&[1.0, 1.0, 1.0, 1.0]);
        assert!((h4 - (4.0f64).ln()).abs() < 1e-12);
        assert!((normalized_entropy(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_lowers_entropy() {
        let uniform = shannon_entropy(&[0.25, 0.25, 0.25, 0.25]);
        let skewed = shannon_entropy(&[0.97, 0.01, 0.01, 0.01]);
        assert!(skewed < uniform);
    }

    #[test]
    fn single_candidate_is_zero() {
        assert_eq!(shannon_entropy(&[5.0]), 0.0);
        assert_eq!(normalized_entropy(&[5.0]), 0.0);
    }

    #[test]
    fn empty_and_zero_inputs() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[0.0, 0.0]), 0.0);
        assert_eq!(normalized_entropy(&[]), 0.0);
    }

    #[test]
    fn scale_invariant() {
        let a = shannon_entropy(&[1.0, 2.0, 3.0]);
        let b = shannon_entropy(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn ignores_nonfinite() {
        let h = shannon_entropy(&[1.0, f64::NAN, 1.0, f64::INFINITY]);
        assert!((h - (2.0f64).ln()).abs() < 1e-12);
    }
}
