//! Flattened structure-of-arrays forest layout for allocation-free scoring.
//!
//! [`crate::tree::DecisionTree`] stores an enum-per-node `Vec`, which is
//! the right shape for growing but costs a discriminant branch and a
//! scattered load per hop when scoring. [`FlatForest`] re-lays every tree
//! of a [`RandomForest`] into four parallel arrays — feature index
//! (`u16`, with [`LEAF`] as the sentinel), threshold (doubling as the
//! leaf probability on leaf nodes), and left/right child offsets
//! (`u32`) — so a traversal is a tight loop over index arithmetic with
//! no enum matching and no per-call allocation.
//!
//! The flattening can also *bake in* a feature mask: a split on a dropped
//! feature is resolved at build time by splicing in whichever child the
//! zeroed feature value would select (`0.0 <= threshold` goes left). This
//! is bit-identical to zeroing the masked columns of the input row before
//! a recursive traversal, for any forest, which is exactly what
//! `FeatureMask::apply` used to do per call on an owned copy.

use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};

/// Sentinel feature index marking a leaf node.
pub const LEAF: u16 = u16::MAX;

/// A [`RandomForest`] flattened into parallel arrays for scoring.
///
/// Invariants: `feature`, `threshold`, `left`, and `right` all have the
/// same length; every entry of `roots` and every child offset of a
/// non-leaf node is a valid index into them; leaf nodes carry their
/// probability in `threshold`.
#[derive(Debug, Clone, Default)]
pub struct FlatForest {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    roots: Vec<u32>,
}

impl FlatForest {
    /// Flatten `forest` keeping every feature.
    pub fn from_forest(forest: &RandomForest) -> FlatForest {
        Self::from_forest_masked(forest, |_| true)
    }

    /// Flatten `forest`, baking the feature mask `keep` into the layout:
    /// splits on features with `keep(feature) == false` are replaced by
    /// the subtree a zeroed feature value would reach.
    pub fn from_forest_masked(forest: &RandomForest, keep: impl Fn(usize) -> bool) -> FlatForest {
        let mut flat = FlatForest::default();
        for tree in forest.trees() {
            flat.push_tree(tree, &keep);
        }
        flat
    }

    /// Flatten a single tree (one root), keeping every feature.
    pub fn from_tree(tree: &DecisionTree) -> FlatForest {
        let mut flat = FlatForest::default();
        flat.push_tree(tree, &|_| true);
        flat
    }

    fn push_tree(&mut self, tree: &DecisionTree, keep: &impl Fn(usize) -> bool) {
        let nodes = tree.nodes();
        debug_assert!(!nodes.is_empty(), "a grown tree always has a root");
        let root = self.emit(nodes, 0, keep);
        self.roots.push(root);
    }

    /// Emit the subtree rooted at `id` into the flat arrays; returns its
    /// flat offset. Recursion depth is bounded by the tree-growing
    /// `max_depth`, which is small by construction.
    fn emit(&mut self, nodes: &[Node], id: usize, keep: &impl Fn(usize) -> bool) -> u32 {
        match &nodes[id] {
            Node::Leaf { prob } => {
                let at = self.push_node(LEAF, *prob);
                self.left[at as usize] = at;
                self.right[at as usize] = at;
                at
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if !keep(*feature) {
                    // A masked feature reads as 0.0; resolve the branch now.
                    let next = if 0.0 <= *threshold { *left } else { *right };
                    return self.emit(nodes, next, keep);
                }
                assert!(
                    *feature < LEAF as usize,
                    "feature index {feature} exceeds the u16 layout"
                );
                let at = self.push_node(*feature as u16, *threshold);
                let l = self.emit(nodes, *left, keep);
                let r = self.emit(nodes, *right, keep);
                self.left[at as usize] = l;
                self.right[at as usize] = r;
                at
            }
        }
    }

    fn push_node(&mut self, feature: u16, threshold: f64) -> u32 {
        let at = self.feature.len();
        assert!(at < u32::MAX as usize, "forest exceeds the u32 layout");
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(0);
        self.right.push(0);
        at as u32
    }

    /// Leaf probability tree `tree` assigns to `x`. No allocation.
    pub fn tree_leaf(&self, tree: usize, x: &[f64]) -> f64 {
        let mut at = self.roots[tree] as usize;
        loop {
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at];
            }
            at = if x[f as usize] <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }

    /// Fraction of trees voting "related" — identical arithmetic to
    /// [`RandomForest::predict_proba`], with no copy and no allocation.
    /// An empty forest returns the uninformative 0.5.
    pub fn predict_proba_slice(&self, x: &[f64]) -> f64 {
        if self.roots.is_empty() {
            return 0.5;
        }
        let mut votes = 0usize;
        for t in 0..self.roots.len() {
            if self.tree_leaf(t, x) >= 0.5 {
                votes += 1;
            }
        }
        votes as f64 / self.roots.len() as f64
    }

    /// Hard prediction at threshold 0.5 (majority vote).
    pub fn predict_slice(&self, x: &[f64]) -> bool {
        self.predict_proba_slice(x) >= 0.5
    }

    /// Number of flattened trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across all trees (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestConfig;
    use crate::tree::TreeConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn noisy(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            let z: f64 = rng.random_range(0.0..1.0);
            d.push(vec![x, y, z], x + 0.3 * y > 0.6);
        }
        d
    }

    #[test]
    fn flat_matches_recursive_on_random_probes() {
        let data = noisy(300, 11);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        assert_eq!(flat.n_trees(), rf.n_trees());
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..500 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            assert_eq!(flat.predict_proba_slice(&x), rf.predict_proba(&x));
            assert_eq!(flat.predict_slice(&x), rf.predict(&x));
        }
    }

    #[test]
    fn mask_baking_equals_zeroing_features() {
        let data = noisy(300, 13);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        // Drop feature 1: baked traversal must equal a recursive traversal
        // over the row with that column zeroed.
        let flat = FlatForest::from_forest_masked(&rf, |f| f != 1);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..500 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            let zeroed = [x[0], 0.0, x[2]];
            assert_eq!(flat.predict_proba_slice(&x), rf.predict_proba(&zeroed));
        }
    }

    #[test]
    fn single_tree_leaf_matches_recursive() {
        let data = noisy(200, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let tree = DecisionTree::fit(&data, TreeConfig::default(), &mut rng);
        let flat = FlatForest::from_tree(&tree);
        for _ in 0..200 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            assert_eq!(flat.tree_leaf(0, &x), tree.predict_proba(&x));
        }
    }

    #[test]
    fn empty_forest_predicts_half() {
        let flat = FlatForest::default();
        assert_eq!(flat.predict_proba_slice(&[1.0]), 0.5);
    }
}
