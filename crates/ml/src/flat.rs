//! Flattened structure-of-arrays forest layout for allocation-free scoring.
//!
//! [`crate::tree::DecisionTree`] stores an enum-per-node `Vec`, which is
//! the right shape for growing but costs a discriminant branch and a
//! scattered load per hop when scoring. [`FlatForest`] re-lays every tree
//! of a [`RandomForest`] into four parallel arrays — feature index
//! (`u16`, with [`LEAF`] as the sentinel), threshold (doubling as the
//! leaf probability on leaf nodes), and left/right child offsets
//! (`u32`) — so a traversal is a tight loop over index arithmetic with
//! no enum matching and no per-call allocation.
//!
//! The flattening can also *bake in* a feature mask: a split on a dropped
//! feature is resolved at build time by splicing in whichever child the
//! zeroed feature value would select (`0.0 <= threshold` goes left). This
//! is bit-identical to zeroing the masked columns of the input row before
//! a recursive traversal, for any forest, which is exactly what
//! `FeatureMask::apply` used to do per call on an owned copy.
//!
//! Three scoring entry points share the layout:
//!
//! * [`FlatForest::predict_proba_slice`] — one row, trees in index
//!   order;
//! * [`FlatForest::score_block`] — a whole row block with the **tree
//!   loop outermost**, so each tree's arrays stay hot across the block;
//!   summation order per row matches `predict_proba_slice` exactly, so
//!   block scores are bit-identical to row-at-a-time scores;
//! * [`FlatForest::score_block_bounded`] — `score_block` plus exact
//!   early abandonment: per-subtree `max_leaf` bounds and per-tree
//!   `suffix_possible` vote bounds let a row stop as soon as its final
//!   score *provably* falls below a caller-supplied cut. Rows at or
//!   above the cut come out bit-identical; rows below it are reported
//!   as pruned, never mis-scored.
//!
//! `briq_core`'s scoring engine drives the block kernels on the
//! alignment hot path and reports their effect through the
//! observability counters `rows_deduped` / `pairs_pruned` /
//! `rows_scored_exhaustive` / `rows_scored_bounded` (DESIGN.md §11).

use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};

/// Sentinel feature index marking a leaf node.
pub const LEAF: u16 = u16::MAX;

/// A [`RandomForest`] flattened into parallel arrays for scoring.
///
/// Invariants: `feature`, `threshold`, `left`, and `right` all have the
/// same length; every entry of `roots` and every child offset of a
/// non-leaf node is a valid index into them; leaf nodes carry their
/// probability in `threshold`.
#[derive(Debug, Clone, Default)]
pub struct FlatForest {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    roots: Vec<u32>,
    /// Per node: the maximum leaf probability reachable in its subtree,
    /// computed at flatten time. A subtree with `max_leaf < 0.5` can never
    /// produce a "related" vote, so traversal may stop at its root.
    max_leaf: Vec<f64>,
    /// `suffix_possible[t]` = number of trees in `t..n_trees` whose root
    /// `max_leaf >= 0.5`, i.e. an upper bound on the votes the remaining
    /// trees can still contribute. Length `n_trees + 1` (last entry 0).
    suffix_possible: Vec<u32>,
}

impl FlatForest {
    /// Flatten `forest` keeping every feature.
    pub fn from_forest(forest: &RandomForest) -> FlatForest {
        Self::from_forest_masked(forest, |_| true)
    }

    /// Flatten `forest`, baking the feature mask `keep` into the layout:
    /// splits on features with `keep(feature) == false` are replaced by
    /// the subtree a zeroed feature value would reach.
    pub fn from_forest_masked(forest: &RandomForest, keep: impl Fn(usize) -> bool) -> FlatForest {
        let mut flat = FlatForest::default();
        for tree in forest.trees() {
            flat.push_tree(tree, &keep);
        }
        flat
    }

    /// Flatten a single tree (one root), keeping every feature.
    pub fn from_tree(tree: &DecisionTree) -> FlatForest {
        let mut flat = FlatForest::default();
        flat.push_tree(tree, &|_| true);
        flat
    }

    fn push_tree(&mut self, tree: &DecisionTree, keep: &impl Fn(usize) -> bool) {
        let nodes = tree.nodes();
        debug_assert!(!nodes.is_empty(), "a grown tree always has a root");
        let root = self.emit(nodes, 0, keep);
        self.roots.push(root);
        self.rebuild_suffix_bounds();
    }

    /// Recompute `suffix_possible` from the per-root `max_leaf` bounds.
    fn rebuild_suffix_bounds(&mut self) {
        self.suffix_possible.clear();
        self.suffix_possible.resize(self.roots.len() + 1, 0);
        for t in (0..self.roots.len()).rev() {
            let possible = (self.max_leaf[self.roots[t] as usize] >= 0.5) as u32;
            self.suffix_possible[t] = self.suffix_possible[t + 1] + possible;
        }
    }

    /// Emit the subtree rooted at `id` into the flat arrays; returns its
    /// flat offset. Recursion depth is bounded by the tree-growing
    /// `max_depth`, which is small by construction.
    fn emit(&mut self, nodes: &[Node], id: usize, keep: &impl Fn(usize) -> bool) -> u32 {
        match &nodes[id] {
            Node::Leaf { prob } => {
                let at = self.push_node(LEAF, *prob);
                self.left[at as usize] = at;
                self.right[at as usize] = at;
                at
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if !keep(*feature) {
                    // A masked feature reads as 0.0; resolve the branch now.
                    let next = if 0.0 <= *threshold { *left } else { *right };
                    return self.emit(nodes, next, keep);
                }
                assert!(
                    *feature < LEAF as usize,
                    "feature index {feature} exceeds the u16 layout"
                );
                let at = self.push_node(*feature as u16, *threshold);
                let l = self.emit(nodes, *left, keep);
                let r = self.emit(nodes, *right, keep);
                self.left[at as usize] = l;
                self.right[at as usize] = r;
                self.max_leaf[at as usize] =
                    self.max_leaf[l as usize].max(self.max_leaf[r as usize]);
                at
            }
        }
    }

    fn push_node(&mut self, feature: u16, threshold: f64) -> u32 {
        let at = self.feature.len();
        assert!(at < u32::MAX as usize, "forest exceeds the u32 layout");
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(0);
        self.right.push(0);
        // Leaves carry their probability; splits are patched after both
        // children have been emitted.
        self.max_leaf
            .push(if feature == LEAF { threshold } else { 0.0 });
        at as u32
    }

    /// Leaf probability tree `tree` assigns to `x`. No allocation.
    pub fn tree_leaf(&self, tree: usize, x: &[f64]) -> f64 {
        let mut at = self.roots[tree] as usize;
        loop {
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at];
            }
            at = if x[f as usize] <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }

    /// Fraction of trees voting "related" — identical arithmetic to
    /// [`RandomForest::predict_proba`], with no copy and no allocation.
    /// An empty forest returns the uninformative 0.5.
    pub fn predict_proba_slice(&self, x: &[f64]) -> f64 {
        if self.roots.is_empty() {
            return 0.5;
        }
        let mut votes = 0usize;
        for t in 0..self.roots.len() {
            if self.tree_leaf(t, x) >= 0.5 {
                votes += 1;
            }
        }
        votes as f64 / self.roots.len() as f64
    }

    /// Hard prediction at threshold 0.5 (majority vote).
    pub fn predict_slice(&self, x: &[f64]) -> bool {
        self.predict_proba_slice(x) >= 0.5
    }

    /// Whether `tree` (rooted at flat offset `at`) votes "related" for
    /// `x`. Equivalent to `tree_leaf(..) >= 0.5`, but abandons any
    /// subtree whose `max_leaf` bound already rules the vote out.
    #[inline]
    fn vote_from(&self, mut at: usize, x: &[f64]) -> bool {
        loop {
            if self.max_leaf[at] < 0.5 {
                return false;
            }
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at] >= 0.5;
            }
            at = if x[f as usize] <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }

    /// Score a block of rows laid out row-major with the given `stride`
    /// (`rows.len() == out.len() * stride`). Trees form the outer loop so
    /// each tree's nodes stay hot across the whole block; per-row results
    /// are bit-identical to [`FlatForest::predict_proba_slice`] (votes
    /// accumulate as exact small integers in f64, divided once at the
    /// end). An empty forest scores every row 0.5.
    pub fn score_block(&self, rows: &[f64], stride: usize, out: &mut [f64]) {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(rows.len(), out.len() * stride, "rows/out shape mismatch");
        if self.roots.is_empty() {
            out.fill(0.5);
            return;
        }
        out.fill(0.0);
        for &root in &self.roots {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
                if self.vote_from(root as usize, row) {
                    *o += 1.0;
                }
            }
        }
        let n_trees = self.roots.len() as f64;
        for o in out.iter_mut() {
            *o /= n_trees;
        }
    }

    /// Score a block of rows with per-row pruning cuts: row `i` is
    /// abandoned (`pruned[i] = true`, `out[i]` unspecified) as soon as
    /// `(votes_so_far + suffix_possible) / n_trees` falls strictly below
    /// `cuts[i]`, which proves the exact score would also be `< cuts[i]`.
    /// Rows that survive receive their exact score, bit-identical to
    /// [`FlatForest::predict_proba_slice`]. Returns the number of rows
    /// pruned. A cut of `f64::NEG_INFINITY` disables pruning for a row;
    /// `f64::INFINITY` prunes it before any tree is evaluated.
    pub fn score_block_bounded(
        &self,
        rows: &[f64],
        stride: usize,
        cuts: &[f64],
        out: &mut [f64],
        pruned: &mut [bool],
    ) -> usize {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(rows.len(), out.len() * stride, "rows/out shape mismatch");
        assert_eq!(cuts.len(), out.len(), "cuts/out shape mismatch");
        assert_eq!(pruned.len(), out.len(), "pruned/out shape mismatch");
        if self.roots.is_empty() {
            out.fill(0.5);
            pruned.fill(false);
            return 0;
        }
        let n_trees = self.roots.len() as f64;
        let mut n_pruned = 0usize;
        let rows_iter = rows.chunks_exact(stride).zip(cuts.iter());
        for ((row, &cut), (o, p)) in rows_iter.zip(out.iter_mut().zip(pruned.iter_mut())) {
            let mut votes = 0u32;
            let mut cut_hit = false;
            for (&root, &possible) in self.roots.iter().zip(self.suffix_possible.iter()) {
                // Upper bound on the final score before evaluating this
                // tree: every not-yet-scored tree that *can* vote does.
                if ((votes + possible) as f64) / n_trees < cut {
                    cut_hit = true;
                    break;
                }
                if self.vote_from(root as usize, row) {
                    votes += 1;
                }
            }
            *p = cut_hit;
            if cut_hit {
                n_pruned += 1;
            } else {
                *o = votes as f64 / n_trees;
            }
        }
        n_pruned
    }

    /// Score a block of rows with [`LANE_WIDTH`] rows per tree traversed
    /// in lockstep: a small SoA frontier of node indices steps every
    /// live lane once per round, with a branchless array select for the
    /// child hop, so the per-hop branch misprediction of one row's
    /// traversal overlaps the loads of its lane mates.
    ///
    /// **Bit-identical** to [`FlatForest::score_block`] on any forest and
    /// block: per (tree, row) the vote is the same exact boolean
    /// (the per-tree `max_leaf` early abandon of the row-at-a-time walk
    /// included — a lane parks as soon as its subtree bound rules the
    /// vote out), and per row the votes accumulate as the same exact
    /// `+1.0` sequence in tree order, divided once at the end.
    /// `crates/ml/tests/flat_equivalence.rs` proves it by proptest and
    /// CI's `kernels` stage re-proves it on real output every run
    /// (`BRIQ_NO_LANES=1` is the oracle hatch).
    pub fn score_lanes(&self, rows: &[f64], stride: usize, out: &mut [f64]) {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(rows.len(), out.len() * stride, "rows/out shape mismatch");
        if self.roots.is_empty() {
            out.fill(0.5);
            return;
        }
        out.fill(0.0);
        for &root in &self.roots {
            let root = root as usize;
            let lanes_rows = rows.chunks(stride * LANE_WIDTH);
            for (outs, lane_rows) in out.chunks_mut(LANE_WIDTH).zip(lanes_rows) {
                let k = outs.len();
                let mut at = [root; LANE_WIDTH];
                let mut dead = [false; LANE_WIDTH];
                loop {
                    let mut moved = false;
                    for l in 0..k {
                        if dead[l] {
                            continue;
                        }
                        let a = at[l];
                        // Same early abandon as `vote_from`: a subtree
                        // that can never reach a >= 0.5 leaf votes false.
                        if self.max_leaf[a] < 0.5 {
                            dead[l] = true;
                            continue;
                        }
                        let f = self.feature[a];
                        if f == LEAF {
                            continue;
                        }
                        moved = true;
                        let row = &lane_rows[l * stride..(l + 1) * stride];
                        // Branchless child select; `<=` goes left, so a
                        // NaN feature goes right — exactly `vote_from`.
                        let go_left = (row[f as usize] <= self.threshold[a]) as usize;
                        at[l] = [self.right[a], self.left[a]][go_left] as usize;
                    }
                    if !moved {
                        break;
                    }
                }
                for l in 0..k {
                    if !dead[l] && self.threshold[at[l]] >= 0.5 {
                        outs[l] += 1.0;
                    }
                }
            }
        }
        let n_trees = self.roots.len() as f64;
        for o in out.iter_mut() {
            *o /= n_trees;
        }
    }

    /// Number of flattened trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across all trees (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Whether the f32-quantized traversal of `tree` provably agrees
    /// with the f64 traversal on `x`: at every split on the f64 path the
    /// comparison survives f32 rounding (`x[f] as f32` vs
    /// `threshold as f32` orders the same way), and the reached leaf's
    /// vote survives quantization. When this holds the
    /// [`FlatForestF32`] vote is identical by induction over the path;
    /// when it fails the row sits inside an f32 rounding interval of
    /// some threshold and the vote may legitimately flip — that is the
    /// entire tolerance contract of the f32 fast path (DESIGN.md §14),
    /// and `crates/ml/tests/f32_divergence.rs` holds both directions.
    pub fn f32_equivalent_on(&self, tree: usize, x: &[f64]) -> bool {
        let mut at = self.roots[tree] as usize;
        loop {
            let f = self.feature[at];
            if f == LEAF {
                let prob = self.threshold[at];
                return (prob >= 0.5) == (prob as f32 >= 0.5f32);
            }
            let v = x[f as usize];
            let t = self.threshold[at];
            if (v <= t) != (v as f32 <= t as f32) {
                return false;
            }
            at = if v <= t {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }
}

/// Rows traversed in lockstep per lane group by
/// [`FlatForest::score_lanes`].
pub const LANE_WIDTH: usize = 8;

/// An f32-quantized copy of a [`FlatForest`]: thresholds and leaf
/// probabilities narrowed to f32, features compared as `x as f32`.
/// Halves the threshold-array footprint and keeps more of the forest in
/// cache, at the cost of **approximate** scores: a traversal diverges
/// from f64 exactly when a feature value falls inside the f32 rounding
/// interval of a threshold ([`FlatForest::f32_equivalent_on`] is the
/// per-tree witness; `|p32 − p64| ≤ diverged_trees / n_trees` always).
///
/// **Opt-in and never the default**: the alignment pipeline only uses it
/// under `BRIQ_F32=1`, CI's determinism and `kernels` stages never set
/// it, and it stays opt-in until scores *and rankings* are proven
/// identical on the full chaos corpus (DESIGN.md §14).
#[derive(Debug, Clone, Default)]
pub struct FlatForestF32 {
    feature: Vec<u16>,
    threshold: Vec<f32>,
    left: Vec<u32>,
    right: Vec<u32>,
    roots: Vec<u32>,
}

impl FlatForestF32 {
    /// Quantize a flattened forest. Mask baking, node layout, and tree
    /// order are inherited unchanged.
    pub fn from_flat(flat: &FlatForest) -> FlatForestF32 {
        FlatForestF32 {
            feature: flat.feature.clone(),
            threshold: flat.threshold.iter().map(|&t| t as f32).collect(),
            left: flat.left.clone(),
            right: flat.right.clone(),
            roots: flat.roots.clone(),
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Whether `tree` votes "related" for `x` under f32 comparisons.
    #[inline]
    fn vote_from(&self, mut at: usize, x: &[f64]) -> bool {
        loop {
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at] >= 0.5f32;
            }
            at = if x[f as usize] as f32 <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }

    /// Fraction of trees voting "related" under f32 traversal. The
    /// division happens in f64 so the only quantization is in the
    /// comparisons, keeping the divergence bound tight.
    pub fn predict_proba_slice(&self, x: &[f64]) -> f64 {
        if self.roots.is_empty() {
            return 0.5;
        }
        let mut votes = 0usize;
        for &root in &self.roots {
            if self.vote_from(root as usize, x) {
                votes += 1;
            }
        }
        votes as f64 / self.roots.len() as f64
    }

    /// Block scoring under f32 traversal — same shape contract as
    /// [`FlatForest::score_block`], same tree-outer loop.
    pub fn score_block(&self, rows: &[f64], stride: usize, out: &mut [f64]) {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(rows.len(), out.len() * stride, "rows/out shape mismatch");
        if self.roots.is_empty() {
            out.fill(0.5);
            return;
        }
        out.fill(0.0);
        for &root in &self.roots {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
                if self.vote_from(root as usize, row) {
                    *o += 1.0;
                }
            }
        }
        let n_trees = self.roots.len() as f64;
        for o in out.iter_mut() {
            *o /= n_trees;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestConfig;
    use crate::tree::TreeConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn noisy(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            let z: f64 = rng.random_range(0.0..1.0);
            d.push(vec![x, y, z], x + 0.3 * y > 0.6);
        }
        d
    }

    #[test]
    fn flat_matches_recursive_on_random_probes() {
        let data = noisy(300, 11);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        assert_eq!(flat.n_trees(), rf.n_trees());
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..500 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            assert_eq!(flat.predict_proba_slice(&x), rf.predict_proba(&x));
            assert_eq!(flat.predict_slice(&x), rf.predict(&x));
        }
    }

    #[test]
    fn mask_baking_equals_zeroing_features() {
        let data = noisy(300, 13);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        // Drop feature 1: baked traversal must equal a recursive traversal
        // over the row with that column zeroed.
        let flat = FlatForest::from_forest_masked(&rf, |f| f != 1);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..500 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            let zeroed = [x[0], 0.0, x[2]];
            assert_eq!(flat.predict_proba_slice(&x), rf.predict_proba(&zeroed));
        }
    }

    #[test]
    fn single_tree_leaf_matches_recursive() {
        let data = noisy(200, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let tree = DecisionTree::fit(&data, TreeConfig::default(), &mut rng);
        let flat = FlatForest::from_tree(&tree);
        for _ in 0..200 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            assert_eq!(flat.tree_leaf(0, &x), tree.predict_proba(&x));
        }
    }

    #[test]
    fn empty_forest_predicts_half() {
        let flat = FlatForest::default();
        assert_eq!(flat.predict_proba_slice(&[1.0]), 0.5);
    }

    fn random_block(n_rows: usize, stride: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_rows * stride)
            .map(|_| rng.random_range(-0.2..1.2))
            .collect()
    }

    #[test]
    fn score_block_matches_per_row_scoring() {
        let data = noisy(300, 21);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        for n_rows in [0usize, 1, 7, 64, 200] {
            let rows = random_block(n_rows, 3, 22 + n_rows as u64);
            let mut out = vec![f64::NAN; n_rows];
            flat.score_block(&rows, 3, &mut out);
            for (o, row) in out.iter().zip(rows.chunks_exact(3)) {
                assert_eq!(o.to_bits(), flat.predict_proba_slice(row).to_bits());
            }
        }
    }

    #[test]
    fn bounded_scoring_is_exact_or_provably_below_cut() {
        let data = noisy(300, 23);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 17,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        let n_rows = 150;
        let rows = random_block(n_rows, 3, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let cuts: Vec<f64> = (0..n_rows)
            .map(|i| match i % 4 {
                0 => f64::NEG_INFINITY,
                1 => f64::INFINITY,
                _ => rng.random_range(0.0..1.0),
            })
            .collect();
        let mut out = vec![f64::NAN; n_rows];
        let mut pruned = vec![false; n_rows];
        let n_pruned = flat.score_block_bounded(&rows, 3, &cuts, &mut out, &mut pruned);
        assert_eq!(n_pruned, pruned.iter().filter(|&&p| p).count());
        assert!(n_pruned > 0, "infinite cuts must prune");
        let mut saw_survivor_above_cut = false;
        for i in 0..n_rows {
            let exact = flat.predict_proba_slice(&rows[i * 3..(i + 1) * 3]);
            if pruned[i] {
                assert!(exact < cuts[i], "pruned row {i} had score {exact} >= cut");
            } else {
                assert_eq!(out[i].to_bits(), exact.to_bits(), "row {i}");
                if exact >= cuts[i] {
                    saw_survivor_above_cut = true;
                }
            }
            if cuts[i] == f64::NEG_INFINITY {
                assert!(!pruned[i], "NEG_INFINITY cut must never prune");
            }
            if cuts[i] == f64::INFINITY {
                assert!(pruned[i], "INFINITY cut must always prune");
            }
        }
        assert!(saw_survivor_above_cut);
    }

    #[test]
    fn score_lanes_bit_equals_score_block() {
        let data = noisy(300, 31);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        // Row counts around the lane width: empty, partial lane, exact
        // multiples, and a ragged tail.
        for n_rows in [0usize, 1, 5, 8, 9, 16, 63, 200] {
            let rows = random_block(n_rows, 3, 32 + n_rows as u64);
            let mut block = vec![f64::NAN; n_rows];
            let mut lanes = vec![f64::NAN; n_rows];
            flat.score_block(&rows, 3, &mut block);
            flat.score_lanes(&rows, 3, &mut lanes);
            for i in 0..n_rows {
                assert_eq!(block[i].to_bits(), lanes[i].to_bits(), "row {i}");
            }
        }
    }

    #[test]
    fn score_lanes_handles_nan_features_like_block() {
        let data = noisy(200, 33);
        let rf = RandomForest::fit(&data, RandomForestConfig::default());
        let flat = FlatForest::from_forest(&rf);
        let mut rows = random_block(20, 3, 34);
        for i in (0..rows.len()).step_by(7) {
            rows[i] = f64::NAN;
        }
        let mut block = vec![0.0; 20];
        let mut lanes = vec![0.0; 20];
        flat.score_block(&rows, 3, &mut block);
        flat.score_lanes(&rows, 3, &mut lanes);
        for i in 0..20 {
            assert_eq!(block[i].to_bits(), lanes[i].to_bits(), "row {i}");
        }
    }

    #[test]
    fn empty_forest_lanes_predicts_half() {
        let flat = FlatForest::default();
        let mut out = [f64::NAN; 3];
        flat.score_lanes(&[0.0, 1.0, 2.0], 1, &mut out);
        assert_eq!(out, [0.5, 0.5, 0.5]);
    }

    #[test]
    fn f32_forest_divergence_is_witnessed() {
        let data = noisy(300, 41);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 16,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        let f32f = FlatForestF32::from_flat(&flat);
        assert_eq!(f32f.n_trees(), flat.n_trees());
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            let p64 = flat.predict_proba_slice(&x);
            let p32 = f32f.predict_proba_slice(&x);
            // The tolerance contract: divergence is bounded by the
            // trees whose traversal crossed an f32 rounding boundary.
            let unsafe_trees = (0..flat.n_trees())
                .filter(|&t| !flat.f32_equivalent_on(t, &x))
                .count();
            assert!(
                (p32 - p64).abs() <= unsafe_trees as f64 / flat.n_trees() as f64 + 1e-15,
                "divergence {} exceeds witness bound {}/{}",
                (p32 - p64).abs(),
                unsafe_trees,
                flat.n_trees()
            );
            if unsafe_trees == 0 {
                assert_eq!(p32.to_bits(), p64.to_bits());
            }
        }
    }

    #[test]
    fn f32_block_matches_f32_per_row() {
        let data = noisy(200, 43);
        let rf = RandomForest::fit(&data, RandomForestConfig::default());
        let f32f = FlatForestF32::from_flat(&FlatForest::from_forest(&rf));
        let rows = random_block(40, 3, 44);
        let mut out = vec![f64::NAN; 40];
        f32f.score_block(&rows, 3, &mut out);
        for (o, row) in out.iter().zip(rows.chunks_exact(3)) {
            assert_eq!(o.to_bits(), f32f.predict_proba_slice(row).to_bits());
        }
        let empty = FlatForestF32::default();
        let mut out1 = [f64::NAN];
        empty.score_block(&[1.0], 1, &mut out1);
        assert_eq!(out1, [0.5]);
        assert_eq!(empty.predict_proba_slice(&[1.0]), 0.5);
    }

    #[test]
    fn empty_forest_block_paths() {
        let flat = FlatForest::default();
        let rows = [0.0, 1.0];
        let mut out = [f64::NAN; 2];
        flat.score_block(&rows, 1, &mut out);
        assert_eq!(out, [0.5, 0.5]);
        let mut pruned = [true; 2];
        let n = flat.score_block_bounded(&rows, 1, &[0.9, 0.1], &mut out, &mut pruned);
        assert_eq!(n, 0);
        assert_eq!(out, [0.5, 0.5]);
        assert_eq!(pruned, [false, false]);
    }
}
