//! Flattened structure-of-arrays forest layout for allocation-free scoring.
//!
//! [`crate::tree::DecisionTree`] stores an enum-per-node `Vec`, which is
//! the right shape for growing but costs a discriminant branch and a
//! scattered load per hop when scoring. [`FlatForest`] re-lays every tree
//! of a [`RandomForest`] into four parallel arrays — feature index
//! (`u16`, with [`LEAF`] as the sentinel), threshold (doubling as the
//! leaf probability on leaf nodes), and left/right child offsets
//! (`u32`) — so a traversal is a tight loop over index arithmetic with
//! no enum matching and no per-call allocation.
//!
//! The flattening can also *bake in* a feature mask: a split on a dropped
//! feature is resolved at build time by splicing in whichever child the
//! zeroed feature value would select (`0.0 <= threshold` goes left). This
//! is bit-identical to zeroing the masked columns of the input row before
//! a recursive traversal, for any forest, which is exactly what
//! `FeatureMask::apply` used to do per call on an owned copy.
//!
//! Three scoring entry points share the layout:
//!
//! * [`FlatForest::predict_proba_slice`] — one row, trees in index
//!   order;
//! * [`FlatForest::score_block`] — a whole row block with the **tree
//!   loop outermost**, so each tree's arrays stay hot across the block;
//!   summation order per row matches `predict_proba_slice` exactly, so
//!   block scores are bit-identical to row-at-a-time scores;
//! * [`FlatForest::score_block_bounded`] — `score_block` plus exact
//!   early abandonment: per-subtree `max_leaf` bounds and per-tree
//!   `suffix_possible` vote bounds let a row stop as soon as its final
//!   score *provably* falls below a caller-supplied cut. Rows at or
//!   above the cut come out bit-identical; rows below it are reported
//!   as pruned, never mis-scored.
//!
//! `briq_core`'s scoring engine drives the block kernels on the
//! alignment hot path and reports their effect through the
//! observability counters `rows_deduped` / `pairs_pruned` /
//! `rows_scored_exhaustive` / `rows_scored_bounded` (DESIGN.md §11).

use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};

/// Sentinel feature index marking a leaf node.
pub const LEAF: u16 = u16::MAX;

/// A [`RandomForest`] flattened into parallel arrays for scoring.
///
/// Invariants: `feature`, `threshold`, `left`, and `right` all have the
/// same length; every entry of `roots` and every child offset of a
/// non-leaf node is a valid index into them; leaf nodes carry their
/// probability in `threshold`.
#[derive(Debug, Clone, Default)]
pub struct FlatForest {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    roots: Vec<u32>,
    /// Per node: the maximum leaf probability reachable in its subtree,
    /// computed at flatten time. A subtree with `max_leaf < 0.5` can never
    /// produce a "related" vote, so traversal may stop at its root.
    max_leaf: Vec<f64>,
    /// `suffix_possible[t]` = number of trees in `t..n_trees` whose root
    /// `max_leaf >= 0.5`, i.e. an upper bound on the votes the remaining
    /// trees can still contribute. Length `n_trees + 1` (last entry 0).
    suffix_possible: Vec<u32>,
}

impl FlatForest {
    /// Flatten `forest` keeping every feature.
    pub fn from_forest(forest: &RandomForest) -> FlatForest {
        Self::from_forest_masked(forest, |_| true)
    }

    /// Flatten `forest`, baking the feature mask `keep` into the layout:
    /// splits on features with `keep(feature) == false` are replaced by
    /// the subtree a zeroed feature value would reach.
    pub fn from_forest_masked(forest: &RandomForest, keep: impl Fn(usize) -> bool) -> FlatForest {
        let mut flat = FlatForest::default();
        for tree in forest.trees() {
            flat.push_tree(tree, &keep);
        }
        flat
    }

    /// Flatten a single tree (one root), keeping every feature.
    pub fn from_tree(tree: &DecisionTree) -> FlatForest {
        let mut flat = FlatForest::default();
        flat.push_tree(tree, &|_| true);
        flat
    }

    fn push_tree(&mut self, tree: &DecisionTree, keep: &impl Fn(usize) -> bool) {
        let nodes = tree.nodes();
        debug_assert!(!nodes.is_empty(), "a grown tree always has a root");
        let root = self.emit(nodes, 0, keep);
        self.roots.push(root);
        self.rebuild_suffix_bounds();
    }

    /// Recompute `suffix_possible` from the per-root `max_leaf` bounds.
    fn rebuild_suffix_bounds(&mut self) {
        self.suffix_possible.clear();
        self.suffix_possible.resize(self.roots.len() + 1, 0);
        for t in (0..self.roots.len()).rev() {
            let possible = (self.max_leaf[self.roots[t] as usize] >= 0.5) as u32;
            self.suffix_possible[t] = self.suffix_possible[t + 1] + possible;
        }
    }

    /// Emit the subtree rooted at `id` into the flat arrays; returns its
    /// flat offset. Recursion depth is bounded by the tree-growing
    /// `max_depth`, which is small by construction.
    fn emit(&mut self, nodes: &[Node], id: usize, keep: &impl Fn(usize) -> bool) -> u32 {
        match &nodes[id] {
            Node::Leaf { prob } => {
                let at = self.push_node(LEAF, *prob);
                self.left[at as usize] = at;
                self.right[at as usize] = at;
                at
            }
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if !keep(*feature) {
                    // A masked feature reads as 0.0; resolve the branch now.
                    let next = if 0.0 <= *threshold { *left } else { *right };
                    return self.emit(nodes, next, keep);
                }
                assert!(
                    *feature < LEAF as usize,
                    "feature index {feature} exceeds the u16 layout"
                );
                let at = self.push_node(*feature as u16, *threshold);
                let l = self.emit(nodes, *left, keep);
                let r = self.emit(nodes, *right, keep);
                self.left[at as usize] = l;
                self.right[at as usize] = r;
                self.max_leaf[at as usize] =
                    self.max_leaf[l as usize].max(self.max_leaf[r as usize]);
                at
            }
        }
    }

    fn push_node(&mut self, feature: u16, threshold: f64) -> u32 {
        let at = self.feature.len();
        assert!(at < u32::MAX as usize, "forest exceeds the u32 layout");
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(0);
        self.right.push(0);
        // Leaves carry their probability; splits are patched after both
        // children have been emitted.
        self.max_leaf
            .push(if feature == LEAF { threshold } else { 0.0 });
        at as u32
    }

    /// Leaf probability tree `tree` assigns to `x`. No allocation.
    pub fn tree_leaf(&self, tree: usize, x: &[f64]) -> f64 {
        let mut at = self.roots[tree] as usize;
        loop {
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at];
            }
            at = if x[f as usize] <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }

    /// Fraction of trees voting "related" — identical arithmetic to
    /// [`RandomForest::predict_proba`], with no copy and no allocation.
    /// An empty forest returns the uninformative 0.5.
    pub fn predict_proba_slice(&self, x: &[f64]) -> f64 {
        if self.roots.is_empty() {
            return 0.5;
        }
        let mut votes = 0usize;
        for t in 0..self.roots.len() {
            if self.tree_leaf(t, x) >= 0.5 {
                votes += 1;
            }
        }
        votes as f64 / self.roots.len() as f64
    }

    /// Hard prediction at threshold 0.5 (majority vote).
    pub fn predict_slice(&self, x: &[f64]) -> bool {
        self.predict_proba_slice(x) >= 0.5
    }

    /// Whether `tree` (rooted at flat offset `at`) votes "related" for
    /// `x`. Equivalent to `tree_leaf(..) >= 0.5`, but abandons any
    /// subtree whose `max_leaf` bound already rules the vote out.
    #[inline]
    fn vote_from(&self, mut at: usize, x: &[f64]) -> bool {
        loop {
            if self.max_leaf[at] < 0.5 {
                return false;
            }
            let f = self.feature[at];
            if f == LEAF {
                return self.threshold[at] >= 0.5;
            }
            at = if x[f as usize] <= self.threshold[at] {
                self.left[at] as usize
            } else {
                self.right[at] as usize
            };
        }
    }

    /// Score a block of rows laid out row-major with the given `stride`
    /// (`rows.len() == out.len() * stride`). Trees form the outer loop so
    /// each tree's nodes stay hot across the whole block; per-row results
    /// are bit-identical to [`FlatForest::predict_proba_slice`] (votes
    /// accumulate as exact small integers in f64, divided once at the
    /// end). An empty forest scores every row 0.5.
    pub fn score_block(&self, rows: &[f64], stride: usize, out: &mut [f64]) {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(rows.len(), out.len() * stride, "rows/out shape mismatch");
        if self.roots.is_empty() {
            out.fill(0.5);
            return;
        }
        out.fill(0.0);
        for &root in &self.roots {
            for (o, row) in out.iter_mut().zip(rows.chunks_exact(stride)) {
                if self.vote_from(root as usize, row) {
                    *o += 1.0;
                }
            }
        }
        let n_trees = self.roots.len() as f64;
        for o in out.iter_mut() {
            *o /= n_trees;
        }
    }

    /// Score a block of rows with per-row pruning cuts: row `i` is
    /// abandoned (`pruned[i] = true`, `out[i]` unspecified) as soon as
    /// `(votes_so_far + suffix_possible) / n_trees` falls strictly below
    /// `cuts[i]`, which proves the exact score would also be `< cuts[i]`.
    /// Rows that survive receive their exact score, bit-identical to
    /// [`FlatForest::predict_proba_slice`]. Returns the number of rows
    /// pruned. A cut of `f64::NEG_INFINITY` disables pruning for a row;
    /// `f64::INFINITY` prunes it before any tree is evaluated.
    pub fn score_block_bounded(
        &self,
        rows: &[f64],
        stride: usize,
        cuts: &[f64],
        out: &mut [f64],
        pruned: &mut [bool],
    ) -> usize {
        assert!(stride > 0, "stride must be positive");
        assert_eq!(rows.len(), out.len() * stride, "rows/out shape mismatch");
        assert_eq!(cuts.len(), out.len(), "cuts/out shape mismatch");
        assert_eq!(pruned.len(), out.len(), "pruned/out shape mismatch");
        if self.roots.is_empty() {
            out.fill(0.5);
            pruned.fill(false);
            return 0;
        }
        let n_trees = self.roots.len() as f64;
        let mut n_pruned = 0usize;
        let rows_iter = rows.chunks_exact(stride).zip(cuts.iter());
        for ((row, &cut), (o, p)) in rows_iter.zip(out.iter_mut().zip(pruned.iter_mut())) {
            let mut votes = 0u32;
            let mut cut_hit = false;
            for (&root, &possible) in self.roots.iter().zip(self.suffix_possible.iter()) {
                // Upper bound on the final score before evaluating this
                // tree: every not-yet-scored tree that *can* vote does.
                if ((votes + possible) as f64) / n_trees < cut {
                    cut_hit = true;
                    break;
                }
                if self.vote_from(root as usize, row) {
                    votes += 1;
                }
            }
            *p = cut_hit;
            if cut_hit {
                n_pruned += 1;
            } else {
                *o = votes as f64 / n_trees;
            }
        }
        n_pruned
    }

    /// Number of flattened trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across all trees (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::RandomForestConfig;
    use crate::tree::TreeConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn noisy(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            let y: f64 = rng.random_range(0.0..1.0);
            let z: f64 = rng.random_range(0.0..1.0);
            d.push(vec![x, y, z], x + 0.3 * y > 0.6);
        }
        d
    }

    #[test]
    fn flat_matches_recursive_on_random_probes() {
        let data = noisy(300, 11);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        assert_eq!(flat.n_trees(), rf.n_trees());
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..500 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            assert_eq!(flat.predict_proba_slice(&x), rf.predict_proba(&x));
            assert_eq!(flat.predict_slice(&x), rf.predict(&x));
        }
    }

    #[test]
    fn mask_baking_equals_zeroing_features() {
        let data = noisy(300, 13);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        // Drop feature 1: baked traversal must equal a recursive traversal
        // over the row with that column zeroed.
        let flat = FlatForest::from_forest_masked(&rf, |f| f != 1);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..500 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            let zeroed = [x[0], 0.0, x[2]];
            assert_eq!(flat.predict_proba_slice(&x), rf.predict_proba(&zeroed));
        }
    }

    #[test]
    fn single_tree_leaf_matches_recursive() {
        let data = noisy(200, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let tree = DecisionTree::fit(&data, TreeConfig::default(), &mut rng);
        let flat = FlatForest::from_tree(&tree);
        for _ in 0..200 {
            let x = [
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
                rng.random_range(-0.2..1.2),
            ];
            assert_eq!(flat.tree_leaf(0, &x), tree.predict_proba(&x));
        }
    }

    #[test]
    fn empty_forest_predicts_half() {
        let flat = FlatForest::default();
        assert_eq!(flat.predict_proba_slice(&[1.0]), 0.5);
    }

    fn random_block(n_rows: usize, stride: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_rows * stride)
            .map(|_| rng.random_range(-0.2..1.2))
            .collect()
    }

    #[test]
    fn score_block_matches_per_row_scoring() {
        let data = noisy(300, 21);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 24,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        for n_rows in [0usize, 1, 7, 64, 200] {
            let rows = random_block(n_rows, 3, 22 + n_rows as u64);
            let mut out = vec![f64::NAN; n_rows];
            flat.score_block(&rows, 3, &mut out);
            for (o, row) in out.iter().zip(rows.chunks_exact(3)) {
                assert_eq!(o.to_bits(), flat.predict_proba_slice(row).to_bits());
            }
        }
    }

    #[test]
    fn bounded_scoring_is_exact_or_provably_below_cut() {
        let data = noisy(300, 23);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 17,
                ..Default::default()
            },
        );
        let flat = FlatForest::from_forest(&rf);
        let n_rows = 150;
        let rows = random_block(n_rows, 3, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let cuts: Vec<f64> = (0..n_rows)
            .map(|i| match i % 4 {
                0 => f64::NEG_INFINITY,
                1 => f64::INFINITY,
                _ => rng.random_range(0.0..1.0),
            })
            .collect();
        let mut out = vec![f64::NAN; n_rows];
        let mut pruned = vec![false; n_rows];
        let n_pruned = flat.score_block_bounded(&rows, 3, &cuts, &mut out, &mut pruned);
        assert_eq!(n_pruned, pruned.iter().filter(|&&p| p).count());
        assert!(n_pruned > 0, "infinite cuts must prune");
        let mut saw_survivor_above_cut = false;
        for i in 0..n_rows {
            let exact = flat.predict_proba_slice(&rows[i * 3..(i + 1) * 3]);
            if pruned[i] {
                assert!(exact < cuts[i], "pruned row {i} had score {exact} >= cut");
            } else {
                assert_eq!(out[i].to_bits(), exact.to_bits(), "row {i}");
                if exact >= cuts[i] {
                    saw_survivor_above_cut = true;
                }
            }
            if cuts[i] == f64::NEG_INFINITY {
                assert!(!pruned[i], "NEG_INFINITY cut must never prune");
            }
            if cuts[i] == f64::INFINITY {
                assert!(pruned[i], "INFINITY cut must always prune");
            }
        }
        assert!(saw_survivor_above_cut);
    }

    #[test]
    fn empty_forest_block_paths() {
        let flat = FlatForest::default();
        let rows = [0.0, 1.0];
        let mut out = [f64::NAN; 2];
        flat.score_block(&rows, 1, &mut out);
        assert_eq!(out, [0.5, 0.5]);
        let mut pruned = [true; 2];
        let n = flat.score_block_bounded(&rows, 1, &[0.9, 0.1], &mut out, &mut pruned);
        assert_eq!(n, 0);
        assert_eq!(out, [0.5, 0.5]);
        assert_eq!(pruned, [false, false]);
    }
}
