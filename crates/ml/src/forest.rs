//! Random Forest: bagged CART trees with vote-fraction probabilities.
//!
//! §IV-A: "An RF classifier consists of an ensemble of decision trees,
//! each trained on an independent bootstrap sample of the training data.
//! The final prediction … is obtained based on the majority vote of the
//! individual trees, returning the fraction of votes for the 'related'
//! class as the probability." Vote fractions are well calibrated
//! (Niculescu-Mizil & Caruana), which the global-resolution stage relies
//! on when mixing priors into the random walk.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Random Forest configuration.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growing configuration. With `mtry == 0` the forest uses
    /// `ceil(sqrt(n_features))` per split, the standard default.
    pub tree: TreeConfig,
    /// RNG seed (bootstrap sampling and feature subsetting).
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 128,
            tree: TreeConfig::default(),
            seed: 42,
        }
    }
}

/// A trained Random Forest binary classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Train on `data`. Instance weights in the dataset are respected by
    /// the per-tree Gini computations.
    pub fn fit(data: &Dataset, cfg: RandomForestConfig) -> RandomForest {
        Self::fit_masked(data, cfg, |_| true)
    }

    /// [`RandomForest::fit`] with a feature filter: features where
    /// `keep(f)` is false are never chosen as splits. Bit-identical to
    /// fitting on a copy of `data` with the dropped columns zeroed — the
    /// RNG stream, tree structure, and predictions all match — without
    /// duplicating the feature matrix.
    pub fn fit_masked(
        data: &Dataset,
        cfg: RandomForestConfig,
        keep: impl Fn(usize) -> bool,
    ) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = data.len();
        let mut tree_cfg = cfg.tree;
        if tree_cfg.mtry == 0 {
            tree_cfg.mtry = (data.n_features() as f64).sqrt().ceil() as usize;
        }
        let trees = (0..cfg.n_trees)
            .map(|_| {
                let sample: Vec<usize> = (0..n).map(|_| rng.random_range(0..n.max(1))).collect();
                DecisionTree::fit_on_masked(data, &sample, tree_cfg, &mut rng, &keep)
            })
            .collect();
        RandomForest { trees }
    }

    /// Fraction of trees voting "related" — the calibrated probability.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        let votes = self.trees.iter().filter(|t| t.predict(x)).count();
        votes as f64 / self.trees.len() as f64
    }

    /// Hard prediction at threshold 0.5 (majority vote).
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Probabilities for a batch of rows.
    pub fn predict_proba_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict_proba(r)).collect()
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The grown trees, for the flattened layout in [`crate::flat`].
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_separable(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..1.0);
            let noise: f64 = rng.random_range(-0.15..0.15);
            let y: f64 = rng.random_range(0.0..1.0);
            d.push(vec![x, y], x + noise > 0.5);
        }
        d
    }

    #[test]
    fn beats_chance_on_noisy_data() {
        let train = noisy_separable(400, 1);
        let test = noisy_separable(200, 2);
        let rf = RandomForest::fit(
            &train,
            RandomForestConfig {
                n_trees: 32,
                ..Default::default()
            },
        );
        let correct = test
            .features
            .iter()
            .zip(&test.labels)
            .filter(|(x, &y)| rf.predict(x) == y)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn probabilities_in_unit_interval_and_monotone_signal() {
        let train = noisy_separable(400, 3);
        let rf = RandomForest::fit(&train, RandomForestConfig::default());
        let lo = rf.predict_proba(&[0.05, 0.5]);
        let hi = rf.predict_proba(&[0.95, 0.5]);
        assert!((0.0..=1.0).contains(&lo));
        assert!((0.0..=1.0).contains(&hi));
        assert!(hi > lo, "hi={hi} lo={lo}");
    }

    #[test]
    fn deterministic_given_seed() {
        let train = noisy_separable(100, 4);
        let a = RandomForest::fit(
            &train,
            RandomForestConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let b = RandomForest::fit(
            &train,
            RandomForestConfig {
                seed: 9,
                ..Default::default()
            },
        );
        for x in [[0.3, 0.2], [0.7, 0.9]] {
            assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        }
    }

    #[test]
    fn class_weighting_improves_minority_score() {
        // 5% positive class concentrated in [0.45, 0.75); same data with
        // and without class weighting.
        let mut rng = StdRng::seed_from_u64(5);
        let mut unweighted = Dataset::new();
        for _ in 0..400 {
            let pos = rng.random_range(0..20) == 0;
            let x: f64 = if pos {
                rng.random_range(0.45..0.75)
            } else {
                rng.random_range(0.0..1.0)
            };
            unweighted.push(vec![x], pos);
        }
        let mut weighted = unweighted.clone();
        weighted.apply_class_weights();
        let rf_u = RandomForest::fit(&unweighted, RandomForestConfig::default());
        let rf_w = RandomForest::fit(&weighted, RandomForestConfig::default());
        // Averaged over in-band points, the weighted forest scores the
        // minority class higher.
        let probe: Vec<f64> = (0..20).map(|i| 0.46 + i as f64 * 0.014).collect();
        let mean = |rf: &RandomForest| {
            probe.iter().map(|&x| rf.predict_proba(&[x])).sum::<f64>() / probe.len() as f64
        };
        assert!(
            mean(&rf_w) > mean(&rf_u),
            "w={} u={}",
            mean(&rf_w),
            mean(&rf_u)
        );
    }

    #[test]
    fn empty_forest_predicts_half() {
        let rf = RandomForest { trees: Vec::new() };
        assert_eq!(rf.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn fit_masked_equals_fit_on_zeroed_columns() {
        let train = noisy_separable(300, 7);
        let mut zeroed = train.clone();
        for row in &mut zeroed.features {
            row[1] = 0.0;
        }
        let cfg = RandomForestConfig {
            n_trees: 16,
            seed: 21,
            ..Default::default()
        };
        let via_copy = RandomForest::fit(&zeroed, cfg);
        let via_mask = RandomForest::fit_masked(&train, cfg, |f| f != 1);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..200 {
            let x = [rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)];
            let zeroed_x = [x[0], 0.0];
            assert_eq!(
                via_mask.predict_proba(&zeroed_x),
                via_copy.predict_proba(&zeroed_x)
            );
            // The masked forest never split on the dropped feature, so its
            // value cannot influence the prediction.
            assert_eq!(
                via_mask.predict_proba(&x),
                via_mask.predict_proba(&zeroed_x)
            );
        }
    }

    #[test]
    fn batch_matches_single() {
        let train = noisy_separable(100, 6);
        let rf = RandomForest::fit(&train, RandomForestConfig::default());
        let rows = vec![vec![0.1, 0.1], vec![0.9, 0.9]];
        let batch = rf.predict_proba_batch(&rows);
        assert_eq!(batch[0], rf.predict_proba(&rows[0]));
        assert_eq!(batch[1], rf.predict_proba(&rows[1]));
    }
}

briq_json::json_struct!(RandomForestConfig {
    n_trees,
    tree,
    seed
});
briq_json::json_struct!(RandomForest { trees });
