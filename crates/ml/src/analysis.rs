//! Model-analysis utilities: permutation feature importance and
//! probability calibration (reliability) curves.
//!
//! §IV-A leans on Random Forest probabilities being well calibrated; the
//! reliability curve verifies that for our vote-fraction implementation.
//! Permutation importance quantifies which of the 12 features (§IV-B)
//! carry the signal — the quantitative counterpart of the paper's
//! feature-group ablation (§VIII-B).

use crate::dataset::Dataset;
use crate::metrics::roc_auc;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Permutation importance of every feature: the drop in ROC-AUC when that
/// feature's column is shuffled. `score` maps a feature row to a
/// probability. Higher = more important; ~0 = unused.
pub fn permutation_importance<F>(data: &Dataset, score: F, repeats: usize, seed: u64) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let n = data.len();
    let d = data.n_features();
    if n == 0 || d == 0 {
        return Vec::new();
    }
    let base_scores: Vec<f64> = data.features.iter().map(|r| score(r)).collect();
    let base_auc = roc_auc(&base_scores, &data.labels);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut importance = vec![0.0; d];
    for (f, imp) in importance.iter_mut().enumerate() {
        let mut drop_sum = 0.0;
        for _ in 0..repeats.max(1) {
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let scores: Vec<f64> = data
                .features
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    let mut r = row.clone();
                    r[f] = data.features[perm[i]][f];
                    score(&r)
                })
                .collect();
            drop_sum += base_auc - roc_auc(&scores, &data.labels);
        }
        *imp = drop_sum / repeats.max(1) as f64;
    }
    importance
}

/// One bin of a reliability curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationBin {
    /// Mean predicted probability of the bin.
    pub mean_predicted: f64,
    /// Observed positive fraction of the bin.
    pub observed: f64,
    /// Number of examples in the bin.
    pub count: usize,
}

/// Reliability curve with `n_bins` equal-width probability bins. Empty
/// bins are omitted.
pub fn calibration_curve(scores: &[f64], labels: &[bool], n_bins: usize) -> Vec<CalibrationBin> {
    assert_eq!(scores.len(), labels.len());
    let n_bins = n_bins.max(1);
    let mut sums = vec![(0.0f64, 0usize, 0usize); n_bins]; // (Σp, positives, count)
    for (&s, &l) in scores.iter().zip(labels) {
        let b = ((s * n_bins as f64) as usize).min(n_bins - 1);
        sums[b].0 += s;
        if l {
            sums[b].1 += 1;
        }
        sums[b].2 += 1;
    }
    sums.into_iter()
        .filter(|&(_, _, c)| c > 0)
        .map(|(sp, pos, c)| CalibrationBin {
            mean_predicted: sp / c as f64,
            observed: pos as f64 / c as f64,
            count: c,
        })
        .collect()
}

/// Expected calibration error: count-weighted mean |predicted − observed|.
pub fn expected_calibration_error(bins: &[CalibrationBin]) -> f64 {
    let total: usize = bins.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    bins.iter()
        .map(|b| (b.mean_predicted - b.observed).abs() * b.count as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{RandomForest, RandomForestConfig};

    fn synth(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let signal: f64 = rng.random_range(0.0..1.0);
            let noise: f64 = rng.random_range(0.0..1.0);
            d.push(vec![signal, noise], signal > 0.5);
        }
        d
    }

    #[test]
    fn importance_finds_the_signal_feature() {
        let data = synth(400, 1);
        let rf = RandomForest::fit(
            &data,
            RandomForestConfig {
                n_trees: 32,
                ..Default::default()
            },
        );
        let imp = permutation_importance(&data, |r| rf.predict_proba(r), 3, 7);
        assert_eq!(imp.len(), 2);
        assert!(imp[0] > 0.1, "signal importance {imp:?}");
        assert!(imp[0] > imp[1] * 3.0, "{imp:?}");
    }

    #[test]
    fn importance_empty_dataset() {
        assert!(permutation_importance(&Dataset::new(), |_| 0.5, 1, 0).is_empty());
    }

    #[test]
    fn perfect_calibration_has_zero_ece() {
        // predicted == empirical in two bins
        let scores = [
            0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9,
            0.9, 0.9, 0.9,
        ];
        let labels: Vec<bool> = (0..20)
            .map(|i| if i < 10 { i == 0 } else { i != 10 })
            .collect();
        let bins = calibration_curve(&scores, &labels, 10);
        let ece = expected_calibration_error(&bins);
        assert!(ece < 0.05, "ece {ece}");
    }

    #[test]
    fn miscalibration_detected() {
        // always predicts 0.9 but only 10% positives
        let scores = vec![0.9; 100];
        let labels: Vec<bool> = (0..100).map(|i| i < 10).collect();
        let bins = calibration_curve(&scores, &labels, 10);
        let ece = expected_calibration_error(&bins);
        assert!(ece > 0.7, "ece {ece}");
    }

    #[test]
    fn forest_votes_are_roughly_calibrated() {
        let train = synth(600, 2);
        let test = synth(300, 3);
        let rf = RandomForest::fit(
            &train,
            RandomForestConfig {
                n_trees: 64,
                ..Default::default()
            },
        );
        let scores: Vec<f64> = test.features.iter().map(|r| rf.predict_proba(r)).collect();
        let bins = calibration_curve(&scores, &test.labels, 10);
        let ece = expected_calibration_error(&bins);
        assert!(
            ece < 0.15,
            "vote fractions should be near-calibrated, ece {ece}"
        );
    }

    #[test]
    fn bins_cover_all_points() {
        let scores = [0.0, 0.2, 0.5, 0.99, 1.0];
        let labels = [false, false, true, true, true];
        let bins = calibration_curve(&scores, &labels, 4);
        assert_eq!(bins.iter().map(|b| b.count).sum::<usize>(), 5);
    }
}
