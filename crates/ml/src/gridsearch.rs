//! Exhaustive grid search over hyper-parameter candidates.
//!
//! §VII-C: "We use grid search to choose the best values for the
//! hyper-parameters, for the classifiers as well as for the graph-based
//! algorithm." The searcher is generic: callers enumerate candidate
//! parameter sets and provide an evaluation closure (higher is better).

/// Evaluate every candidate and return `(best_index, best_score)`.
/// Ties keep the earliest candidate (stable). Returns `None` when the
/// candidate list is empty or every score is NaN.
pub fn grid_search<P, F>(candidates: &[P], mut eval: F) -> Option<(usize, f64)>
where
    F: FnMut(&P) -> f64,
{
    let mut best: Option<(usize, f64)> = None;
    for (i, cand) in candidates.iter().enumerate() {
        let score = eval(cand);
        if score.is_nan() {
            continue;
        }
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((i, score));
        }
    }
    best
}

/// Cartesian product of per-dimension value lists — the usual way to build
/// a grid. `product(&[vec![1,2], vec![10,20]])` yields `[1,10], [1,20],
/// [2,10], [2,20]`.
pub fn product<T: Clone>(dims: &[Vec<T>]) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = vec![Vec::new()];
    for dim in dims {
        let mut next = Vec::with_capacity(out.len() * dim.len());
        for prefix in &out {
            for v in dim {
                let mut row = prefix.clone();
                row.push(v.clone());
                next.push(row);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_maximum() {
        let cands = vec![1.0, 5.0, 3.5];
        let (i, s) = grid_search(&cands, |&x| -(x - 4.0f64).powi(2)).unwrap();
        assert_eq!(i, 2); // 3.5 is closest to 4.0
        assert_eq!(s, -0.25);
    }

    #[test]
    fn ties_keep_first() {
        let cands = vec![1, 2, 3];
        let (i, _) = grid_search(&cands, |_| 7.0).unwrap();
        assert_eq!(i, 0);
    }

    #[test]
    fn empty_and_nan() {
        assert_eq!(grid_search::<f64, _>(&[], |_| 0.0), None);
        assert_eq!(grid_search(&[1.0], |_| f64::NAN), None);
        let (i, _) = grid_search(&[1.0, 2.0], |&x| if x < 1.5 { f64::NAN } else { 1.0 }).unwrap();
        assert_eq!(i, 1);
    }

    #[test]
    fn cartesian_product() {
        let grid = product(&[vec![1, 2], vec![10, 20], vec![100]]);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0], vec![1, 10, 100]);
        assert_eq!(grid[3], vec![2, 20, 100]);
    }

    #[test]
    fn empty_dims_yield_single_empty_row() {
        let grid: Vec<Vec<i32>> = product(&[]);
        assert_eq!(grid, vec![Vec::<i32>::new()]);
    }
}
