//! # briq-ml
//!
//! Machine-learning substrate for BriQ, built from scratch:
//!
//! * [`tree`] / [`forest`] — CART decision trees and a class-weighted
//!   Random Forest with calibrated vote-fraction probabilities (§IV-A; the
//!   original system used R `caret` via rpy2),
//! * [`flat`] — flattened structure-of-arrays forest layout for
//!   allocation-free scoring on the classify hot path,
//! * [`dataset`] — feature-matrix container with instance weights and the
//!   class-imbalance weighting of §VII-B,
//! * [`metrics`] — precision/recall/F1 and ROC-AUC (the paper optimizes
//!   for AUC, §VII-B),
//! * [`entropy`] — Shannon entropy of score distributions (adaptive
//!   filtering §V-B and entropy-ordered resolution §VI-B),
//! * [`kappa`] — Fleiss' kappa for inter-annotator agreement (§VII-A),
//! * [`split`] — seeded stratified train/validation/test splitting,
//! * [`gridsearch`] — exhaustive hyper-parameter grid search (§VII-C).

#![warn(missing_docs)]

pub mod analysis;
pub mod dataset;
pub mod entropy;
pub mod flat;
pub mod forest;
pub mod gridsearch;
pub mod kappa;
pub mod metrics;
pub mod split;
pub mod tree;

pub use analysis::{calibration_curve, expected_calibration_error, permutation_importance};
pub use dataset::Dataset;
pub use entropy::shannon_entropy;
pub use flat::{FlatForest, FlatForestF32, LANE_WIDTH};
pub use forest::{RandomForest, RandomForestConfig};
pub use kappa::fleiss_kappa;
pub use metrics::{f1_score, precision_recall_f1, roc_auc, Prf};
pub use tree::{DecisionTree, TreeConfig};
