//! Feature-matrix dataset with binary labels and instance weights.

/// A supervised binary-classification dataset.
///
/// Features are dense `f64` rows; categorical features are encoded as
/// small integers (trees split numerically, which subsumes one-vs-rest
/// category splits for ordered encodings).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Row-major feature matrix.
    pub features: Vec<Vec<f64>>,
    /// Binary labels (`true` = positive / "related").
    pub labels: Vec<bool>,
    /// Per-instance weights (class weighting, §VII-B).
    pub weights: Vec<f64>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one example with weight 1.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        self.push_weighted(features, label, 1.0);
    }

    /// Add one weighted example.
    pub fn push_weighted(&mut self, features: Vec<f64>, label: bool, weight: f64) {
        debug_assert!(
            self.features.is_empty() || self.features[0].len() == features.len(),
            "inconsistent feature dimensionality"
        );
        self.features.push(features);
        self.labels.push(label);
        self.weights.push(weight);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per example (0 for an empty dataset).
    pub fn n_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Number of positive examples.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Re-weight instances inversely proportional to their class frequency
    /// (§VII-B: "these weights are inversely proportional to the ratio of
    /// the positive or negative labels in the dataset").
    pub fn apply_class_weights(&mut self) {
        let n = self.len() as f64;
        let pos = self.n_positive() as f64;
        let neg = n - pos;
        if pos == 0.0 || neg == 0.0 {
            return;
        }
        let (wp, wn) = (n / (2.0 * pos), n / (2.0 * neg));
        for (w, &l) in self.weights.iter_mut().zip(&self.labels) {
            *w = if l { wp } else { wn };
        }
    }

    /// Select a sub-dataset by example indices (with repetition allowed —
    /// used for bootstrap samples).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            weights: indices.iter().map(|&i| self.weights[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new();
        d.push(vec![1.0, 0.0], true);
        d.push(vec![0.0, 1.0], false);
        d.push(vec![0.5, 0.5], false);
        d.push(vec![0.9, 0.1], false);
        d
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.n_positive(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn class_weights_balance_total_mass() {
        let mut d = toy();
        d.apply_class_weights();
        let pos_mass: f64 = d
            .weights
            .iter()
            .zip(&d.labels)
            .filter(|(_, &l)| l)
            .map(|(w, _)| w)
            .sum();
        let neg_mass: f64 = d
            .weights
            .iter()
            .zip(&d.labels)
            .filter(|(_, &l)| !l)
            .map(|(w, _)| w)
            .sum();
        assert!((pos_mass - neg_mass).abs() < 1e-9);
        // total mass preserved
        let total: f64 = d.weights.iter().sum();
        assert!((total - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_class_weighting_is_noop() {
        let mut d = Dataset::new();
        d.push(vec![1.0], true);
        d.push(vec![2.0], true);
        d.apply_class_weights();
        assert_eq!(d.weights, vec![1.0, 1.0]);
    }

    #[test]
    fn select_with_repetition() {
        let d = toy();
        let s = d.select(&[0, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels, vec![true, true, false]);
        assert_eq!(s.features[0], s.features[1]);
    }
}

briq_json::json_struct!(Dataset {
    features,
    labels,
    weights
});
