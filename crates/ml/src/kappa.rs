//! Fleiss' kappa for inter-annotator agreement (§VII-A: κ = 0.6854 over 8
//! annotators was "substantial"). Used to validate the simulated annotator
//! panel in `briq-corpus`.

/// Fleiss' kappa for `ratings[item][category]` = number of annotators who
/// assigned `item` to `category`. Every item must have the same number of
/// total ratings (annotators). Returns `None` for degenerate input (no
/// items, fewer than 2 raters, or zero expected disagreement).
pub fn fleiss_kappa(ratings: &[Vec<usize>]) -> Option<f64> {
    let n_items = ratings.len();
    if n_items == 0 {
        return None;
    }
    let n_cats = ratings[0].len();
    let n_raters: usize = ratings[0].iter().sum();
    if n_raters < 2 {
        return None;
    }
    if ratings
        .iter()
        .any(|r| r.len() != n_cats || r.iter().sum::<usize>() != n_raters)
    {
        return None;
    }

    // Per-item agreement P_i.
    let n = n_raters as f64;
    let p_bar: f64 = ratings
        .iter()
        .map(|r| {
            let s: f64 = r.iter().map(|&c| (c * c) as f64).sum();
            (s - n) / (n * (n - 1.0))
        })
        .sum::<f64>()
        / n_items as f64;

    // Category marginals p_j.
    let mut totals = vec![0.0f64; n_cats];
    for r in ratings {
        for (t, &c) in totals.iter_mut().zip(r) {
            *t += c as f64;
        }
    }
    let grand = n_items as f64 * n;
    let p_e: f64 = totals.iter().map(|&t| (t / grand).powi(2)).sum();

    if (1.0 - p_e).abs() < 1e-12 {
        return None;
    }
    Some((p_bar - p_e) / (1.0 - p_e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        // 3 raters, everyone picks category 0 for item 1, category 1 for 2.
        let ratings = vec![vec![3, 0], vec![0, 3], vec![3, 0]];
        let k = fleiss_kappa(&ratings).unwrap();
        assert!((k - 1.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_example() {
        // The classic Fleiss (1971) worked example: 10 subjects, 14
        // raters, 5 categories; κ ≈ 0.21.
        let ratings = vec![
            vec![0, 0, 0, 0, 14],
            vec![0, 2, 6, 4, 2],
            vec![0, 0, 3, 5, 6],
            vec![0, 3, 9, 2, 0],
            vec![2, 2, 8, 1, 1],
            vec![7, 7, 0, 0, 0],
            vec![3, 2, 6, 3, 0],
            vec![2, 5, 3, 2, 2],
            vec![6, 5, 2, 1, 0],
            vec![0, 2, 2, 3, 7],
        ];
        let k = fleiss_kappa(&ratings).unwrap();
        assert!((k - 0.20993).abs() < 1e-3, "{k}");
    }

    #[test]
    fn uniform_random_is_near_zero() {
        // Two raters split evenly on every item → P̄ = 0, Pe = 0.5 → κ = -1
        let ratings = vec![vec![1, 1]; 8];
        let k = fleiss_kappa(&ratings).unwrap();
        assert!(k < 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fleiss_kappa(&[]).is_none());
        assert!(fleiss_kappa(&[vec![1, 0]]).is_none()); // single rater
                                                        // inconsistent rater counts
        assert!(fleiss_kappa(&[vec![2, 0], vec![1, 0]]).is_none());
        // all raters always same single category → Pe = 1
        assert!(fleiss_kappa(&[vec![3, 0], vec![3, 0]]).is_none());
    }

    #[test]
    fn degenerate_confusion_matrices_return_none_not_nan() {
        // Items with zero categories: no ratings at all.
        assert!(fleiss_kappa(&[vec![]]).is_none());
        assert!(fleiss_kappa(&[vec![], vec![]]).is_none());
        // Zero raters per item (categories exist but nobody voted).
        assert!(fleiss_kappa(&[vec![0, 0], vec![0, 0]]).is_none());
        // Items disagreeing on category count.
        assert!(fleiss_kappa(&[vec![2, 0], vec![1, 1, 0]]).is_none());
        // Whatever does come back must be finite — κ is a ratio of
        // probabilities and NaN would poison downstream comparisons.
        let valid = vec![vec![2, 1], vec![1, 2], vec![3, 0]];
        let k = fleiss_kappa(&valid);
        assert!(k.is_some_and(f64::is_finite));
    }
}
