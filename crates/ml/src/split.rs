//! Seeded (optionally stratified) train/validation/test splitting.
//!
//! §VII-B: "The tableS dataset was randomly split into disjoint training
//! (80%), test (10%) and validation sets (10%)."

use rand::prelude::*;
use rand::rngs::StdRng;

/// Index split into train / validation / test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation (tuning) indices.
    pub validation: Vec<usize>,
    /// Held-out test indices.
    pub test: Vec<usize>,
}

/// Random split of `n` items by the given fractions (validation gets
/// `val_frac`, test gets `test_frac`, train the rest).
pub fn random_split(n: usize, val_frac: f64, test_frac: f64, seed: u64) -> Split {
    assert!(val_frac >= 0.0 && test_frac >= 0.0 && val_frac + test_frac < 1.0);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_val = (n as f64 * val_frac).round() as usize;
    let n_test = (n as f64 * test_frac).round() as usize;
    let validation = idx[..n_val].to_vec();
    let test = idx[n_val..n_val + n_test].to_vec();
    let train = idx[n_val + n_test..].to_vec();
    Split {
        train,
        validation,
        test,
    }
}

/// Stratified split: class proportions are preserved in each part.
pub fn stratified_split(labels: &[bool], val_frac: f64, test_frac: f64, seed: u64) -> Split {
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);

    let mut split = Split {
        train: Vec::new(),
        validation: Vec::new(),
        test: Vec::new(),
    };
    for class in [pos, neg] {
        let n = class.len();
        let n_val = (n as f64 * val_frac).round() as usize;
        let n_test = (n as f64 * test_frac).round() as usize;
        split.validation.extend(&class[..n_val]);
        split.test.extend(&class[n_val..n_val + n_test]);
        split.train.extend(&class[n_val + n_test..]);
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let s = random_split(100, 0.1, 0.1, 7);
        assert_eq!(s.validation.len(), 10);
        assert_eq!(s.test.len(), 10);
        assert_eq!(s.train.len(), 80);
        let all: BTreeSet<usize> = s
            .train
            .iter()
            .chain(&s.validation)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(random_split(50, 0.2, 0.2, 3), random_split(50, 0.2, 0.2, 3));
        assert_ne!(random_split(50, 0.2, 0.2, 3), random_split(50, 0.2, 0.2, 4));
    }

    #[test]
    fn stratified_preserves_class_ratio() {
        let labels: Vec<bool> = (0..200).map(|i| i % 10 == 0).collect(); // 10% positive
        let s = stratified_split(&labels, 0.1, 0.1, 11);
        let pos_in = |ids: &[usize]| ids.iter().filter(|&&i| labels[i]).count();
        assert_eq!(pos_in(&s.validation), 2);
        assert_eq!(pos_in(&s.test), 2);
        assert_eq!(pos_in(&s.train), 16);
        let all: BTreeSet<usize> = s
            .train
            .iter()
            .chain(&s.validation)
            .chain(&s.test)
            .copied()
            .collect();
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn zero_fraction_parts_are_empty() {
        let s = random_split(10, 0.0, 0.0, 1);
        assert!(s.validation.is_empty());
        assert!(s.test.is_empty());
        assert_eq!(s.train.len(), 10);
    }
}
