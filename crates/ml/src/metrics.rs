//! Evaluation metrics: precision / recall / F1 and ROC-AUC.
//!
//! §VII-C: "The traditional classifier performance metrics like accuracy
//! … are not informative in our setting with high imbalance … Therefore,
//! we use precision, recall and F1 as major metrics."

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    /// TP / (TP + FP); 0 when nothing was predicted positive.
    pub precision: f64,
    /// TP / (TP + FN); 0 when there are no positives.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Prf {
    /// Build from confusion counts.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Prf {
        let precision = if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            0.0
        };
        let recall = if tp + fn_ > 0 {
            tp as f64 / (tp + fn_) as f64
        } else {
            0.0
        };
        Prf {
            precision,
            recall,
            f1: f1_from(precision, recall),
        }
    }
}

/// Harmonic mean of precision and recall.
pub fn f1_from(precision: f64, recall: f64) -> f64 {
    if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    }
}

/// F1 of hard predictions against labels.
pub fn f1_score(predicted: &[bool], labels: &[bool]) -> f64 {
    precision_recall_f1(predicted, labels).f1
}

/// Precision/recall/F1 of hard predictions against labels.
pub fn precision_recall_f1(predicted: &[bool], labels: &[bool]) -> Prf {
    assert_eq!(predicted.len(), labels.len());
    let mut tp = 0;
    let mut fp = 0;
    let mut fn_ = 0;
    for (&p, &l) in predicted.iter().zip(labels) {
        match (p, l) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    Prf::from_counts(tp, fp, fn_)
}

/// Area under the ROC curve via the rank statistic (equivalent to the
/// Mann–Whitney U). Ties get half credit. Returns 0.5 when one class is
/// absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Average ranks over tied score groups.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j < order.len() && scores[order[j]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = ((i + 1 + j) as f64) / 2.0; // ranks are 1-based
        for &k in &order[i..j] {
            if labels[k] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let labels = [true, false, true, false];
        let prf = precision_recall_f1(&labels, &labels);
        assert_eq!(
            prf,
            Prf {
                precision: 1.0,
                recall: 1.0,
                f1: 1.0
            }
        );
    }

    #[test]
    fn half_precision() {
        let predicted = [true, true, true, true];
        let labels = [true, true, false, false];
        let prf = precision_recall_f1(&predicted, &labels);
        assert_eq!(prf.precision, 0.5);
        assert_eq!(prf.recall, 1.0);
        assert!((prf.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_positive_predictions() {
        let prf = precision_recall_f1(&[false, false], &[true, false]);
        assert_eq!(prf.precision, 0.0);
        assert_eq!(prf.recall, 0.0);
        assert_eq!(prf.f1, 0.0);
    }

    #[test]
    fn from_counts_matches() {
        assert_eq!(
            Prf::from_counts(3, 1, 2),
            precision_recall_f1(
                &[true, true, true, true, false, false],
                &[true, true, true, false, true, true]
            )
        );
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
        let inv = [true, true, false, false];
        assert_eq!(roc_auc(&scores, &inv), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn auc_with_ties_partial() {
        let scores = [0.1, 0.5, 0.5, 0.9];
        let labels = [false, true, false, true];
        let auc = roc_auc(&scores, &labels);
        assert!((auc - 0.875).abs() < 1e-12, "{auc}");
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(roc_auc(&[0.3, 0.4], &[true, true]), 0.5);
    }
}

briq_json::json_struct!(Prf {
    precision,
    recall,
    f1
});
