//! CART decision tree for weighted binary classification.
//!
//! Splits minimize weighted Gini impurity. Supports the random feature
//! subsetting (`mtry`) that Random Forests rely on for decorrelation.

use crate::dataset::Dataset;
use rand::prelude::*;

/// Tree-growing configuration.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum total instance weight in a leaf.
    pub min_leaf_weight: f64,
    /// Number of random features considered per split; `0` = all.
    pub mtry: usize,
    /// Minimum Gini improvement to accept a split. The default of 0
    /// accepts zero-gain splits (needed for XOR-like interactions, and the
    /// standard behaviour of fully-grown Random Forest trees).
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_leaf_weight: 2.0,
            mtry: 0,
            min_gain: 0.0,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    Leaf {
        /// Weighted fraction of positive examples in the leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        /// Examples with `x[feature] <= threshold` go left.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

struct Builder<'d> {
    data: &'d Dataset,
    cfg: TreeConfig,
    nodes: Vec<Node>,
    /// Feature filter: features with `keep(f) == false` are never chosen
    /// as splits. Identical to zeroing those columns (a constant column
    /// yields no valid split) without copying the matrix.
    keep: &'d dyn Fn(usize) -> bool,
}

impl DecisionTree {
    /// Grow a tree on `data` (all rows).
    pub fn fit(data: &Dataset, cfg: TreeConfig, rng: &mut impl Rng) -> DecisionTree {
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &indices, cfg, rng)
    }

    /// Grow a tree on the given row indices (bootstrap sample).
    pub fn fit_on(
        data: &Dataset,
        indices: &[usize],
        cfg: TreeConfig,
        rng: &mut impl Rng,
    ) -> DecisionTree {
        Self::fit_on_masked(data, indices, cfg, rng, &|_| true)
    }

    /// [`DecisionTree::fit_on`] with a feature filter: splits only consider
    /// features where `keep(f)` holds. Bit-identical (structure and RNG
    /// stream) to fitting on a copy of `data` with the dropped columns
    /// zeroed, without materializing that copy.
    pub fn fit_on_masked(
        data: &Dataset,
        indices: &[usize],
        cfg: TreeConfig,
        rng: &mut impl Rng,
        keep: &dyn Fn(usize) -> bool,
    ) -> DecisionTree {
        let mut b = Builder {
            data,
            cfg,
            nodes: Vec::new(),
            keep,
        };
        let mut idx = indices.to_vec();
        b.grow(&mut idx, 0, rng);
        DecisionTree { nodes: b.nodes }
    }

    /// Probability that `x` belongs to the positive class (leaf fraction).
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Raw node storage, for the flattened layout in [`crate::flat`].
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

impl<'d> Builder<'d> {
    /// Grow the subtree for `indices`; returns its node id.
    fn grow(&mut self, indices: &mut [usize], depth: usize, rng: &mut impl Rng) -> usize {
        let (w_total, w_pos) = self.mass(indices);
        let prob = if w_total > 0.0 { w_pos / w_total } else { 0.5 };

        let pure = w_pos <= f64::EPSILON || (w_total - w_pos) <= f64::EPSILON;
        if depth >= self.cfg.max_depth || pure || w_total < 2.0 * self.cfg.min_leaf_weight {
            return self.leaf(prob);
        }
        match self.best_split(indices, rng) {
            Some((feature, threshold, gain)) if gain >= self.cfg.min_gain => {
                // Partition indices in place.
                let mid = partition(indices, |&i| self.data.features[i][feature] <= threshold);
                if mid == 0 || mid == indices.len() {
                    return self.leaf(prob);
                }
                let id = self.nodes.len();
                self.nodes.push(Node::Leaf { prob }); // placeholder
                let (l_idx, r_idx) = indices.split_at_mut(mid);
                let left = self.grow(l_idx, depth + 1, rng);
                let right = self.grow(r_idx, depth + 1, rng);
                self.nodes[id] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                id
            }
            _ => self.leaf(prob),
        }
    }

    fn leaf(&mut self, prob: f64) -> usize {
        self.nodes.push(Node::Leaf { prob });
        self.nodes.len() - 1
    }

    fn mass(&self, indices: &[usize]) -> (f64, f64) {
        let mut t = 0.0;
        let mut p = 0.0;
        for &i in indices {
            let w = self.data.weights[i];
            t += w;
            if self.data.labels[i] {
                p += w;
            }
        }
        (t, p)
    }

    /// Find the best (feature, threshold, gain) over a random feature
    /// subset. When the sampled subset yields no valid split (all selected
    /// features constant on this node), fall back to the full feature set
    /// — the usual remedy for sparse feature spaces.
    fn best_split(&self, indices: &[usize], rng: &mut impl Rng) -> Option<(usize, f64, f64)> {
        let n_features = self.data.n_features();
        let mtry = if self.cfg.mtry == 0 {
            n_features
        } else {
            self.cfg.mtry.min(n_features)
        };
        if mtry < n_features {
            let mut feats: Vec<usize> = (0..n_features).collect();
            feats.shuffle(rng);
            feats.truncate(mtry);
            if let Some(found) = self.best_split_over(indices, &feats) {
                return Some(found);
            }
        }
        let all: Vec<usize> = (0..n_features).collect();
        self.best_split_over(indices, &all)
    }

    fn best_split_over(&self, indices: &[usize], feats: &[usize]) -> Option<(usize, f64, f64)> {
        let (w_total, w_pos) = self.mass(indices);
        let parent_gini = gini(w_pos, w_total);
        let mut best: Option<(usize, f64, f64)> = None;

        let mut order: Vec<usize> = indices.to_vec();
        for &f in feats {
            if !(self.keep)(f) {
                // A dropped feature behaves like a constant column: it can
                // never produce a valid split, so skip the work outright.
                continue;
            }
            order.sort_by(|&a, &b| {
                self.data.features[a][f]
                    .partial_cmp(&self.data.features[b][f])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut lw = 0.0;
            let mut lp = 0.0;
            for k in 0..order.len().saturating_sub(1) {
                let i = order[k];
                lw += self.data.weights[i];
                if self.data.labels[i] {
                    lp += self.data.weights[i];
                }
                let v = self.data.features[i][f];
                let v_next = self.data.features[order[k + 1]][f];
                if v == v_next {
                    continue; // can't split between equal values
                }
                let rw = w_total - lw;
                let rp = w_pos - lp;
                if lw < self.cfg.min_leaf_weight || rw < self.cfg.min_leaf_weight {
                    continue;
                }
                let child = (lw / w_total) * gini(lp, lw) + (rw / w_total) * gini(rp, rw);
                let gain = parent_gini - child;
                let threshold = 0.5 * (v + v_next);
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, threshold, gain));
                }
            }
        }
        best
    }
}

/// Weighted Gini impurity of a node with positive mass `p` of total `t`.
fn gini(p: f64, t: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    let q = p / t;
    2.0 * q * (1.0 - q)
}

/// Stable in-place partition; returns the number of elements satisfying
/// the predicate (moved to the front).
fn partition<T: Copy, F: Fn(&T) -> bool>(xs: &mut [T], pred: F) -> usize {
    let mut buf: Vec<T> = Vec::with_capacity(xs.len());
    let mut mid = 0;
    for &x in xs.iter() {
        if pred(&x) {
            buf.insert(mid, x);
            mid += 1;
        } else {
            buf.push(x);
        }
    }
    xs.copy_from_slice(&buf);
    mid
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Linearly separable on feature 0.
    fn separable() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..50 {
            d.push(vec![i as f64, (i % 7) as f64], i >= 25);
        }
        d
    }

    #[test]
    fn learns_separable_data() {
        let d = separable();
        let t = DecisionTree::fit(&d, TreeConfig::default(), &mut rng());
        for i in 0..50 {
            assert_eq!(t.predict(&[i as f64, 0.0]), i >= 25, "at {i}");
        }
    }

    #[test]
    fn leaf_probability_reflects_mixture() {
        // No split possible (all features equal) → single leaf with the
        // positive fraction.
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![1.0], i < 3);
        }
        let t = DecisionTree::fit(&d, TreeConfig::default(), &mut rng());
        assert!((t.predict_proba(&[1.0]) - 0.3).abs() < 1e-9);
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn respects_max_depth() {
        let d = separable();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, cfg, &mut rng());
        assert_eq!(t.n_nodes(), 1);
    }

    #[test]
    fn weights_shift_the_decision() {
        // Same features, conflicting labels; weights decide the leaf prob.
        let mut d = Dataset::new();
        d.push_weighted(vec![0.0], true, 9.0);
        d.push_weighted(vec![0.0], false, 1.0);
        let t = DecisionTree::fit(&d, TreeConfig::default(), &mut rng());
        assert!((t.predict_proba(&[0.0]) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut d = Dataset::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..5 {
                d.push(vec![a, b], (a == 1.0) != (b == 1.0));
            }
        }
        let cfg = TreeConfig {
            min_leaf_weight: 1.0,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, cfg, &mut rng());
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            assert_eq!(t.predict(&[a, b]), (a == 1.0) != (b == 1.0));
        }
    }

    #[test]
    fn empty_dataset_predicts_half() {
        let d = Dataset::new();
        let t = DecisionTree::fit(&d, TreeConfig::default(), &mut rng());
        assert_eq!(t.predict_proba(&[]), 0.5);
    }

    #[test]
    fn partition_is_stable() {
        let mut xs = [5, 2, 8, 1, 9, 3];
        let mid = partition(&mut xs, |&x| x < 5);
        assert_eq!(mid, 3);
        assert_eq!(&xs[..3], &[2, 1, 3]);
        assert_eq!(&xs[3..], &[5, 8, 9]);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(0.0, 10.0), 0.0);
        assert_eq!(gini(10.0, 10.0), 0.0);
        assert!((gini(5.0, 10.0) - 0.5).abs() < 1e-12);
    }
}

briq_json::json_struct!(TreeConfig {
    max_depth,
    min_leaf_weight,
    mtry,
    min_gain
});
briq_json::json_struct!(DecisionTree { nodes });

// `Node` has struct variants, which the derive-style macros don't cover;
// the encoding mirrors json_enum!'s externally-tagged form.
impl briq_json::ToJson for Node {
    fn to_json(&self) -> briq_json::Value {
        use briq_json::Value;
        match self {
            Node::Leaf { prob } => Value::Object(vec![(
                "Leaf".to_string(),
                Value::Object(vec![("prob".to_string(), prob.to_json())]),
            )]),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => Value::Object(vec![(
                "Split".to_string(),
                Value::Object(vec![
                    ("feature".to_string(), feature.to_json()),
                    ("threshold".to_string(), threshold.to_json()),
                    ("left".to_string(), left.to_json()),
                    ("right".to_string(), right.to_json()),
                ]),
            )]),
        }
    }
}

impl briq_json::FromJson for Node {
    fn from_json(v: &briq_json::Value) -> briq_json::Result<Self> {
        if let Some(inner) = v.get_variant("Leaf") {
            let obj = inner
                .as_object()
                .ok_or_else(|| briq_json::JsonError::new("expected Leaf object"))?;
            Ok(Node::Leaf {
                prob: briq_json::field(obj, "prob")?,
            })
        } else if let Some(inner) = v.get_variant("Split") {
            let obj = inner
                .as_object()
                .ok_or_else(|| briq_json::JsonError::new("expected Split object"))?;
            Ok(Node::Split {
                feature: briq_json::field(obj, "feature")?,
                threshold: briq_json::field(obj, "threshold")?,
                left: briq_json::field(obj, "left")?,
                right: briq_json::field(obj, "right")?,
            })
        } else {
            Err(briq_json::JsonError::new("unknown Node variant"))
        }
    }
}
