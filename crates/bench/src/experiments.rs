//! Shared experiment machinery: corpus setup, training, evaluation of the
//! three systems (RF-only, RWR-only, BriQ) under the three mention
//! variants (original, truncated, rounded).

use briq_core::baselines::{rf_only_scored, rwr_only_scored};
use briq_core::evaluate::{EvalReport, FilterRecall};
use briq_core::filtering::FilterStats;
use briq_core::obs::{names, Recorder};
use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::training::{build_training_examples, LabeledDocument, TrainingBreakdown};
use briq_core::FeatureMask;
use briq_corpus::annotate::{annotate, AnnotatorConfig};
use briq_corpus::corpus::{generate_corpus_observed, CorpusConfig};
use briq_corpus::{perturb_document, Domain, Perturbation};
use briq_ml::split::{random_split, Split};

/// Which system to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Classifier-only baseline.
    Rf,
    /// Random-walk-only baseline.
    Rwr,
    /// The full BriQ pipeline.
    Briq,
}

impl SystemKind {
    /// All three systems in the paper's column order.
    pub const ALL: [SystemKind; 3] = [SystemKind::Rf, SystemKind::Rwr, SystemKind::Briq];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Rf => "RF",
            SystemKind::Rwr => "RWR",
            SystemKind::Briq => "BriQ",
        }
    }
}

/// A prepared experiment: annotated corpus, split, trained system.
pub struct ExperimentSetup {
    /// Annotated labeled documents.
    pub documents: Vec<LabeledDocument>,
    /// Domain per document.
    pub domains: Vec<Domain>,
    /// Document-level 80/10/10 split.
    pub split: Split,
    /// The trained BriQ instance.
    pub briq: Briq,
    /// Measured inter-annotator kappa.
    pub kappa: f64,
    /// Training-data breakdown (Table I).
    pub breakdown: TrainingBreakdown,
}

/// Experiment-setup parameters.
#[derive(Debug, Clone)]
pub struct SetupConfig {
    /// Number of corpus documents.
    pub n_documents: usize,
    /// Corpus seed.
    pub seed: u64,
    /// Feature-ablation mask.
    pub mask: FeatureMask,
}

impl Default for SetupConfig {
    fn default() -> Self {
        SetupConfig {
            n_documents: 400,
            seed: 20190408,
            mask: FeatureMask::all(),
        }
    }
}

/// Generate, annotate, split, and train.
pub fn prepare(cfg: &SetupConfig) -> ExperimentSetup {
    prepare_observed(cfg, &Recorder::disabled())
}

/// [`prepare`] with observability: the corpus-generation span/counters
/// and the training spans/counters are recorded into `rec`. The
/// recorder only observes — the prepared setup is bit-identical with it
/// enabled or disabled.
pub fn prepare_observed(cfg: &SetupConfig, rec: &Recorder) -> ExperimentSetup {
    let corpus_cfg = CorpusConfig {
        n_documents: cfg.n_documents,
        seed: cfg.seed,
        ..Default::default()
    };
    let corpus = generate_corpus_observed(&corpus_cfg, rec);
    let mut documents = corpus.documents;
    let domains = corpus.domains;
    let outcome = annotate(&mut documents, &AnnotatorConfig::default());

    // 80/10/10 document split (§VII-B).
    let split = random_split(documents.len(), 0.1, 0.1, cfg.seed ^ 0x5eed);

    let mut train_docs: Vec<LabeledDocument> =
        split.train.iter().map(|&i| documents[i].clone()).collect();
    // The tagger trains on a withheld slice — we use the validation split
    // (disjoint from both training and test).
    let mut tagger_docs: Vec<LabeledDocument> = split
        .validation
        .iter()
        .map(|&i| documents[i].clone())
        .collect();
    // Training-side labels carry the annotation noise that survives
    // consensus (κ = 0.6854 is substantial, not perfect); the evaluation
    // measures against the synthesized truth.
    briq_corpus::annotate::corrupt_labels(&mut train_docs, &AnnotatorConfig::default());
    briq_corpus::annotate::corrupt_labels(&mut tagger_docs, &AnnotatorConfig::default());

    let briq_cfg = BriqConfig {
        mask: cfg.mask,
        ..Default::default()
    };
    let (_, breakdown) =
        build_training_examples(&train_docs, &briq_cfg.virtual_cells, &briq_cfg.context);
    // Hyper-parameters (α/β mix and ε of Eq. 1) are grid-searched on the
    // validation split, as in §VII-C.
    let (briq, _) = Briq::train_tuned_observed(briq_cfg, &train_docs, &tagger_docs, rec);

    ExperimentSetup {
        documents,
        domains,
        split,
        briq,
        kappa: outcome.kappa,
        breakdown,
    }
}

/// The test documents of a setup, under a perturbation.
pub fn test_documents(setup: &ExperimentSetup, p: Perturbation) -> Vec<LabeledDocument> {
    setup
        .split
        .test
        .iter()
        .map(|&i| perturb_document(&setup.documents[i], p))
        .collect()
}

/// Evaluate one system over the given labeled documents.
pub fn evaluate_system(briq: &Briq, system: SystemKind, docs: &[LabeledDocument]) -> EvalReport {
    evaluate_system_observed(briq, system, docs, &Recorder::disabled())
}

/// [`evaluate_system`] under an `evaluate` span, counting evaluated
/// documents into `rec`. Scores are bit-identical either way.
pub fn evaluate_system_observed(
    briq: &Briq,
    system: SystemKind,
    docs: &[LabeledDocument],
    rec: &Recorder,
) -> EvalReport {
    let _g = briq_core::span!(rec, names::SPAN_EVAL);
    rec.count(names::EVAL_DOCUMENTS, docs.len() as u64);
    let mut report = EvalReport::default();
    for ld in docs {
        let predictions = match system {
            SystemKind::Rf => {
                let sd = briq.score_document(&ld.document);
                rf_only_scored(&sd)
            }
            SystemKind::Rwr => {
                let sd = briq.score_document(&ld.document);
                rwr_only_scored(briq, &sd)
            }
            SystemKind::Briq => briq.align(&ld.document),
        };
        report.add_document(&predictions, &ld.gold);
    }
    report
}

/// Filtering selectivity + post-filter recall over documents (Table VI).
pub fn filtering_stats(briq: &Briq, docs: &[LabeledDocument]) -> (FilterStats, FilterRecall) {
    let mut stats = FilterStats::default();
    let mut recall = FilterRecall::default();
    for ld in docs {
        let sd = briq.score_document(&ld.document);
        let (candidates, s) = briq.filter(&sd);
        stats.merge(&s);
        recall.add_document(&sd.mentions, &candidates, &sd.targets, &ld.gold);
    }
    (stats, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_setup() -> ExperimentSetup {
        prepare(&SetupConfig {
            n_documents: 60,
            seed: 42,
            mask: FeatureMask::all(),
        })
    }

    #[test]
    fn setup_trains_and_splits() {
        let s = small_setup();
        assert!(s.briq.is_trained());
        assert_eq!(s.split.test.len(), 6);
        assert_eq!(s.split.validation.len(), 6);
        assert_eq!(s.split.train.len(), 48);
        assert!(s.kappa > 0.4);
        let (pos, neg) = s.breakdown.totals();
        assert!(pos > 0 && neg > 0);
    }

    #[test]
    fn briq_competitive_with_rf_and_beats_it_on_precision() {
        // At small test scales BriQ's F1 margin over RF fluctuates with
        // the seed (EXPERIMENTS.md discusses the variance); the robust
        // invariants are competitiveness on F1 and the precision edge
        // from ε-rejection of unalignable mentions.
        let s = prepare(&SetupConfig {
            n_documents: 200,
            seed: 20190408,
            mask: FeatureMask::all(),
        });
        let docs = test_documents(&s, Perturbation::Original);
        let briq = evaluate_system(&s.briq, SystemKind::Briq, &docs);
        let rf = evaluate_system(&s.briq, SystemKind::Rf, &docs);
        assert!(
            briq.overall().f1 >= rf.overall().f1 - 0.05,
            "BriQ {} vs RF {}",
            briq.overall().f1,
            rf.overall().f1
        );
        assert!(
            briq.overall().precision >= rf.overall().precision,
            "BriQ precision {} vs RF precision {}",
            briq.overall().precision,
            rf.overall().precision
        );
        assert!(briq.overall().f1 > 0.3, "BriQ F1 {}", briq.overall().f1);
    }

    #[test]
    fn filtering_keeps_most_gold() {
        let s = small_setup();
        let docs = test_documents(&s, Perturbation::Original);
        let (stats, recall) = filtering_stats(&s.briq, &docs);
        assert!(stats.overall_selectivity() < 0.3);
        assert!(
            recall.overall() > 0.5,
            "post-filter recall {}",
            recall.overall()
        );
    }
}
