//! Document-throughput measurement (Table VIII) with a scoped-thread
//! worker pool — the single-machine stand-in for the paper's 10-executor
//! Spark cluster.
//!
//! The timed path per page mirrors the production pipeline: HTML parsing,
//! page segmentation, mention/target extraction, classification,
//! filtering and global resolution.

use briq_core::pipeline::Briq;
use briq_core::training::LabeledDocument;
use briq_corpus::page::render_page;
use briq_table::html::parse_page;
use briq_table::segment::{segment_page, SegmentConfig};
use std::time::Instant;

/// Throughput result for one batch of pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputResult {
    /// Pages processed.
    pub pages: usize,
    /// Documents produced by segmentation.
    pub documents: usize,
    /// Text mentions aligned or considered.
    pub mentions: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
}

impl ThroughputResult {
    /// Documents per minute — the unit of Table VIII.
    pub fn docs_per_minute(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.documents as f64 * 60.0 / self.seconds
    }
}

/// How to process each document in the throughput run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThroughputSystem {
    /// The full BriQ pipeline.
    Briq,
    /// The RWR-only baseline (no pruning — "fairly expensive", §VII-D).
    RwrOnly,
}

/// Materialize documents into HTML pages (a few documents per page, as on
/// the web).
pub fn build_pages(docs: &[LabeledDocument], docs_per_page: usize) -> Vec<String> {
    docs.chunks(docs_per_page.max(1))
        .map(|chunk| {
            let refs: Vec<&LabeledDocument> = chunk.iter().collect();
            render_page(&refs)
        })
        .collect()
}

fn process_page(briq: &Briq, system: ThroughputSystem, html: &str) -> (usize, usize) {
    let page = parse_page(html);
    let docs = segment_page(&page, &SegmentConfig::default(), 0);
    let mut mentions = 0;
    for doc in &docs {
        match system {
            ThroughputSystem::Briq => {
                mentions += briq.align(doc).len().max(
                    briq_core::mention::text_mentions(doc).len(),
                );
            }
            ThroughputSystem::RwrOnly => {
                let sd = briq.score_document(doc);
                mentions += sd.mentions.len();
                let _ = briq_core::baselines::rwr_only_scored(briq, &sd);
            }
        }
    }
    (docs.len(), mentions)
}

/// Run the throughput measurement over `pages` with `workers` threads.
pub fn measure(
    briq: &Briq,
    system: ThroughputSystem,
    pages: &[String],
    workers: usize,
) -> ThroughputResult {
    let start = Instant::now();
    let (documents, mentions) = if workers <= 1 {
        let mut d = 0;
        let mut m = 0;
        for p in pages {
            let (pd, pm) = process_page(briq, system, p);
            d += pd;
            m += pm;
        }
        (d, m)
    } else {
        parallel_run(briq, system, pages, workers)
    };
    ThroughputResult { pages: pages.len(), documents, mentions, seconds: start.elapsed().as_secs_f64() }
}

fn parallel_run(
    briq: &Briq,
    system: ThroughputSystem,
    pages: &[String],
    workers: usize,
) -> (usize, usize) {
    // Work-stealing by shared atomic cursor: each worker claims the next
    // unprocessed page, which balances load like the old channel queue did.
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut d = 0usize;
                    let mut m = 0usize;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(p) = pages.get(i) else { break };
                        let (pd, pm) = process_page(briq, system, p);
                        d += pd;
                        m += pm;
                    }
                    (d, m)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .fold((0, 0), |(ad, am), (d, m)| (ad + d, am + m))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_core::pipeline::BriqConfig;
    use briq_corpus::corpus::{generate_corpus, CorpusConfig};

    fn docs() -> Vec<LabeledDocument> {
        generate_corpus(&CorpusConfig::small(31)).documents
    }

    #[test]
    fn pages_built_and_processed() {
        let docs = docs();
        let pages = build_pages(&docs[..12], 3);
        assert_eq!(pages.len(), 4);
        let briq = Briq::untrained(BriqConfig::default());
        let r = measure(&briq, ThroughputSystem::Briq, &pages, 1);
        assert_eq!(r.pages, 4);
        assert!(r.documents >= 8, "segmented {} documents", r.documents);
        assert!(r.docs_per_minute() > 0.0);
    }

    #[test]
    fn parallel_matches_serial_counts() {
        let docs = docs();
        let pages = build_pages(&docs[..8], 2);
        let briq = Briq::untrained(BriqConfig::default());
        let serial = measure(&briq, ThroughputSystem::Briq, &pages, 1);
        let parallel = measure(&briq, ThroughputSystem::Briq, &pages, 4);
        assert_eq!(serial.documents, parallel.documents);
        assert_eq!(serial.mentions, parallel.mentions);
    }

    #[test]
    fn zero_seconds_guard() {
        let r = ThroughputResult { pages: 0, documents: 0, mentions: 0, seconds: 0.0 };
        assert_eq!(r.docs_per_minute(), 0.0);
    }
}
